//! # rtec — real-time event channels for the CAN bus
//!
//! A reproduction of *"A Real-Time Event Channel Model for the CAN-Bus"*
//! (Kaiser, Brudna, Mitidieri — IPPS/WPDRTS 2003): a
//! publisher/subscriber middleware with **hard real-time**, **soft
//! real-time** and **non real-time** event channels mapped onto the CAN
//! bus priority mechanism, together with the substrates needed to run
//! and evaluate it:
//!
//! * [`sim`] — deterministic discrete-event engine;
//! * [`can`] — bit-level CAN 2.0B bus simulator (arbitration, bit
//!   stuffing, CRC-15, error signalling, fault injection);
//! * [`clock`] — drifting clocks and master-based CAN clock sync;
//! * [`core`] — the event-channel middleware itself (HRTEC / SRTEC /
//!   NRTEC, binding protocol, calendar, EDF priority promotion,
//!   fragmentation);
//! * [`analysis`] — worst-case transmission times, Tindell–Burns
//!   response-time analysis, the admission test;
//! * [`baselines`] — TTCAN-style TDMA, fixed-priority (deadline
//!   monotonic) and dual-priority comparators;
//! * [`workloads`] — seedable traffic generators and an SAE-class
//!   automotive message set.
//!
//! See `examples/quickstart.rs` for the five-minute tour and
//! `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ```
//! use rtec::prelude::*;
//!
//! let mut net = Network::builder().nodes(3).build();
//! let temperature = Subject::new(0x1001);
//! let queue = {
//!     let mut api = net.api();
//!     api.announce(NodeId(0), temperature, ChannelSpec::srt(SrtSpec::default()))
//!         .unwrap();
//!     api.subscribe(NodeId(1), temperature, SubscribeSpec::default())
//!         .unwrap()
//! };
//! net.after(Duration::from_us(10), move |api| {
//!     api.publish(NodeId(0), temperature, Event::new(temperature, vec![21]))
//!         .unwrap();
//! });
//! net.run_for(Duration::from_ms(1));
//! assert_eq!(queue.drain().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtec_analysis as analysis;
pub use rtec_baselines as baselines;
pub use rtec_can as can;
pub use rtec_clock as clock;
pub use rtec_conformance as conformance;
pub use rtec_core as core;
pub use rtec_sim as sim;
pub use rtec_workloads as workloads;

/// One-stop import for applications.
pub mod prelude {
    pub use rtec_core::channel::{HrtSpec, NrtSpec, SrtSpec};
    pub use rtec_core::prelude::*;
}
