//! Marker-trait stand-in for `serde`, paired with the no-op derives in
//! `serde_derive`. The workspace only ever *derives* these traits (no
//! serializer crate is present), so empty traits and empty derive
//! expansions preserve the public API surface without any network
//! dependency. Swap back to the real serde by restoring the
//! `crates.io` entries in the workspace `Cargo.toml`.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
