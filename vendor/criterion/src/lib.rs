//! A tiny benchmark harness that is API-compatible with the subset of
//! `criterion` this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], benchmark groups and throughput labels.
//!
//! Each benchmark is calibrated to roughly [`TARGET_MS`] of wall time
//! and reports mean ns/iteration — good enough to compare hot paths
//! offline, not a statistics engine. `cargo bench` output format:
//!
//! ```text
//! bench_name              1234 ns/iter  (x iters)
//! ```

use std::time::{Duration, Instant};

/// Wall-time budget per benchmark, in milliseconds.
pub const TARGET_MS: u64 = 100;

/// How batched setup inputs are grouped; accepted for API compatibility
/// (the stub times each routine invocation individually either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation attached to a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `routine` repeatedly until the time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let budget = Duration::from_millis(TARGET_MS);
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
            if start.elapsed() >= budget || self.iters_done >= 100_000 {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = Duration::from_millis(TARGET_MS);
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters_done += 1;
            if start.elapsed() >= budget || self.iters_done >= 100_000 {
                break;
            }
        }
    }
}

fn report(name: &str, b: &Bencher) {
    let mean_ns = (b.elapsed.as_nanos() as u64)
        .checked_div(b.iters_done)
        .unwrap_or(0);
    println!("{name:<48} {mean_ns:>12} ns/iter  ({} iters)", b.iters_done);
}

/// Top-level benchmark registry handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput figure.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name.as_ref()), &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
