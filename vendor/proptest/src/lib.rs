//! A small, dependency-free property-testing harness that is
//! API-compatible with the subset of `proptest` this workspace uses.
//!
//! Supported: the `proptest!` macro (with `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_assume!`,
//! `prop_oneof!`, `Just`, integer range strategies, strategy tuples,
//! `prop_map`, `collection::{vec, hash_set}`, `sample::Index`, and
//! `any::<T>()` for primitive types.
//!
//! Differences from the real crate: no shrinking (a failure reports the
//! generated inputs verbatim), and a fixed per-test deterministic seed
//! derived from the test's module path and name. The number of cases
//! per property defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable.

/// Deterministic splitmix64 generator feeding every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Seed a generator for a named test, deterministically.
pub fn rng_for(test_path: &str) -> TestRng {
    // FNV-1a: stable across runs and toolchains.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

pub mod test_runner {
    //! Runner configuration and failure plumbing.

    /// Per-property configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: resample without counting the case.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `pred` (resamples; panics if the
        /// predicate rejects 1000 draws in a row).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] output.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// [`Strategy::prop_filter`] output.
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.whence
            )
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Empty union; populate with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Add an alternative.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    // A full-width inclusive range would overflow `span`;
                    // fall back to a raw draw.
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t
                        / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `HashSet` of values drawn from `element`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded draw budget: element domains smaller than the
            // requested size would otherwise never terminate.
            let mut budget = n * 100 + 100;
            while out.len() < n && budget > 0 {
                out.insert(self.element.sample(rng));
                budget -= 1;
            }
            out
        }
    }

    /// Strategy for hash sets with sizes in `size` (best effort when the
    /// element domain is small).
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Collection-index helper.

    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An abstract index resolved against a concrete collection length
    /// via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Resolve against a collection of `size` elements.
        ///
        /// # Panics
        /// If `size` is zero.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Strategy re-exports under the names the prelude promises.
pub mod prelude {
    /// Mirror of the real prelude's `pub use crate as prop`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each contained `fn name(args in strategies) { body }` as a test
/// over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rejects: u32 = 0;
                let mut passed: u32 = 0;
                while passed < cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejects += 1;
                            assert!(
                                rejects < cfg.cases.saturating_mul(64).max(1024),
                                "prop_assume! rejected too many cases in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property {} falsified after {} passing case(s): {}",
                                stringify!($name), passed, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fallible assertion: fails the current case without panicking the
/// generator loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} failed: both {:?}",
            stringify!($left), stringify!($right), l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..10, y in 5u64..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn mapped(n in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert!(n % 2 == 0);
        }
    }
}
