//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as API
//! decoration — nothing actually serializes (there is no serde_json or
//! bincode in the tree). The build environment has no network access to
//! crates.io, so these derives expand to nothing; the marker traits in
//! the sibling `serde` stub keep `use serde::{Serialize, Deserialize}`
//! imports valid.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
