//! Offline stand-in for the `loom` permutation-testing model checker.
//!
//! The real `loom` crate instruments sync primitives and explores every
//! interleaving of a closure under a dynamic partial-order reduction.
//! This repository builds offline, so this crate provides an
//! API-compatible subset with a different (simpler, still sound within
//! its bound) engine:
//!
//! * model threads are real OS threads, but a central scheduler keeps
//!   **exactly one runnable at a time** — `Mutex::lock`, guard drop,
//!   `spawn`, sleeps/yields and every *blocking or waking* channel
//!   operation are scheduling points. Non-blocking channel ops that
//!   wake nobody deliberately are not: FIFO operations on distinct
//!   channels commute, so interleaving them adds schedules without
//!   adding reachable states (a cheap partial-order reduction);
//! * [`model`]/[`explore`] re-run the closure, driving a depth-first
//!   search over the scheduling decisions recorded at each point where
//!   more than one thread could run;
//! * the search is *iterative context bounding* (CHESS-style): within
//!   one execution at most `LOOM_MAX_PREEMPTIONS` (default 2)
//!   switches away from a thread that could have kept running are
//!   explored. Switches at blocking points are always free, so fully
//!   lock-step protocols — where at most one thread is runnable at
//!   every decision point — are explored **completely** and the bound
//!   never prunes anything (see [`Stats::pruned`]).
//!
//! Deadlocks (every live thread blocked), panics in model threads and
//! runaway executions are reported as a panic from [`model`] carrying
//! the offending schedule. Primitives created *outside* a model fall
//! back to plain `std` behaviour, so code compiled with `--cfg loom`
//! still works in ordinary unit tests.
//!
//! Env knobs: `LOOM_MAX_PREEMPTIONS`, `LOOM_MAX_EXECUTIONS`,
//! `LOOM_MAX_STEPS`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex};

/// Panic payload used to unwind secondary threads once an execution has
/// already failed; filtered out of panic reports.
struct ModelAbort;

const NO_THREAD: usize = usize::MAX;
/// Join resources occupy ids `[0, JOIN_RES_LIMIT)`; other resources are
/// allocated above that.
const JOIN_RES_LIMIT: u64 = 1 << 20;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    Blocked(u64),
    Finished,
}

struct SchedState {
    threads: Vec<TState>,
    running: usize,
    /// Decisions to replay (prefix of this execution's schedule).
    replay: Vec<usize>,
    cursor: usize,
    /// `(chosen_rank, candidate_count)` at every true branch point.
    decisions: Vec<(usize, usize)>,
    failure: Option<String>,
    steps: usize,
    max_steps: usize,
    preemptions: usize,
    preemption_bound: usize,
    /// True if the preemption budget suppressed at least one branch.
    pruned: bool,
    next_resource: u64,
    live: usize,
}

struct Scheduler {
    state: StdMutex<SchedState>,
    cv: Condvar,
}

type SchedRef = std::sync::Arc<Scheduler>;

thread_local! {
    static CTX: RefCell<Option<(SchedRef, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(SchedRef, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn abort_execution() -> ! {
    std::panic::panic_any(ModelAbort)
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> Option<String> {
    if p.is::<ModelAbort>() {
        None
    } else if let Some(s) = p.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else if let Some(s) = p.downcast_ref::<String>() {
        Some(s.clone())
    } else {
        Some("model thread panicked".to_string())
    }
}

impl Scheduler {
    fn new(replay: Vec<usize>, preemption_bound: usize, max_steps: usize) -> SchedRef {
        std::sync::Arc::new(Scheduler {
            state: StdMutex::new(SchedState {
                threads: vec![TState::Runnable],
                running: 0,
                replay,
                cursor: 0,
                decisions: Vec::new(),
                failure: None,
                steps: 0,
                max_steps,
                preemptions: 0,
                preemption_bound,
                pruned: false,
                next_resource: JOIN_RES_LIMIT,
                live: 1,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(TState::Runnable);
        s.live += 1;
        s.threads.len() - 1
    }

    fn alloc_resource(&self) -> u64 {
        let mut s = self.lock();
        s.next_resource += 1;
        s.next_resource
    }

    fn fail(s: &mut SchedState, msg: String) {
        if s.failure.is_none() {
            s.failure = Some(msg);
        }
    }

    fn wake(s: &mut SchedState, res: u64) {
        for t in s.threads.iter_mut() {
            if *t == TState::Blocked(res) {
                *t = TState::Runnable;
            }
        }
    }

    /// Pick the next thread to run. `me` has already been moved to its
    /// new state in `s.threads`; `me_runnable` says whether it may
    /// continue. Records a decision only at true branch points.
    fn reschedule(&self, s: &mut SchedState, me: usize, me_runnable: bool) {
        let mut candidates: Vec<usize> = (0..s.threads.len())
            .filter(|&t| s.threads[t] == TState::Runnable)
            .collect();
        if candidates.is_empty() {
            if s.threads.iter().all(|t| *t == TState::Finished) {
                s.running = NO_THREAD;
            } else {
                let snapshot = format!("{:?}", s.threads);
                Self::fail(
                    s,
                    format!("deadlock: every live thread is blocked {snapshot}"),
                );
            }
            self.cv.notify_all();
            return;
        }
        let chosen = if me_runnable {
            // Put the running thread first so "keep running" is always
            // decision 0 (explored first, and the only option once the
            // preemption budget is spent).
            candidates.retain(|&t| t != me);
            if candidates.is_empty() {
                me
            } else if s.preemptions >= s.preemption_bound {
                s.pruned = true;
                me
            } else {
                let mut ordered = Vec::with_capacity(candidates.len() + 1);
                ordered.push(me);
                ordered.extend(candidates);
                let pick = Self::decide(s, ordered.len());
                let c = ordered[pick];
                if c != me {
                    s.preemptions += 1;
                }
                c
            }
        } else if candidates.len() == 1 {
            candidates[0]
        } else {
            let pick = Self::decide(s, candidates.len());
            candidates[pick]
        };
        s.running = chosen;
        self.cv.notify_all();
    }

    fn decide(s: &mut SchedState, num: usize) -> usize {
        let pick = if s.cursor < s.replay.len() {
            s.replay[s.cursor].min(num - 1)
        } else {
            0
        };
        s.cursor += 1;
        s.decisions.push((pick, num));
        pick
    }

    /// The core scheduling primitive: move `me` into `new_state`
    /// (optionally waking `wake_res` first), pick the next thread and
    /// wait until `me` is scheduled again.
    fn switch(&self, me: usize, new_state: TState, wake_res: Option<u64>) {
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            abort_execution();
        }
        s.steps += 1;
        if s.steps > s.max_steps {
            let msg = format!("execution exceeded LOOM_MAX_STEPS={}", s.max_steps);
            Self::fail(&mut s, msg);
            self.cv.notify_all();
            drop(s);
            abort_execution();
        }
        if let Some(res) = wake_res {
            Self::wake(&mut s, res);
        }
        s.threads[me] = new_state;
        self.reschedule(&mut s, me, new_state == TState::Runnable);
        if s.failure.is_some() {
            drop(s);
            abort_execution();
        }
        while s.running != me {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            if s.failure.is_some() {
                drop(s);
                abort_execution();
            }
        }
        s.threads[me] = TState::Runnable;
    }

    fn yield_point(&self, me: usize) {
        self.switch(me, TState::Runnable, None);
    }

    fn block_on(&self, me: usize, res: u64) {
        self.switch(me, TState::Blocked(res), None);
    }

    fn wake_and_yield(&self, me: usize, res: u64) {
        self.switch(me, TState::Runnable, Some(res));
    }

    /// Partial-order reduction for channel ops: waking a peer marks it
    /// runnable but does *not* switch — the current thread runs on to
    /// its next blocking point, where scheduling branches freely over
    /// everything runnable. Channel operations are atomic FIFO steps
    /// on per-link state, so running a thread until it blocks reaches
    /// the same states as preempting it mid-stream; the orderings that
    /// matter (which blocked thread proceeds next) are all explored as
    /// free branches, keeping lock-step protocols exhaustively covered
    /// without the preemption bound ever pruning.
    fn wake_waiters(&self, me: usize, res: u64) {
        let _ = me;
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            abort_execution();
        }
        Self::wake(&mut s, res);
        self.cv.notify_all();
    }

    /// Best-effort wake without a scheduling point — used from `Drop`
    /// impls while unwinding, where a full switch could double-panic.
    fn wake_quiet(&self, res: u64) {
        let mut s = self.lock();
        Self::wake(&mut s, res);
        self.cv.notify_all();
    }

    /// Mark `me` finished (recording `panicked` as the execution's
    /// failure, if any) and hand the schedule to the next thread.
    fn finish(&self, me: usize, panicked: Option<String>) {
        let mut s = self.lock();
        if let Some(msg) = panicked {
            Self::fail(&mut s, msg);
        }
        s.threads[me] = TState::Finished;
        s.live -= 1;
        Self::wake(&mut s, me as u64); // joiners block on the thread id
        if s.failure.is_none() {
            self.reschedule(&mut s, me, false);
        }
        self.cv.notify_all();
    }

    /// Entry gate for freshly spawned threads: wait until scheduled for
    /// the first time. Returns false if the execution already failed.
    fn wait_first_schedule(&self, me: usize) -> bool {
        let mut s = self.lock();
        loop {
            if s.failure.is_some() {
                return false;
            }
            if s.running == me {
                return true;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Summary of one [`explore`] run.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Number of distinct schedules executed.
    pub executions: usize,
    /// True if the preemption bound suppressed at least one branch in
    /// at least one execution — i.e. coverage was bounded, not total.
    pub pruned: bool,
    /// The preemption bound the search ran with.
    pub preemption_bound: usize,
}

fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Run `f` under every schedule the bounded search can reach and
/// return exploration statistics. Panics (with the failing schedule)
/// if any execution panics or deadlocks.
pub fn explore<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let bound = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_execs = env_usize("LOOM_MAX_EXECUTIONS", 50_000);
    let max_steps = env_usize("LOOM_MAX_STEPS", 1 << 20);
    let f = std::sync::Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    let mut pruned = false;
    loop {
        let sched = Scheduler::new(std::mem::take(&mut replay), bound, max_steps);
        executions += 1;
        run_one(&sched, f.clone());
        let mut s = sched.lock();
        pruned |= s.pruned;
        if let Some(fail) = s.failure.take() {
            let schedule = std::mem::take(&mut s.decisions);
            drop(s);
            panic!(
                "loom: model failed on execution {executions}: {fail} \
                 (schedule: {schedule:?})"
            );
        }
        let mut d = std::mem::take(&mut s.decisions);
        drop(s);
        // Depth-first: bump the deepest non-exhausted decision.
        let mut next = None;
        while let Some((chosen, num)) = d.pop() {
            if chosen + 1 < num {
                d.push((chosen + 1, num));
                next = Some(d.iter().map(|&(c, _)| c).collect::<Vec<_>>());
                break;
            }
        }
        match next {
            Some(r) => replay = r,
            None => break,
        }
        assert!(
            executions < max_execs,
            "loom: exploration did not converge within {max_execs} executions \
             (raise LOOM_MAX_EXECUTIONS or shrink the model)"
        );
    }
    Stats {
        executions,
        pruned,
        preemption_bound: bound,
    }
}

/// Check `f` under every reachable schedule (loom-compatible entry
/// point). See [`explore`] for the search strategy and its bound.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _ = explore(f);
}

fn run_one(sched: &SchedRef, f: std::sync::Arc<dyn Fn() + Send + Sync>) {
    let sched2 = sched.clone();
    let root = std::thread::Builder::new()
        .name("loom-root".into())
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((sched2.clone(), 0)));
            let r = catch_unwind(AssertUnwindSafe(|| f()));
            let panicked = r.err().as_deref().and_then(panic_msg);
            sched2.finish(0, panicked);
        })
        .expect("spawn loom root thread");
    let _ = root.join();
    // Wait for every model thread to reach its `finish` call so the
    // next execution starts from a quiescent world.
    let mut s = sched.lock();
    while s.live > 0 {
        s = sched.cv.wait(s).unwrap_or_else(|e| e.into_inner());
    }
}

pub mod thread {
    //! Model-aware replacements for `std::thread` essentials.

    use super::*;

    /// Result slot shared between a model thread and its join handle.
    type Slot<T> = std::sync::Arc<StdMutex<Option<std::thread::Result<T>>>>;

    enum HandleInner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            sched: SchedRef,
            id: usize,
            os: std::thread::JoinHandle<()>,
            slot: Slot<T>,
        },
    }

    /// Owned permission to join on a thread (std or model).
    pub struct JoinHandle<T>(HandleInner<T>);

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish, yielding its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                HandleInner::Std(h) => h.join(),
                HandleInner::Model {
                    sched,
                    id,
                    os,
                    slot,
                    ..
                } => {
                    let (_, me) = current().expect("join called outside the model");
                    loop {
                        let done = {
                            let s = sched.lock();
                            s.threads[id] == TState::Finished
                        };
                        if done {
                            break;
                        }
                        sched.block_on(me, id as u64);
                    }
                    let _ = os.join();
                    let r = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                    r.unwrap_or_else(|| Err(Box::new("model thread aborted")))
                }
            }
        }

        /// Whether the thread has finished (std delegates; model asks
        /// the scheduler).
        pub fn is_finished(&self) -> bool {
            match &self.0 {
                HandleInner::Std(h) => h.is_finished(),
                HandleInner::Model { sched, id, .. } => {
                    sched.lock().threads[*id] == TState::Finished
                }
            }
        }
    }

    /// Spawn a thread; inside a model it becomes a scheduled model
    /// thread, outside it is a plain `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("thread spawn failed")
    }

    /// Mirror of `std::thread::Builder` (name only).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// A new builder with no name set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Name the thread (forwarded to the OS thread in both modes).
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn the thread.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let mut b = std::thread::Builder::new();
            if let Some(n) = &self.name {
                b = b.name(n.clone());
            }
            match current() {
                None => b.spawn(f).map(|h| JoinHandle(HandleInner::Std(h))),
                Some((sched, _me)) => {
                    let id = sched.register_thread();
                    let slot: Slot<T> = std::sync::Arc::new(StdMutex::new(None));
                    let slot2 = slot.clone();
                    let sched2 = sched.clone();
                    let os = b.spawn(move || {
                        CTX.with(|c| *c.borrow_mut() = Some((sched2.clone(), id)));
                        if !sched2.wait_first_schedule(id) {
                            sched2.finish(id, None);
                            return;
                        }
                        let r = catch_unwind(AssertUnwindSafe(f));
                        let panicked = r.as_ref().err().and_then(|p| panic_msg(&**p));
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(match r {
                            Ok(v) => Ok(v),
                            Err(p) => Err(p),
                        });
                        sched2.finish(id, panicked);
                    })?;
                    // Spawning is *not* a scheduling point: the child is
                    // runnable but the spawner keeps running until it
                    // blocks (run-until-block reduction). The child's
                    // first real chance to interleave is the spawner's
                    // next blocking point, which is a free branch.
                    Ok(JoinHandle(HandleInner::Model {
                        sched,
                        id,
                        os,
                        slot,
                    }))
                }
            }
        }
    }

    /// Sleep: a no-op scheduling point inside a model (model time is
    /// abstracted away), a real sleep outside.
    pub fn sleep(dur: std::time::Duration) {
        match current() {
            Some((sched, me)) => sched.yield_point(me),
            None => std::thread::sleep(dur),
        }
    }

    /// Yield: a scheduling point inside a model, `std` yield outside.
    pub fn yield_now() {
        match current() {
            Some((sched, me)) => sched.yield_point(me),
            None => std::thread::yield_now(),
        }
    }
}

pub mod sync {
    //! Model-aware `Mutex` and re-exports matching `std::sync`.

    use super::*;
    pub use std::sync::{Arc, LockResult, PoisonError};

    /// Model context captured by a primitive at construction time.
    #[derive(Clone)]
    struct ModelCtx {
        sched: SchedRef,
        res: u64,
    }

    fn capture_ctx() -> Option<ModelCtx> {
        current().map(|(sched, _)| {
            let res = sched.alloc_resource();
            ModelCtx { sched, res }
        })
    }

    /// A mutex whose lock/unlock are scheduling points when created
    /// inside a model; plain `std::sync::Mutex` otherwise.
    pub struct Mutex<T: ?Sized> {
        model: Option<ModelCtx>,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a mutex, capturing the ambient model if any.
        pub fn new(value: T) -> Self {
            Mutex {
                model: capture_ctx(),
                inner: StdMutex::new(value),
            }
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock. Inside a model this blocks the scheduled
        /// thread (deadlocks are detected and reported).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if let (Some(ctx), Some((_, me))) = (&self.model, current()) {
                loop {
                    ctx.sched.yield_point(me);
                    match self.inner.try_lock() {
                        Ok(g) => return Ok(self.wrap(g)),
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            return Err(PoisonError::new(self.wrap(p.into_inner())));
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            ctx.sched.block_on(me, ctx.res);
                        }
                    }
                }
            } else {
                match self.inner.lock() {
                    Ok(g) => Ok(self.wrap(g)),
                    Err(p) => Err(PoisonError::new(self.wrap(p.into_inner()))),
                }
            }
        }

        fn wrap<'a>(&'a self, g: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            MutexGuard {
                inner: Some(g),
                model: self.model.clone(),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// Guard for [`Mutex`]; releasing it is a scheduling point.
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<ModelCtx>,
    }

    impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the std lock first, then let waiters run.
            self.inner.take();
            if let (Some(ctx), Some((_, me))) = (&self.model, current()) {
                if std::thread::panicking() {
                    ctx.sched.wake_quiet(ctx.res);
                } else {
                    ctx.sched.wake_and_yield(me, ctx.res);
                }
            }
        }
    }

    pub mod atomic {
        //! Plain `std` atomics. The stand-in does not model weak
        //! memory orderings: under the serialized scheduler every
        //! atomic access is sequentially consistent.
        pub use std::sync::atomic::*;
    }

    pub mod mpsc {
        //! Model-aware channels mirroring `std::sync::mpsc`.

        use super::super::*;
        pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

        struct ChanState<T> {
            q: VecDeque<T>,
            cap: usize,
            senders: usize,
            rx_alive: bool,
        }

        struct Chan<T> {
            state: StdMutex<ChanState<T>>,
            sched: SchedRef,
            res_send: u64,
            res_recv: u64,
        }

        impl<T> Chan<T> {
            fn lock(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
                self.state.lock().unwrap_or_else(|e| e.into_inner())
            }

            fn me(&self) -> usize {
                current().expect("model channel used outside the model").1
            }

            fn send_impl(&self, value: T) -> Result<(), SendError<T>> {
                let me = self.me();
                let mut slot = Some(value);
                loop {
                    {
                        let mut c = self.lock();
                        if !c.rx_alive {
                            return Err(SendError(slot.take().expect("send slot")));
                        }
                        if c.q.len() < c.cap {
                            c.q.push_back(slot.take().expect("send slot"));
                            break;
                        }
                    }
                    self.sched.block_on(me, self.res_send);
                }
                self.sched.wake_waiters(me, self.res_recv);
                Ok(())
            }

            fn recv_impl(&self) -> Result<T, RecvError> {
                let me = self.me();
                loop {
                    let got = {
                        let mut c = self.lock();
                        match c.q.pop_front() {
                            Some(v) => Some(v),
                            None if c.senders == 0 => return Err(RecvError),
                            None => None,
                        }
                    };
                    if let Some(v) = got {
                        self.sched.wake_waiters(me, self.res_send);
                        return Ok(v);
                    }
                    self.sched.block_on(me, self.res_recv);
                }
            }
        }

        fn new_model_chan<T>(sched: SchedRef, cap: usize) -> std::sync::Arc<Chan<T>> {
            let res_send = sched.alloc_resource();
            let res_recv = sched.alloc_resource();
            std::sync::Arc::new(Chan {
                state: StdMutex::new(ChanState {
                    q: VecDeque::new(),
                    cap,
                    senders: 1,
                    rx_alive: true,
                }),
                sched,
                res_send,
                res_recv,
            })
        }

        enum TxInner<T> {
            StdAsync(std::sync::mpsc::Sender<T>),
            StdSync(std::sync::mpsc::SyncSender<T>),
            Model(std::sync::Arc<Chan<T>>),
        }

        /// Sending half of an unbounded channel.
        pub struct Sender<T>(TxInner<T>);
        /// Sending half of a bounded channel (blocks when full).
        pub struct SyncSender<T>(TxInner<T>);

        fn clone_tx<T>(tx: &TxInner<T>) -> TxInner<T> {
            match tx {
                TxInner::StdAsync(s) => TxInner::StdAsync(s.clone()),
                TxInner::StdSync(s) => TxInner::StdSync(s.clone()),
                TxInner::Model(c) => {
                    c.lock().senders += 1;
                    TxInner::Model(c.clone())
                }
            }
        }

        fn drop_tx<T>(tx: &mut TxInner<T>) {
            if let TxInner::Model(c) = tx {
                let last = {
                    let mut st = c.lock();
                    st.senders -= 1;
                    st.senders == 0
                };
                if last {
                    // The receiver can now observe disconnection.
                    match (std::thread::panicking(), current()) {
                        (false, Some((_, me))) => c.sched.wake_waiters(me, c.res_recv),
                        _ => c.sched.wake_quiet(c.res_recv),
                    }
                }
            }
        }

        fn send_via<T>(tx: &TxInner<T>, value: T) -> Result<(), SendError<T>> {
            match tx {
                TxInner::StdAsync(s) => s.send(value),
                TxInner::StdSync(s) => s.send(value),
                TxInner::Model(c) => c.send_impl(value),
            }
        }

        impl<T> Sender<T> {
            /// Queue a value (never blocks: the channel is unbounded).
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                send_via(&self.0, value)
            }
        }

        impl<T> SyncSender<T> {
            /// Queue a value, blocking while the channel is full.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                send_via(&self.0, value)
            }
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                Sender(clone_tx(&self.0))
            }
        }

        impl<T> Clone for SyncSender<T> {
            fn clone(&self) -> Self {
                SyncSender(clone_tx(&self.0))
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                drop_tx(&mut self.0);
            }
        }

        impl<T> Drop for SyncSender<T> {
            fn drop(&mut self) {
                drop_tx(&mut self.0);
            }
        }

        enum RxInner<T> {
            Std(std::sync::mpsc::Receiver<T>),
            Model(std::sync::Arc<Chan<T>>),
        }

        /// Receiving half of a channel.
        pub struct Receiver<T>(RxInner<T>);

        impl<T> Receiver<T> {
            /// Block until a value or disconnection.
            pub fn recv(&self) -> Result<T, RecvError> {
                match &self.0 {
                    RxInner::Std(r) => r.recv(),
                    RxInner::Model(c) => c.recv_impl(),
                }
            }

            /// Like [`Receiver::recv`] with a deadline. Inside a model
            /// there is no time, so this never reports `Timeout`: a
            /// stall with every thread blocked surfaces as a detected
            /// deadlock instead.
            pub fn recv_timeout(&self, dur: std::time::Duration) -> Result<T, RecvTimeoutError> {
                match &self.0 {
                    RxInner::Std(r) => r.recv_timeout(dur),
                    RxInner::Model(c) => c.recv_impl().map_err(|_| RecvTimeoutError::Disconnected),
                }
            }

            /// Non-blocking poll (scheduling point inside a model).
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                match &self.0 {
                    RxInner::Std(r) => r.try_recv(),
                    RxInner::Model(c) => {
                        let mut st = c.lock();
                        match st.q.pop_front() {
                            Some(v) => Ok(v),
                            None if st.senders == 0 => Err(TryRecvError::Disconnected),
                            None => Err(TryRecvError::Empty),
                        }
                    }
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                if let RxInner::Model(c) = &self.0 {
                    c.lock().rx_alive = false;
                    match (std::thread::panicking(), current()) {
                        (false, Some((_, me))) => c.sched.wake_waiters(me, c.res_send),
                        _ => c.sched.wake_quiet(c.res_send),
                    }
                }
            }
        }

        /// Unbounded channel (`std::sync::mpsc::channel`).
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            match current() {
                None => {
                    let (tx, rx) = std::sync::mpsc::channel();
                    (Sender(TxInner::StdAsync(tx)), Receiver(RxInner::Std(rx)))
                }
                Some((sched, _)) => {
                    let c = new_model_chan(sched, usize::MAX);
                    (
                        Sender(TxInner::Model(c.clone())),
                        Receiver(RxInner::Model(c)),
                    )
                }
            }
        }

        /// Bounded channel (`std::sync::mpsc::sync_channel`). A zero
        /// capacity is rounded up to one (the rendezvous special case
        /// is not modelled).
        pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
            match current() {
                None => {
                    let (tx, rx) = std::sync::mpsc::sync_channel(cap.max(1));
                    (SyncSender(TxInner::StdSync(tx)), Receiver(RxInner::Std(rx)))
                }
                Some((sched, _)) => {
                    let c = new_model_chan(sched, cap.max(1));
                    (
                        SyncSender(TxInner::Model(c.clone())),
                        Receiver(RxInner::Model(c)),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Mutex};
    use super::*;

    #[test]
    fn single_thread_model_runs_once() {
        let stats = explore(|| {
            let m = Mutex::new(0u32);
            *m.lock().unwrap() += 1;
            assert_eq!(*m.lock().unwrap(), 1);
        });
        assert_eq!(stats.executions, 1, "no branch points -> one schedule");
        assert!(!stats.pruned);
    }

    #[test]
    fn two_threads_explore_multiple_schedules() {
        let stats = explore(|| {
            let m = Arc::new(Mutex::new(Vec::<u8>::new()));
            let m2 = m.clone();
            let h = thread::spawn(move || m2.lock().unwrap().push(1));
            m.lock().unwrap().push(2);
            h.join().unwrap();
            let v = m.lock().unwrap();
            assert_eq!(v.len(), 2, "mutual exclusion: both pushes land");
        });
        assert!(
            stats.executions > 1,
            "spawn + contended lock must branch (got {})",
            stats.executions
        );
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        // A torn read-modify-write *inside one critical section* can
        // never be observed, whatever the schedule.
        model(|| {
            let m = Arc::new(Mutex::new((0u32, 0u32)));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        g.0 += 1;
                        g.1 += 1;
                        assert_eq!(g.0, g.1, "critical section is atomic");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let g = m.lock().unwrap();
            assert_eq!(*g, (2, 2));
        });
    }

    #[test]
    fn detects_seeded_atomicity_violation() {
        // Classic lost update: read under one lock, write under
        // another. Some schedule interleaves the two threads between
        // the sections, and the checker must find it.
        let found = std::panic::catch_unwind(|| {
            model(|| {
                let m = Arc::new(Mutex::new(0u32));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let m = m.clone();
                        thread::spawn(move || {
                            let v = *m.lock().unwrap(); // read
                            *m.lock().unwrap() = v + 1; // torn write
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(*m.lock().unwrap(), 2, "lost update");
            });
        });
        assert!(found.is_err(), "checker must find the lost update");
    }

    #[test]
    fn detects_seeded_abba_deadlock() {
        let found = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (a.clone(), b.clone());
                let h = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                }
                h.join().unwrap();
            });
        });
        assert!(found.is_err(), "checker must find the ABBA deadlock");
    }

    #[test]
    fn bounded_channel_blocks_and_delivers_in_order() {
        model(|| {
            let (tx, rx) = sync::mpsc::sync_channel::<u32>(1);
            let h = thread::spawn(move || {
                for i in 0..3 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, vec![0, 1, 2], "FIFO per sender");
            assert!(matches!(rx.recv(), Err(sync::mpsc::RecvError)));
        });
    }

    #[test]
    fn recv_on_abandoned_channel_disconnects_not_deadlocks() {
        model(|| {
            let (tx, rx) = sync::mpsc::sync_channel::<u32>(4);
            let h = thread::spawn(move || drop(tx));
            assert!(rx.recv().is_err());
            h.join().unwrap();
        });
    }

    #[test]
    fn primitives_fall_back_to_std_outside_models() {
        let (tx, rx) = sync::mpsc::sync_channel::<u8>(2);
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        let m = Mutex::new(5u8);
        assert_eq!(*m.lock().unwrap(), 5);
        let h = thread::spawn(|| 40 + 2);
        assert_eq!(h.join().unwrap(), 42);
    }
}
