#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# conformance fault-injection suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors)"
# The vendor/ stand-ins for crates.io deps are excluded: they mirror
# external code and are not held to the workspace lint bar.
cargo clippy --workspace \
    --exclude proptest --exclude criterion --exclude serde --exclude serde_derive \
    --all-targets -- -D warnings

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== conformance fault-injection suite"
cargo test -p rtec-conformance --test fault_injection -q
cargo test -p rtec-conformance --test end_to_end -q

echo "== experiments smoke run (auditor enabled)"
cargo run -p rtec-bench --bin experiments --release -- all --quick >/dev/null

echo "== bench smoke run (committed BENCH_*.json parse + throughput floor)"
# Re-measures the dispatch-heavy microbenchmark and fails if it drops
# below 10% of the committed baseline — a catastrophic-regression
# tripwire that tolerates shared-runner noise.
cargo run -p rtec-bench --bin experiments --release -- bench --ci

echo "== live-runtime loopback smoke (demo + auditor, hard timeout)"
# The live runtime is threads in lock-step over IPC: a protocol bug
# shows up as a hang, not a failure, so bound the run hard.
timeout 120 cargo run -p rtec-live --release --example demo -- --audit >/dev/null

echo "ci: all gates passed"
