#!/usr/bin/env bash
# Repository gate: formatting, lints, the full test suite, and the
# conformance fault-injection suite. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, warnings are errors)"
# The vendor/ stand-ins for crates.io deps are excluded: they mirror
# external code and are not held to the workspace lint bar.
cargo clippy --workspace \
    --exclude proptest --exclude criterion --exclude serde --exclude serde_derive \
    --exclude loom \
    --all-targets -- -D warnings

echo "== rtec-verify (concurrency-hygiene source lints C1..C6)"
# The loom model checker only covers code routed through the
# rtec_live::sync facade; this pass statically rejects anything that
# would escape it (see DESIGN.md §6).
cargo run -q -p rtec-conformance --bin rtec-verify -- .

echo "== cargo test (workspace)"
cargo test --workspace -q

echo "== loom model check (broker lock-step + PDES window barrier, exhaustive)"
# The sync facade resolves to the vendored loom stand-in under
# --cfg loom; a separate target dir keeps the flag from invalidating
# the main build cache. A hang here is a protocol deadlock loom could
# not observe terminating, so bound the run hard.
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    timeout 420 cargo test -p rtec-live --test loom_model -q
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    timeout 420 cargo test -p rtec-sim --test loom_model -q

echo "== miri (codec + timing-wheel subset)"
# Undefined-behaviour check for the pure single-threaded kernels. Miri
# ships with nightly only; skip (loudly) where it is unavailable.
if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-disable-isolation" \
        timeout 900 cargo +nightly miri test -p rtec-can -p rtec-sim -q
else
    echo "   skipped: miri not installed (needs a nightly toolchain)"
fi

echo "== ThreadSanitizer (live runtime tests)"
# TSan needs -Z sanitizer (nightly) plus an instrumented std, which
# -Zbuild-std rebuilds from the rust-src component; skip (loudly) when
# either is unavailable.
tsan_src="$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/Cargo.lock"
if cargo +nightly --version >/dev/null 2>&1 && [ -f "$tsan_src" ]; then
    RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
        timeout 900 cargo +nightly test -p rtec-live -q \
        -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')"
else
    echo "   skipped: ThreadSanitizer needs nightly + the rust-src component"
fi

echo "== conformance fault-injection suite"
cargo test -p rtec-conformance --test fault_injection -q
cargo test -p rtec-conformance --test end_to_end -q

echo "== experiments smoke run (auditor enabled)"
cargo run -p rtec-bench --bin experiments --release -- all --quick >/dev/null

echo "== bench smoke run (committed BENCH_*.json parse + throughput floor)"
# Re-measures the dispatch-heavy microbenchmark and fails if it drops
# below 10% of the committed baseline — a catastrophic-regression
# tripwire that tolerates shared-runner noise.
cargo run -p rtec-bench --bin experiments --release -- bench --ci

echo "== parallel execution smoke (determinism vs serial oracle, 2 jobs)"
# Fresh reduced 4-segment run: the parallel driver must stay
# byte-identical to the serial lockstep oracle; on hosts with >= 2
# cores the run must also not be slower than serial.
cargo run -p rtec-bench --bin experiments --release -- bench parallel --ci --jobs 2

echo "== frag zero-allocation smoke (steady-state reassembly)"
# Counting-allocator assert: after warm-up, bulk reassembly performs
# no heap allocations (scratch-buffer reuse in rtec_core::frag).
cargo run -p rtec-bench --bin experiments --release -- frag-smoke

echo "== live-runtime loopback smoke (demo + auditor, hard timeout)"
# The live runtime is threads in lock-step over IPC: a protocol bug
# shows up as a hang, not a failure, so bound the run hard.
timeout 120 cargo run -p rtec-live --release --example demo -- --audit >/dev/null

echo "== gateway smoke (same-seed determinism + merged-trace audit + 10k-client shed gate)"
# Off-bus gateway acceptance: the committed BENCH_engine.json gateway
# section must parse, two same-seed runs must be byte-identical down to
# the per-client sink digests, the gateway's trace records must pass
# the T1..T8 auditor, and a 10k-client slow-consumer population must be
# sustained with bounded lane queues and nonzero sheds. The fanout
# workers ride the same lock-step facade, so a bug is a hang — bound it.
timeout 240 cargo run -p rtec-bench --bin experiments --release -- bench gateway --ci

echo "== chaos smoke (kill/restart 2 of 8 nodes, 5% datagram drop)"
# Deterministic crash tolerance gate: both killed nodes must rejoin
# with no double delivery, the merged trace must pass T1..T8, and a
# same-seed rerun must be byte-identical. A supervision bug is a hang
# (a node that never rejoins stalls the lock-step), so bound it hard.
timeout 180 cargo run -p rtec-bench --bin experiments --release -- chaos --ci

echo "== gateway chaos smoke (gateway kill + link severs, session resume)"
# Crash-tolerant session gate: the gateway node is killed and rejoins
# through supervision, every severed client resumes (lossless or with
# an honest Gap notice), HRT stays exactly-once across the reconnect,
# the merged trace passes T1..T9, a TTL-0 resume is deterministically
# refused, and a same-seed rerun is byte-identical. Same hang caveat.
timeout 180 cargo run -p rtec-bench --bin experiments --release -- chaos gateway --ci

echo "ci: all gates passed"
