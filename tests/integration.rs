//! Cross-crate integration tests: the facade crate, analytical models
//! versus simulation, and determinism guarantees.

use rtec::analysis::admission::{CalendarPlan, SlotRequest};
use rtec::analysis::npedf::np_edf_feasible;
use rtec::analysis::rta::{rta_feasible, total_utilization, MessageSpec};
use rtec::baselines::{run_testbed, EdfPolicy, FixedPriorityPolicy, TestbedConfig};
use rtec::can::bits::BitTiming;
use rtec::can::BusConfig;
use rtec::clock::ClockParams;
use rtec::prelude::*;
use rtec::sim::Rng;
use rtec::workloads::{
    sae_class_set, uniform_srt_set, ArrivalPattern, StreamSpec, TimelinessClass,
};

#[test]
fn mixed_classes_share_one_bus() {
    let mut net = Network::builder()
        .nodes(6)
        .round(Duration::from_ms(10))
        .build();
    let sink = net.enable_trace();
    let hard = Subject::new(1);
    let soft = Subject::new(2);
    let bulk = Subject::new(3);
    let (hq, sq, bq) = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            hard,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        api.announce(NodeId(1), soft, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(2), bulk, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        let hq = api
            .subscribe(NodeId(3), hard, SubscribeSpec::default())
            .unwrap();
        let sq = api
            .subscribe(NodeId(4), soft, SubscribeSpec::default())
            .unwrap();
        let bq = api
            .subscribe(NodeId(5), bulk, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        (hq, sq, bq)
    };
    net.every(Duration::from_ms(10), Duration::from_us(100), move |api| {
        let _ = api.publish(NodeId(0), hard, Event::new(hard, vec![1; 8]));
    });
    net.every(Duration::from_ms(2), Duration::from_us(333), move |api| {
        let _ = api.publish(NodeId(1), soft, Event::new(soft, vec![2; 8]));
    });
    net.at(Time::from_ms(5), move |api| {
        api.publish(NodeId(2), bulk, Event::new(bulk, vec![3; 3000]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(500));
    let conf = rtec::conformance::check_network(&net, &sink);
    assert!(conf.passes(), "{conf}");
    let h = hq.drain();
    assert!((48..=50).contains(&h.len()), "HRT: {}", h.len());
    assert!(h
        .windows(2)
        .all(|w| { w[1].delivered_at - w[0].delivered_at == Duration::from_ms(10) }));
    assert!((240..=251).contains(&sq.drain().len()));
    let b = bq.drain();
    assert_eq!(b.len(), 1);
    assert_eq!(b[0].event.content.len(), 3000);
}

#[test]
fn same_seed_same_world() {
    let run = || {
        let mut net = Network::builder().nodes(4).seed(1234).build();
        let s = Subject::new(42);
        let q = {
            let mut api = net.api();
            api.announce(NodeId(0), s, ChannelSpec::srt(SrtSpec::default()))
                .unwrap();
            api.subscribe(NodeId(1), s, SubscribeSpec::default())
                .unwrap()
        };
        net.every(Duration::from_us(777), Duration::ZERO, move |api| {
            let _ = api.publish(NodeId(0), s, Event::new(s, vec![9; 8]));
        });
        net.run_for(Duration::from_ms(50));
        let deliveries: Vec<u64> = q.drain().iter().map(|d| d.delivered_at.as_ns()).collect();
        (deliveries, net.world().bus.stats.frames_ok)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn rta_verdict_matches_simulation() {
    // A DM-feasible set must run miss-free in the testbed; the analysis
    // is the off-line promise, the simulation the witness.
    let streams: Vec<StreamSpec> = (0..5)
        .map(|i| StreamSpec {
            id: i,
            node: NodeId(i as u8),
            dlc: 8,
            pattern: ArrivalPattern::periodic(Duration::from_ms(2 + u64::from(i) * 2)),
            rel_deadline: Duration::from_ms(2 + u64::from(i) * 2),
            rel_expiration: None,
        })
        .collect();
    let specs: Vec<MessageSpec> = streams
        .iter()
        .enumerate()
        .map(|(rank, s)| MessageSpec {
            priority: rank as u32,
            dlc: s.dlc,
            period: s.pattern.mean_gap(),
            deadline: s.rel_deadline,
            jitter: Duration::ZERO,
        })
        .collect();
    assert!(total_utilization(&specs, BitTiming::MBIT_1) < 0.3);
    let rta = rta_feasible(&specs, BitTiming::MBIT_1);
    assert!(rta.iter().all(|r| r.feasible), "analysis predicts feasible");
    let stats = run_testbed(
        FixedPriorityPolicy::deadline_monotonic(&streams),
        TestbedConfig {
            bus: BusConfig::default(),
            streams,
            seed: 7,
            drop_on_expiry: false,
        },
        Duration::from_secs(1),
    );
    assert_eq!(stats.missed, 0, "simulation confirms the analysis");
    assert!(stats.completed > 900);
}

#[test]
fn np_edf_analysis_matches_edf_testbed() {
    // A set the demand-bound test declares feasible runs miss-free
    // under the EDF policy; an infeasible one misses.
    let feasible: Vec<StreamSpec> = (0..4)
        .map(|i| StreamSpec {
            id: i,
            node: NodeId(i as u8),
            dlc: 8,
            pattern: ArrivalPattern::periodic(Duration::from_ms(1 + u64::from(i))),
            rel_deadline: Duration::from_ms(1 + u64::from(i)),
            rel_expiration: None,
        })
        .collect();
    let to_specs = |set: &[StreamSpec]| -> Vec<MessageSpec> {
        set.iter()
            .map(|s| MessageSpec {
                priority: 0,
                dlc: s.dlc,
                period: s.pattern.mean_gap(),
                deadline: s.rel_deadline,
                jitter: Duration::ZERO,
            })
            .collect()
    };
    assert!(np_edf_feasible(&to_specs(&feasible), BitTiming::MBIT_1).feasible);
    let run = |set: Vec<StreamSpec>| {
        run_testbed(
            EdfPolicy::default(),
            TestbedConfig {
                bus: BusConfig::default(),
                streams: set,
                seed: 13,
                drop_on_expiry: false,
            },
            Duration::from_secs(1),
        )
    };
    let stats = run(feasible.clone());
    assert_eq!(stats.missed, 0, "analysis says feasible, testbed agrees");

    // Push the same set into infeasibility.
    let overloaded = rtec::workloads::scale_load(&feasible, 4.0); // U > 1
    assert!(!np_edf_feasible(&to_specs(&overloaded), BitTiming::MBIT_1).feasible);
    let stats2 = run(overloaded);
    assert!(stats2.miss_ratio() > 0.2, "testbed confirms infeasibility");
}

#[test]
fn sae_hard_subset_is_admissible() {
    // The 5/10 ms hard messages of the SAE-class set all fit a 10 ms
    // calendar round with k = 1 redundancy.
    let requests: Vec<SlotRequest> = sae_class_set()
        .iter()
        .filter(|m| m.class == TimelinessClass::Hard)
        .enumerate()
        .map(|(i, m)| {
            let ArrivalPattern::Periodic { period, .. } = m.pattern else {
                panic!("hard messages are periodic");
            };
            SlotRequest {
                etag: 16 + i as u16,
                publisher: m.node,
                dlc: m.dlc,
                omission_degree: 1,
                period,
            }
        })
        .collect();
    let plan = CalendarPlan::plan(
        Duration::from_ms(10),
        &requests,
        BitTiming::MBIT_1,
        Duration::from_us(40),
    )
    .expect("SAE hard subset schedulable");
    plan.validate().unwrap();
    // 3 channels at 5 ms (2 slots each) + 4 at 10 ms.
    assert_eq!(plan.slots.len(), 3 * 2 + 4);
    assert!(plan.reserved_utilization() < 0.6);
}

#[test]
fn drifting_clocks_still_meet_slots_within_the_gap() {
    // ±30 ppm drift accumulates ~9 µs over a 300 ms run — well inside
    // the 40 µs inter-slot gap, so the calendar keeps working without
    // resynchronization. (E9 covers the sync protocol itself.)
    let clocks = vec![
        ClockParams::PERFECT,
        ClockParams {
            drift_ppm: 30.0,
            initial_offset_ns: 2_000.0,
        },
        ClockParams {
            drift_ppm: -30.0,
            initial_offset_ns: -1_500.0,
        },
        ClockParams {
            drift_ppm: 15.0,
            initial_offset_ns: 500.0,
        },
    ];
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .clocks(clocks)
        .build();
    let sink = net.enable_trace();
    let s = Subject::new(77);
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(1),
            s,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        let q = api
            .subscribe(NodeId(2), s, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    net.every(Duration::from_ms(10), Duration::from_us(100), move |api| {
        let _ = api.publish(NodeId(1), s, Event::new(s, vec![1; 8]));
    });
    net.run_for(Duration::from_ms(300));
    // Even with drifting clocks the run must audit clean (the auditor
    // widens its windows by a drift tolerance when clocks are enabled).
    let conf = rtec::conformance::check_network(&net, &sink);
    assert!(conf.passes(), "{conf}");
    let deliveries = q.drain();
    assert!(deliveries.len() >= 28, "{}", deliveries.len());
    let etag = net.world().registry().etag_of(s).unwrap();
    assert_eq!(net.stats().channel(etag).missing_events, 0);
    // Deliveries stay near-periodic; the residual wobble is the clock
    // disagreement, bounded far below the gap.
    for w in deliveries.windows(2) {
        let gap = w[1].delivered_at.saturating_since(w[0].delivered_at);
        let err = gap.as_ns() as i64 - 10_000_000i64;
        assert!(err.unsigned_abs() < 40_000, "wobble {err}ns exceeds ΔG_min");
    }
}

#[test]
fn edf_channels_and_testbed_agree_on_light_load() {
    // The same light workload produces zero misses both through the
    // full middleware (SRTEC) and through the policy testbed.
    let mut rng = Rng::seed_from_u64(3);
    let set = uniform_srt_set(6, 3, Duration::from_ms(20), Duration::from_ms(80), &mut rng);
    let tb = run_testbed(
        EdfPolicy::default(),
        TestbedConfig {
            bus: BusConfig::default(),
            streams: set,
            seed: 3,
            drop_on_expiry: true,
        },
        Duration::from_secs(1),
    );
    assert_eq!(tb.missed + tb.dropped, 0);

    let mut net = Network::builder().nodes(3).build();
    let s = Subject::new(5);
    {
        let mut api = net.api();
        api.announce(NodeId(0), s, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(1), s, SubscribeSpec::default())
            .unwrap();
    }
    net.every(Duration::from_ms(20), Duration::ZERO, move |api| {
        let _ = api.publish(NodeId(0), s, Event::new(s, vec![1; 8]));
    });
    net.run_for(Duration::from_secs(1));
    let etag = net.world().registry().etag_of(s).unwrap();
    let ch = net.stats().channel(etag);
    assert_eq!(ch.deadline_misses, 0);
    assert_eq!(ch.expired_drops, 0);
    // The final publish may still be in flight at the horizon.
    assert!(ch.delivered >= ch.published - 1);
}
