//! Overload awareness and adaptation on soft real-time channels.
//!
//! The paper's SRT design is explicitly *not* guaranteed under
//! transient overload — instead the middleware makes the application
//! aware (deadline-miss and expiration exceptions, §2.2.2) so it can
//! adapt. This example runs a telemetry publisher that halves its rate
//! whenever its channel reports trouble and ramps back up in calm
//! phases, while a burst source periodically floods the bus.
//!
//! ```text
//! cargo run --release --example overload_adaptation
//! ```

use rtec::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const TELEMETRY: Subject = Subject::new(0x7001);
const BURST: Subject = Subject::new(0x7002);

fn main() {
    let mut net = Network::builder().nodes(4).build();

    // Shared adaptive state: current telemetry period and trouble flag.
    #[derive(Debug)]
    struct Adaptive {
        period_us: u64,
        exceptions_seen: u64,
        rate_changes: Vec<(Time, u64)>,
    }
    let state = Rc::new(RefCell::new(Adaptive {
        period_us: 500,
        exceptions_seen: 0,
        rate_changes: vec![],
    }));

    let telemetry_q = {
        let mut api = net.api();
        let exc_state = state.clone();
        api.announce_with_handler(
            NodeId(0),
            TELEMETRY,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(2),
                default_expiration: Some(Duration::from_ms(8)),
            }),
            move |_exc| {
                // Local awareness: count; the publisher loop adapts.
                exc_state.borrow_mut().exceptions_seen += 1;
            },
        )
        .unwrap();
        // The burst source with tight deadlines (beats telemetry in
        // arbitration when both are urgent).
        api.announce(
            NodeId(1),
            BURST,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_us(400),
                default_expiration: Some(Duration::from_ms(4)),
            }),
        )
        .unwrap();
        api.subscribe(NodeId(3), BURST, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(2), TELEMETRY, SubscribeSpec::default())
            .unwrap()
    };

    // Telemetry publisher: self-rescheduling with an adaptive period.
    // (A fixed `every` cadence could not change rate, so the closure
    // re-reads the period each tick and skips ticks while backing off.)
    let pub_state = state.clone();
    let last_fire = Rc::new(RefCell::new(Time::ZERO));
    net.every(Duration::from_us(100), Duration::ZERO, move |api| {
        let mut s = pub_state.borrow_mut();
        let now = api.now();
        // Adaptation rule: trouble -> double the period (up to 8 ms);
        // calm for a while -> halve it (down to 500 us).
        if s.exceptions_seen > 0 {
            s.exceptions_seen = 0;
            if s.period_us < 8_000 {
                s.period_us *= 2;
                let period = s.period_us;
                s.rate_changes.push((now, period));
            }
        }
        let due = {
            let lf = last_fire.borrow();
            now.saturating_since(*lf) >= Duration::from_us(s.period_us)
        };
        if due {
            *last_fire.borrow_mut() = now;
            let _ = api.publish(
                NodeId(0),
                TELEMETRY,
                Event::new(TELEMETRY, now.as_ns().to_le_bytes().to_vec()),
            );
        }
    });
    // Slow recovery: every 20 ms of calm, speed back up.
    let recover_state = state.clone();
    net.every(Duration::from_ms(20), Duration::from_ms(10), move |api| {
        let mut s = recover_state.borrow_mut();
        if s.exceptions_seen == 0 && s.period_us > 500 {
            s.period_us /= 2;
            let period = s.period_us;
            s.rate_changes.push((api.now(), period));
        }
    });

    // Burst source: every 50 ms, a 10 ms flood of back-to-back frames.
    net.every(Duration::from_ms(50), Duration::from_ms(5), move |api| {
        for i in 0..70u8 {
            let _ = api.publish(NodeId(1), BURST, Event::new(BURST, vec![i; 8]));
        }
    });

    net.run_for(Duration::from_ms(300));

    let s = state.borrow();
    let stats = net.stats();
    let etag = net.world().registry().etag_of(TELEMETRY).unwrap();
    let ch = stats.channel(etag);
    println!("overload adaptation after 300 ms:");
    println!(
        "  telemetry: {} published, {} delivered, {} deadline misses, {} expired",
        ch.published, ch.delivered, ch.deadline_misses, ch.expired_drops
    );
    println!("  rate adaptations:");
    for (t, period) in &s.rate_changes {
        println!("    at {t}: period -> {period} us");
    }
    println!(
        "  telemetry queue backlog at end: {}",
        net.world().srt_queue_len(NodeId(0))
    );
    assert!(
        !s.rate_changes.is_empty(),
        "the publisher must have adapted to the bursts"
    );
    assert!(
        telemetry_q.len() as u64 == ch.delivered,
        "all deliveries reached the queue"
    );
    println!("  => application adapted instead of flooding a congested bus");
}
