//! Dynamic binding and bus monitoring: watch the middleware bind
//! subjects to etags over the wire (the protocol of [13]) and trace the
//! resulting bus traffic frame by frame.
//!
//! ```text
//! cargo run --release --example dynamic_binding
//! ```

use rtec::prelude::*;

const PRESSURE: Subject = Subject::new(0xCAFE_0001);
const FLOW: Subject = Subject::new(0xCAFE_0002);

fn main() {
    // Node 0 hosts the binding agent (default); tracing on.
    let mut net = Network::builder().nodes(4).dynamic_binding(true).build();
    let trace = net.enable_trace();

    let (pressure_q, flow_q) = {
        let mut api = net.api();
        // Announcements and subscriptions from non-agent nodes trigger
        // BIND_REQUEST / BIND_REPLY exchanges on the bus.
        api.announce(NodeId(1), PRESSURE, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(2), FLOW, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        let p = api
            .subscribe(NodeId(3), PRESSURE, SubscribeSpec::default())
            .unwrap();
        let f = api
            .subscribe(NodeId(3), FLOW, SubscribeSpec::default())
            .unwrap();
        (p, f)
    };

    // Publish immediately — the middleware queues these until the
    // *publisher's* binding completes, then flushes. Note the P/S
    // semantics: the flushed event may hit the wire before the
    // subscriber's own binding (and hardware filter) is in place, in
    // which case it is simply not seen — publish/subscribe makes no
    // delivery promises to not-yet-active subscriptions.
    net.after(Duration::from_us(1), |api| {
        api.publish(NodeId(1), PRESSURE, Event::new(PRESSURE, vec![42]))
            .unwrap();
        api.publish(NodeId(2), FLOW, Event::new(FLOW, vec![17]))
            .unwrap();
    });
    // A second publication once all bindings have settled.
    net.at(Time::from_ms(5), |api| {
        api.publish(NodeId(1), PRESSURE, Event::new(PRESSURE, vec![43]))
            .unwrap();
        api.publish(NodeId(2), FLOW, Event::new(FLOW, vec![18]))
            .unwrap();
    });
    net.run_for(Duration::from_ms(10));

    println!("bindings after 10 ms:");
    for s in [PRESSURE, FLOW] {
        println!(
            "  subject {s} -> etag {:?}",
            net.world().registry().etag_of(s)
        );
    }
    let p = pressure_q.drain();
    let f = flow_q.drain();
    println!(
        "deliveries: pressure={} flow={} (the t≈0 publications raced the \n\
         subscriber's binding; the 5 ms ones arrived)",
        p.len(),
        f.len()
    );
    assert_eq!(p.last().unwrap().event.content, vec![43]);
    assert_eq!(f.last().unwrap().event.content, vec![18]);

    println!("\nfirst 20 bus trace events:");
    for ev in trace.events().iter().take(20) {
        println!("  {ev}");
    }
    println!(
        "\n{} frames on the wire total ({} trace events)",
        net.world().bus.stats.frames_ok,
        trace.len()
    );
}
