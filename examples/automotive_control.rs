//! An SAE-class automotive control network (the paper's motivating
//! domain): seven stations exchange the full mix of hard periodic
//! control signals, sporadic driver inputs and slow status traffic,
//! each mapped to its event-channel class.
//!
//! ```text
//! cargo run --release --example automotive_control
//! ```

use rtec::prelude::*;
use rtec::workloads::{sae_class_set, ArrivalPattern, SaeMessage, TimelinessClass};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The instrument cluster (node 5) subscribes to everything it shows.
const DASHBOARD: u8 = 5;

fn subject_of(index: usize) -> Subject {
    Subject::new(0xA000 + index as u64)
}

fn main() {
    let set = sae_class_set();
    let mut net = Network::builder()
        .nodes(7)
        .round(Duration::from_ms(10))
        .build();

    let misses: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let queues: Rc<RefCell<HashMap<&'static str, EventQueue>>> =
        Rc::new(RefCell::new(HashMap::new()));

    // --- channel setup: one channel per signal, class from the set ----
    {
        let mut api = net.api();
        for (i, m) in set.iter().enumerate() {
            let subject = subject_of(i);
            let spec = match m.class {
                TimelinessClass::Hard => {
                    let ArrivalPattern::Periodic { period, .. } = m.pattern else {
                        panic!("hard signals are periodic");
                    };
                    ChannelSpec::hrt(HrtSpec {
                        period,
                        dlc: m.dlc,
                        omission_degree: 1,
                        sporadic: false,
                    })
                }
                TimelinessClass::Soft => ChannelSpec::srt(SrtSpec {
                    default_deadline: m.deadline,
                    default_expiration: Some(m.deadline * 4),
                }),
                TimelinessClass::NonRt => ChannelSpec::nrt(NrtSpec::default()),
            };
            let miss_count = misses.clone();
            api.announce_with_handler(m.node, subject, spec, move |_exc| {
                *miss_count.borrow_mut() += 1;
            })
            .expect(m.name);
            let q = api
                .subscribe(NodeId(DASHBOARD), subject, SubscribeSpec::default())
                .expect(m.name);
            queues.borrow_mut().insert(m.name, q);
        }
        api.install_calendar().expect("SAE hard set is schedulable");
    }

    // --- traffic: publish every signal per its arrival pattern --------
    for (i, m) in set.iter().enumerate() {
        let subject = subject_of(i);
        let m: SaeMessage = m.clone();
        match m.pattern {
            ArrivalPattern::Periodic { period, .. } => {
                net.every(period, Duration::from_us(23 + i as u64), move |api| {
                    let _ = api.publish(
                        m.node,
                        subject,
                        Event::new(subject, vec![i as u8; m.dlc as usize]),
                    );
                });
            }
            ArrivalPattern::Sporadic { min_gap, .. } => {
                // Demo: fire sporadics at 3x their minimum inter-arrival.
                net.every(min_gap * 3, Duration::from_us(41 + i as u64), move |api| {
                    let _ = api.publish(
                        m.node,
                        subject,
                        Event::new(subject, vec![i as u8; m.dlc as usize]),
                    );
                });
            }
            ArrivalPattern::Poisson { mean_gap } => {
                net.every(mean_gap, Duration::ZERO, move |api| {
                    let _ = api.publish(
                        m.node,
                        subject,
                        Event::new(subject, vec![i as u8; m.dlc as usize]),
                    );
                });
            }
        }
    }

    // --- one second of vehicle time -----------------------------------
    let horizon = Duration::from_secs(1);
    net.run_for(horizon);

    println!("SAE-class network after {}:", horizon);
    println!(
        "  bus utilization: {:.1}%",
        net.world().bus.stats.utilization(horizon) * 100.0
    );
    let mut by_class: HashMap<&str, (usize, u64)> = HashMap::new();
    for (i, m) in set.iter().enumerate() {
        let q = &queues.borrow()[m.name];
        let n = q.drain().len() as u64;
        let class = match m.class {
            TimelinessClass::Hard => "hard",
            TimelinessClass::Soft => "soft",
            TimelinessClass::NonRt => "non-rt",
        };
        let e = by_class.entry(class).or_default();
        e.0 += 1;
        e.1 += n;
        let _ = i;
    }
    for (class, (signals, deliveries)) in &by_class {
        println!("  {class:>6}: {signals:>2} signals, {deliveries:>5} deliveries at the dashboard");
    }
    println!("  channel exceptions: {}", misses.borrow());

    // The 5 ms control loops must be intact: check the torque command.
    let stats = net.stats();
    let torque_etag = net
        .world()
        .registry()
        .etag_of(subject_of(0))
        .expect("bound");
    let torque = stats.channel(torque_etag);
    println!(
        "  traction_torque_cmd: {} published / {} delivered / {} missing (jitter {} ns)",
        torque.published,
        torque.delivered,
        torque.missing_events,
        torque.delivery_jitter_ns()
    );
    assert_eq!(torque.missing_events, 0, "hard control loop intact");
}
