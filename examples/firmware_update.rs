//! Firmware update over the NRT channel while the control system keeps
//! running — the paper's headline NRTEC use case ("ROM-images,
//! electronic data sheets", §2.2.3/§5).
//!
//! A 48 KiB firmware image is pushed to a smart actuator over a
//! fragmented NRT channel while a 10 ms hard control loop and sporadic
//! soft events run undisturbed. The transfer soaks up exactly the
//! bandwidth the real-time classes leave over.
//!
//! ```text
//! cargo run --release --example firmware_update
//! ```

use rtec::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// (arrival instant, reassembled image) shared with the subscriber's
/// notification handler.
type ReceivedImage = Rc<RefCell<Option<(Time, Vec<u8>)>>>;

const CONTROL: Subject = Subject::new(0x9001);
const ALERTS: Subject = Subject::new(0x9002);
const FIRMWARE: Subject = Subject::new(0x9003);
const IMAGE_LEN: usize = 48 * 1024;

fn main() {
    let mut net = Network::builder()
        .nodes(5)
        .round(Duration::from_ms(10))
        .build();

    let received: ReceivedImage = Rc::new(RefCell::new(None));
    let (control_q, alerts_q) = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            CONTROL,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 2,
                sporadic: false,
            }),
        )
        .unwrap();
        api.announce(NodeId(1), ALERTS, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(3), FIRMWARE, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        let control_q = api
            .subscribe(NodeId(2), CONTROL, SubscribeSpec::default())
            .unwrap();
        let alerts_q = api
            .subscribe(NodeId(2), ALERTS, SubscribeSpec::default())
            .unwrap();
        let rx = received.clone();
        api.subscribe_with(
            NodeId(4),
            FIRMWARE,
            SubscribeSpec::default(),
            move |d| {
                *rx.borrow_mut() = Some((d.delivered_at, d.event.content.clone()));
            },
            |exc| eprintln!("firmware channel exception: {exc}"),
        )
        .unwrap();
        api.install_calendar().unwrap();
        control_q.clone().pop(); // (no-op: show the queue is shared/cloneable)
        (control_q, alerts_q)
    };

    // The control loop never stops.
    net.every(Duration::from_ms(10), Duration::from_us(80), |api| {
        let _ = api.publish(NodeId(0), CONTROL, Event::new(CONTROL, vec![0xC0; 8]));
    });
    // Sporadic alerts.
    net.every(Duration::from_ms(7), Duration::from_ms(3), |api| {
        let _ = api.publish(NodeId(1), ALERTS, Event::new(ALERTS, vec![0xA1; 4]));
    });
    // Kick off the firmware push at t = 20 ms.
    net.at(Time::from_ms(20), |api| {
        let image: Vec<u8> = (0..IMAGE_LEN).map(|i| (i * 7 % 256) as u8).collect();
        println!("pushing {IMAGE_LEN} byte image at {}", api.now());
        api.publish(NodeId(3), FIRMWARE, Event::new(FIRMWARE, image))
            .unwrap();
    });

    // Run until the image lands (plus margin).
    net.run_for(Duration::from_secs(3));

    let rx = received.borrow();
    let (done_at, image) = rx.as_ref().expect("firmware image must arrive");
    let expected: Vec<u8> = (0..IMAGE_LEN).map(|i| (i * 7 % 256) as u8).collect();
    assert_eq!(image, &expected, "image intact after reassembly");
    let transfer = done_at.saturating_since(Time::from_ms(20));
    println!("firmware update finished:");
    println!(
        "  {} bytes in {} ({:.0} kbit/s goodput)",
        image.len(),
        transfer,
        image.len() as f64 * 8.0 / 1000.0 / transfer.as_secs_f64()
    );

    // Real-time traffic was untouched.
    let control = control_q.drain();
    let gaps_ok = control
        .windows(2)
        .all(|w| w[1].delivered_at - w[0].delivered_at == Duration::from_ms(10));
    println!(
        "  control loop: {} deliveries, perfectly periodic: {gaps_ok}",
        control.len()
    );
    println!("  alerts delivered: {}", alerts_q.drain().len());
    let stats = net.stats();
    let control_etag = net.world().registry().etag_of(CONTROL).unwrap();
    assert_eq!(stats.channel(control_etag).missing_events, 0);
    assert!(
        gaps_ok,
        "firmware transfer must not disturb the control loop"
    );
}
