//! Quickstart: one channel of every class on a five-node bus.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example walks the full API surface of the paper (Figs. 1–2):
//! `announce`, `publish`, `subscribe` (with event queue, notification
//! handler and exception handler), the off-line calendar admission for
//! the hard real-time channel, and `cancelSubscription`.

use rtec::prelude::*;

fn main() {
    // A 5-node CAN segment at 1 Mbit/s (the paper's configuration).
    let mut net = Network::builder()
        .nodes(5)
        .round(Duration::from_ms(10))
        .build();

    // Subjects are system-wide unique identifiers for event types.
    let wheel_speed = Subject::new(0x0100); // hard real-time sensor value
    let door_state = Subject::new(0x0200); // soft real-time event
    let datasheet = Subject::new(0x0300); // non real-time bulk data

    // --- set up channels -------------------------------------------------
    let (speed_q, door_q, sheet_q) = {
        let mut api = net.api();

        // HRTEC: node 0 publishes wheel speed every 10 ms; the channel
        // reserves a slot per period sized for omission degree k = 2.
        api.announce(
            NodeId(0),
            wheel_speed,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 2,
                sporadic: false,
            }),
        )
        .expect("announce HRT");

        // SRTEC: node 1 publishes door events with a 5 ms transmission
        // deadline and 20 ms validity.
        api.announce(
            NodeId(1),
            door_state,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(5),
                default_expiration: Some(Duration::from_ms(20)),
            }),
        )
        .expect("announce SRT");

        // NRTEC: node 3 publishes electronic data sheets (fragmented
        // bulk transfers at the lowest bus priority).
        api.announce(NodeId(3), datasheet, ChannelSpec::nrt(NrtSpec::bulk()))
            .expect("announce NRT");

        // Subscriptions: plain event queue for the sensor...
        let speed_q = api
            .subscribe(NodeId(2), wheel_speed, SubscribeSpec::default())
            .expect("subscribe HRT");
        // ... a notification + exception handler pair for the doors ...
        let door_q = api
            .subscribe_with(
                NodeId(2),
                door_state,
                SubscribeSpec::default(),
                |delivery| {
                    println!(
                        "  [not_handler] door event {:?} delivered at {}",
                        delivery.event.content, delivery.delivered_at
                    );
                },
                |exc| println!("  [exception] {exc}"),
            )
            .expect("subscribe SRT");
        // ... and a queue for the data sheets on node 4.
        let sheet_q = api
            .subscribe(NodeId(4), datasheet, SubscribeSpec::default())
            .expect("subscribe NRT");

        // HRT channels need their reservations confirmed by the off-line
        // admission test before traffic starts (§3.1).
        api.install_calendar().expect("calendar admission");
        (speed_q, door_q, sheet_q)
    };

    // --- generate traffic ------------------------------------------------
    // Periodic sensor readings, staged fresh every round.
    net.every(Duration::from_ms(10), Duration::from_us(50), move |api| {
        let reading = api.now().as_ns().to_le_bytes();
        api.publish(
            NodeId(0),
            wheel_speed,
            Event::new(wheel_speed, reading.to_vec()),
        )
        .unwrap();
    });
    // A couple of sporadic door events.
    for (at_ms, state) in [(3u64, 1u8), (17, 0), (31, 1)] {
        net.at(Time::from_ms(at_ms), move |api| {
            api.publish(NodeId(1), door_state, Event::new(door_state, vec![state]))
                .unwrap();
        });
    }
    // One 2 KiB data sheet.
    net.at(Time::from_ms(5), move |api| {
        let sheet: Vec<u8> = (0..2048u32).map(|i| (i % 256) as u8).collect();
        api.publish(NodeId(3), datasheet, Event::new(datasheet, sheet))
            .unwrap();
    });

    // --- run 100 ms of simulated time -------------------------------------
    net.run_for(Duration::from_ms(100));

    // --- inspect ----------------------------------------------------------
    println!("after 100 ms of bus time:");
    let speeds = speed_q.drain();
    println!(
        "  wheel-speed deliveries: {} (every 10 ms, zero jitter: {})",
        speeds.len(),
        speeds
            .windows(2)
            .all(|w| w[1].delivered_at - w[0].delivered_at == Duration::from_ms(10))
    );
    println!("  door-state deliveries: {}", door_q.drain().len());
    let sheets = sheet_q.drain();
    println!(
        "  data sheets: {} ({} bytes reassembled from CAN frames)",
        sheets.len(),
        sheets.first().map_or(0, |d| d.event.content.len())
    );
    println!(
        "  bus utilization: {:.1}%",
        net.world().bus.stats.utilization(Duration::from_ms(100)) * 100.0
    );

    // cancelSubscription is a strictly local operation (§2.2.1).
    net.api()
        .cancel_subscription(NodeId(2), door_state)
        .expect("cancel");
    println!("  door subscription cancelled");
}
