//! Model-checked interleaving exploration of the conservative
//! window-barrier handshake in `rtec_sim::parallel` (compiled only
//! under `RUSTFLAGS="--cfg loom"`; see the ci.sh model-check job).
//!
//! The scenario is deliberately minimal — two segments, one relay
//! edge, a handful of windows — because the property is about the
//! *synchronization protocol*, not the workload: under **every**
//! thread schedule the parallel driver must produce exactly the
//! result the serial lockstep oracle produces, and must terminate
//! (a barrier deadlock shows up as a loom-reported hang). The sync
//! facade routes the driver's channels, spawns, and atomics through
//! the vendored loom stand-in, so the exploration really exercises
//! the same code paths the std build runs.

#![cfg(loom)]

use rtec_sim::parallel::{
    run_parallel, run_serial_windows, Envelope, ParallelSegment, RoutingTable, SegmentStep,
    WindowConfig,
};
use rtec_sim::{Duration, Time};

/// A toy segment mirroring the one in the unit tests: one tick per
/// quantum, relays its tick count on every boundary, records every
/// applied envelope.
struct Toy {
    ticks: u64,
    routes_out: Vec<u32>,
    latency: Duration,
    applied: Vec<(Time, u32, u64)>,
}

impl SegmentStep for Toy {
    type Relay = u64;
    fn advance_to(&mut self, _t: Time) {
        self.ticks += 1;
    }
    fn collect(&mut self, now: Time, out: &mut Vec<Envelope<u64>>) {
        for &route in &self.routes_out {
            out.push(Envelope {
                due: now + self.latency,
                collected_at: now,
                route,
                payload: self.ticks,
            });
        }
    }
    fn apply(&mut self, env: Envelope<u64>) {
        self.applied.push((env.due, env.route, env.payload));
    }
}

impl ParallelSegment for Toy {
    type Report = (u64, Vec<(Time, u32, u64)>);
    fn finish(self) -> Self::Report {
        (self.ticks, self.applied)
    }
}

fn factories(
    routing: &RoutingTable,
    latency: Duration,
) -> Vec<impl FnOnce() -> Toy + Send + 'static> {
    (0..routing.segments())
        .map(|i| {
            let routes_out: Vec<u32> = (0..routing.routes() as u32)
                .filter(|&r| routing.source(r) == i)
                .collect();
            move || Toy {
                ticks: 0,
                routes_out,
                latency,
                applied: Vec::new(),
            }
        })
        .collect()
}

/// Two segments, one relay edge, two full windows plus a partial
/// boundary: under every schedule the barrier handshake must neither
/// deadlock nor reorder relays — the reports are byte-identical to
/// the serial oracle's.
#[test]
fn window_barrier_matches_serial_under_all_schedules() {
    let routing = || {
        let mut rt = RoutingTable::new(2);
        rt.add_route(0, 1);
        rt
    };
    let cfg = WindowConfig {
        quantum: Duration::from_us(100),
        lookahead: Duration::from_us(200),
    };
    let until = Time::ZERO + Duration::from_us(450);
    let latency = Duration::from_us(200);

    // The oracle is deterministic; compute it once, outside the model.
    let rt = routing();
    let serial = run_serial_windows::<Toy, _>(factories(&rt, latency), &rt, cfg, until);

    let stats = loom::explore(move || {
        let rt = routing();
        let par = run_parallel::<Toy, _>(factories(&rt, latency), &rt, cfg, until);
        assert_eq!(
            serial, par.reports,
            "parallel run diverged from the serial oracle under some schedule"
        );
        assert_eq!(par.stats.threads, 2);
        assert!(par.stats.windows > 0, "at least one window barrier ran");
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
}

/// Bidirectional relay (a route each way): both directions cross the
/// same barrier and the handshake still terminates and agrees with
/// the oracle under every schedule.
#[test]
fn bidirectional_relay_agrees_under_all_schedules() {
    let routing = || {
        let mut rt = RoutingTable::new(2);
        rt.add_route(0, 1);
        rt.add_route(1, 0);
        rt
    };
    let cfg = WindowConfig {
        quantum: Duration::from_us(100),
        lookahead: Duration::from_us(100),
    };
    let until = Time::ZERO + Duration::from_us(300);
    let latency = Duration::from_us(100);

    let rt = routing();
    let serial = run_serial_windows::<Toy, _>(factories(&rt, latency), &rt, cfg, until);

    let stats = loom::explore(move || {
        let rt = routing();
        let par = run_parallel::<Toy, _>(factories(&rt, latency), &rt, cfg, until);
        assert_eq!(serial, par.reports, "bidirectional relay diverged");
    });
    assert!(stats.executions >= 2, "exploration must branch: {stats:?}");
}
