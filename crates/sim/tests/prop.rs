//! Property-based tests of the discrete-event engine and statistics.

use proptest::prelude::*;
use rtec_sim::{Ctx, Duration, Engine, HeapScheduler, Histogram, Model, OnlineStats, Time};

/// A model that records the dispatch order of (time, id) events.
struct Recorder {
    seen: Vec<(Time, u32)>,
}

impl Model for Recorder {
    type Event = (Time, u32);
    fn handle(&mut self, ctx: &mut Ctx<(Time, u32)>, ev: (Time, u32)) {
        assert_eq!(ctx.now(), ev.0, "event fires at its scheduled time");
        self.seen.push(ev);
    }
}

/// One externally-driven scheduler operation for the differential test.
#[derive(Clone, Debug)]
enum SchedOp {
    /// Schedule at `now + delay_ns`.
    Schedule(u64),
    /// Cancel the n-th handle issued so far (mod count) — may already
    /// have fired or been cancelled.
    Cancel(usize),
    /// `run_until(now + delta_ns)` on both schedulers, then compare.
    Run(u64),
}

/// Mix short (same-granule), medium, and far-overflow-level horizons so
/// every wheel level and the imminent heap get exercised.
fn scheduler_op() -> impl Strategy<Value = SchedOp> {
    prop_oneof![
        (0u64..4_096).prop_map(SchedOp::Schedule),
        (0u64..4_096).prop_map(SchedOp::Schedule),
        (0u64..2_000_000).prop_map(SchedOp::Schedule),
        (0u64..1_000_000_000_000).prop_map(SchedOp::Schedule),
        any::<usize>().prop_map(SchedOp::Cancel),
        any::<usize>().prop_map(SchedOp::Cancel),
        (0u64..3_000_000).prop_map(SchedOp::Run),
        (0u64..3_000_000).prop_map(SchedOp::Run),
        (0u64..2_000_000_000_000).prop_map(SchedOp::Run),
    ]
}

proptest! {
    /// Events always dispatch in non-decreasing time order, and
    /// same-time events dispatch in scheduling order.
    #[test]
    fn dispatch_order_is_total(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut engine = Engine::new(Recorder { seen: vec![] });
        for (i, &t_us) in times.iter().enumerate() {
            let t = Time::from_us(t_us);
            engine.schedule_at(t, (t, i as u32));
        }
        engine.run();
        let seen = &engine.model.seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(1u64..5_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine = Engine::new(Recorder { seen: vec![] });
        let mut expect = vec![];
        let mut ids = vec![];
        for (i, &t_us) in times.iter().enumerate() {
            let t = Time::from_us(t_us);
            ids.push((engine.schedule_at(t, (t, i as u32)), i));
        }
        for (idx, &(timer, i)) in ids.iter().enumerate() {
            if cancel_mask.get(idx).copied().unwrap_or(false) {
                engine.ctx().cancel(timer);
            } else {
                expect.push(i as u32);
            }
        }
        engine.run();
        let mut got: Vec<u32> = engine.model.seen.iter().map(|&(_, i)| i).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// run_until never dispatches past the limit and leaves the clock at
    /// exactly the limit.
    #[test]
    fn run_until_respects_limit(
        times in prop::collection::vec(0u64..10_000, 1..100),
        limit_us in 0u64..10_000,
    ) {
        let mut engine = Engine::new(Recorder { seen: vec![] });
        for (i, &t_us) in times.iter().enumerate() {
            engine.schedule_at(Time::from_us(t_us), (Time::from_us(t_us), i as u32));
        }
        let limit = Time::from_us(limit_us);
        engine.run_until(limit);
        prop_assert_eq!(engine.now(), limit);
        let expected = times.iter().filter(|&&t| t <= limit_us).count();
        prop_assert_eq!(engine.model.seen.len(), expected);
        prop_assert!(engine.model.seen.iter().all(|&(t, _)| t <= limit));
    }

    /// Histogram percentiles are order statistics: p0 = min, p100 = max,
    /// and percentiles are monotone in p.
    #[test]
    fn histogram_percentiles_are_order_statistics(
        samples in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.percentile(0.0), Some(min));
        prop_assert_eq!(h.percentile(100.0), Some(max));
        let mut last = min;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= last, "monotone percentiles");
            prop_assert!(v <= max);
            last = v;
        }
    }

    /// Welford's streaming moments agree with the exact two-pass
    /// computation.
    #[test]
    fn online_stats_match_two_pass(samples in prop::collection::vec(-1e6f64..1e6, 2..300)) {
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.record(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var));
    }

    /// Differential test: the timing-wheel engine and the reference
    /// `BinaryHeap` scheduler (the engine's original implementation,
    /// kept in `rtec_sim::reference`) dispatch the *same sequence* in
    /// the *same order* and agree on the clock after every advance,
    /// under an arbitrary interleaving of schedule / cancel / run_until
    /// operations. Ties at the same instant must break in scheduling
    /// order in both.
    #[test]
    fn wheel_matches_reference_heap(ops in prop::collection::vec(scheduler_op(), 1..120)) {
        let mut engine = Engine::new(Recorder { seen: vec![] });
        let mut heap: HeapScheduler<(Time, u32)> = HeapScheduler::new();
        let mut heap_seen: Vec<(Time, u32)> = Vec::new();
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        let mut tag = 0u32;
        for op in ops {
            match op {
                SchedOp::Schedule(delay_ns) => {
                    let t = engine.now() + Duration::from_ns(delay_ns);
                    wheel_ids.push(engine.schedule_at(t, (t, tag)));
                    heap_ids.push(heap.at(t, (t, tag)));
                    tag += 1;
                }
                SchedOp::Cancel(nth) => {
                    if !wheel_ids.is_empty() {
                        // May target live, fired, or already-cancelled
                        // timers — all must behave identically.
                        let i = nth % wheel_ids.len();
                        engine.ctx().cancel(wheel_ids[i]);
                        heap.cancel(heap_ids[i]);
                    }
                }
                SchedOp::Run(delta_ns) => {
                    let limit = engine.now() + Duration::from_ns(delta_ns);
                    engine.run_until(limit);
                    while heap.pop_due(limit).map(|(_, ev)| heap_seen.push(ev)).is_some() {}
                    heap.advance_to(limit);
                    prop_assert_eq!(engine.now(), heap.now(), "clock advance diverged");
                    prop_assert_eq!(&engine.model.seen, &heap_seen, "dispatch order diverged");
                }
            }
        }
        // Drain both completely.
        let final_limit = Time::MAX;
        engine.run_until(final_limit);
        while heap.pop_due(final_limit).map(|(_, ev)| heap_seen.push(ev)).is_some() {}
        prop_assert_eq!(&engine.model.seen, &heap_seen);
        prop_assert_eq!(engine.dispatched(), heap.dispatched());
    }

    /// Time arithmetic: round_up/round_down bracket the value on the
    /// granule lattice.
    #[test]
    fn rounding_brackets(value_ns in 0u64..u64::MAX / 4, granule_ns in 1u64..1_000_000) {
        let t = Time::from_ns(value_ns);
        let g = Duration::from_ns(granule_ns);
        let up = t.round_up_to(g);
        let down = t.round_down_to(g);
        prop_assert!(down <= t && t <= up);
        prop_assert_eq!(up.as_ns() % granule_ns, 0);
        prop_assert_eq!(down.as_ns() % granule_ns, 0);
        prop_assert!(up.as_ns() - down.as_ns() <= granule_ns);
    }
}
