//! Deterministic random number generation for simulations.
//!
//! Every source of randomness in an experiment (fault injection, message
//! phasing, payload content, ...) draws from its own named stream derived
//! from a single run seed. Adding a new consumer of randomness therefore
//! does not perturb the draws seen by existing consumers, which keeps
//! regression comparisons meaningful across code changes.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the
//! reference construction recommended by its authors. It is implemented
//! here (rather than taken from a crate) so the exact stream is pinned
//! independent of dependency versions.

/// A deterministic xoshiro256** pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit draw (upper bits of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, n)` using Lemire's multiply-shift rejection
    /// method (unbiased). Panics if `n == 0`.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range_u64: empty range");
        // Fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: lo {lo} >= hi {hi}");
        lo + self.gen_range_u64(hi - lo)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Exponentially distributed draw with the given mean (inverse CDF).
    /// Used for Poisson inter-arrival times.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.gen_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Standard-normal draw (Box–Muller; one value per call, the pair's
    /// second half is discarded to keep the stream position simple).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range_u64(slice.len() as u64) as usize])
        }
    }
}

/// Factory deriving independent named [`Rng`] streams from one run seed.
///
/// The stream for a given `(seed, name)` pair is stable: the same name
/// always yields the same stream regardless of derivation order.
#[derive(Clone, Debug)]
pub struct RngStreams {
    seed: u64,
}

impl RngStreams {
    /// Create a stream factory for the given run seed.
    pub fn new(seed: u64) -> Self {
        RngStreams { seed }
    }

    /// The run seed this factory derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive the stream for `name` (FNV-1a over the name, mixed with
    /// the run seed).
    pub fn stream(&self, name: &str) -> Rng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Rng::seed_from_u64(self.seed ^ h)
    }

    /// Derive a stream for `name` specialized by an index (e.g. one
    /// stream per node).
    pub fn stream_indexed(&self, name: &str, index: u64) -> Rng {
        let mut rng = self.stream(name);
        // Mix the index through the stream's own state for independence.
        let mix = rng.next_u64() ^ index.wrapping_mul(0x9E3779B97F4A7C15);
        Rng::seed_from_u64(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Rng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(1.5));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn gen_normal_moments() {
        let mut rng = Rng::seed_from_u64(19);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gen_normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let streams = RngStreams::new(99);
        let mut a1 = streams.stream("faults");
        let mut a2 = streams.stream("faults");
        let mut b = streams.stream("phasing");
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_streams_differ() {
        let streams = RngStreams::new(5);
        let mut n0 = streams.stream_indexed("node", 0);
        let mut n1 = streams.stream_indexed("node", 1);
        assert_ne!(n0.next_u64(), n1.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = Rng::seed_from_u64(29);
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
