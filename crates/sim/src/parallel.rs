//! Deterministic parallel execution of multi-segment simulations.
//!
//! A multi-segment topology (N independent bus simulations joined by
//! store-and-forward gateways) is a textbook conservative
//! parallel-discrete-event-simulation problem: the gateway's minimum
//! store-and-forward latency is a *lookahead* — a relay collected at
//! simulated time `t` can never affect its target segment at or before
//! `t + lookahead − quantum`. Each segment therefore runs on its own
//! named OS thread, advancing through conservative **time windows** of
//! width ≤ lookahead; at every window barrier the threads exchange the
//! relays they collected during the window over bounded channels (an
//! empty batch is the null message carrying the time guarantee).
//!
//! Determinism is not statistical but exact: every envelope is tagged
//! with the boundary instant it was collected at and its global route
//! index, and the receiving thread stable-merges incoming batches by
//! `(collected_at, route)` — reproducing byte-for-byte the relay
//! insertion order the serial lockstep driver ([`run_serial_windows`],
//! the differential oracle) produces. Both drivers then flush due
//! relays with the same stable sort, so traces, stats and experiment
//! tables are identical regardless of the thread schedule.
//!
//! The module also hosts [`pool_map`], the small hand-rolled worker
//! pool the benchmark harness uses to shard independent experiment
//! runs (`experiments all --jobs N`). All primitives are routed
//! through [`crate::sync`], so the `C1`..`C6` source lints and the
//! vendored loom model checker cover this code (see
//! `crates/sim/tests/loom_model.rs` for the window-barrier handshake
//! model).

use crate::sync::{
    atomic::{AtomicUsize, Ordering},
    mpsc, thread, Arc, Mutex,
};
use crate::time::{Duration, Time};
use std::time::Instant;

/// One relay in flight between segments.
///
/// The three tag fields exist for determinism, not routing: they let
/// the receiving side reconstruct the exact relay-buffer insertion
/// order of the serial driver.
#[derive(Clone, Debug)]
pub struct Envelope<R> {
    /// Instant the relay becomes visible on the target segment.
    pub due: Time,
    /// Boundary instant the relay was collected at (source side).
    pub collected_at: Time,
    /// Global route index (creation order across the whole topology).
    pub route: u32,
    /// The relayed payload.
    pub payload: R,
}

/// One segment of a multi-segment simulation, as seen by the window
/// drivers.
///
/// `advance_to`/`collect`/`apply` are called in a fixed pattern at
/// every boundary `t`: advance the segment to `t`, drain the relays
/// that surfaced on its outgoing routes (stamped `collected_at = t`),
/// then apply whatever buffered envelopes have come due. The
/// implementation must be deterministic given the call sequence.
pub trait SegmentStep {
    /// Payload type relayed between segments.
    type Relay: Send + 'static;
    /// Advance the segment's simulation to absolute time `t`.
    fn advance_to(&mut self, t: Time);
    /// Drain relays collected on this segment's outgoing routes since
    /// the previous collect, appending envelopes stamped with `now`.
    /// Envelopes must be pushed in ascending global route order.
    fn collect(&mut self, now: Time, out: &mut Vec<Envelope<Self::Relay>>);
    /// Apply one due relay to this segment.
    fn apply(&mut self, env: Envelope<Self::Relay>);
}

/// A segment that can run on its own thread and produce a final
/// report once the horizon is reached.
pub trait ParallelSegment: SegmentStep + Sized {
    /// Per-segment result extracted after the run.
    type Report: Send + 'static;
    /// Consume the segment and produce its report.
    fn finish(self) -> Self::Report;
}

/// Static route table: which segment each global route leaves from and
/// arrives at.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    segments: usize,
    source: Vec<usize>,
    target: Vec<usize>,
}

impl RoutingTable {
    /// A table over `segments` segments with no routes yet.
    pub fn new(segments: usize) -> Self {
        RoutingTable {
            segments,
            source: Vec::new(),
            target: Vec::new(),
        }
    }

    /// Register a route `from → to`; returns its global route index.
    /// Self-loops are rejected (a gateway never relays onto its own
    /// segment).
    pub fn add_route(&mut self, from: usize, to: usize) -> u32 {
        assert!(from < self.segments && to < self.segments, "segment oob");
        assert_ne!(from, to, "route must cross a segment boundary");
        self.source.push(from);
        self.target.push(to);
        (self.source.len() - 1) as u32
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of routes.
    pub fn routes(&self) -> usize {
        self.source.len()
    }

    /// Source segment of a route.
    pub fn source(&self, route: u32) -> usize {
        self.source[route as usize]
    }

    /// Target segment of a route.
    pub fn target(&self, route: u32) -> usize {
        self.target[route as usize]
    }

    /// Directed segment pairs `(from, to)` that carry at least one
    /// route, deduplicated, in ascending order. One bounded channel is
    /// created per edge.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = self
            .source
            .iter()
            .copied()
            .zip(self.target.iter().copied())
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}

/// Conservative window parameters.
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Boundary spacing: segments advance and exchange eligibility is
    /// re-checked every `quantum` of simulated time.
    pub quantum: Duration,
    /// Minimum store-and-forward latency across all routes. Must be
    /// ≥ `quantum`; the window width is `⌊lookahead/quantum⌋·quantum`.
    pub lookahead: Duration,
}

impl WindowConfig {
    /// The conservative window width: the largest multiple of the
    /// quantum not exceeding the lookahead.
    pub fn window(&self) -> Duration {
        let q = self.quantum.as_ns().max(1);
        let w = (self.lookahead.as_ns() / q).max(1) * q;
        Duration::from_ns(w)
    }
}

/// Flush every buffered envelope due at or before `now` into `seg`,
/// in stable due order — the exact order the serial bridge uses.
pub fn flush_due<R: Send + 'static>(
    seg: &mut dyn SegmentStep<Relay = R>,
    pending: &mut Vec<Envelope<R>>,
    now: Time,
) {
    if pending.iter().all(|e| e.due > now) {
        return;
    }
    let (mut due, keep): (Vec<_>, Vec<_>) = std::mem::take(pending)
        .into_iter()
        .partition(|e| e.due <= now);
    *pending = keep;
    due.sort_by_key(|e| e.due); // stable: ties keep insertion order
    for env in due {
        seg.apply(env);
    }
}

/// Advance every segment to boundary `t`, collect fresh relays into
/// the per-target pending buffers (global route order), and flush what
/// has come due — one lockstep boundary of the serial driver.
pub fn step_boundary<R: Send + 'static>(
    segs: &mut [&mut dyn SegmentStep<Relay = R>],
    routing: &RoutingTable,
    pending: &mut [Vec<Envelope<R>>],
    t: Time,
) {
    for seg in segs.iter_mut() {
        seg.advance_to(t);
    }
    let mut staged: Vec<Envelope<R>> = Vec::new();
    for seg in segs.iter_mut() {
        seg.collect(t, &mut staged);
    }
    // Per-segment collects emit ascending local route ids; a stable
    // sort by route restores the single global insertion order.
    staged.sort_by_key(|e| e.route);
    for env in staged {
        pending[routing.target(env.route)].push(env);
    }
    for (i, seg) in segs.iter_mut().enumerate() {
        flush_due(&mut **seg, &mut pending[i], t);
    }
}

/// Run a topology serially on the calling thread: every segment is
/// built by its factory in index order and all segments advance in
/// lockstep quanta. This is the differential oracle the parallel
/// driver is checked against — byte-identical outputs are the
/// contract.
pub fn run_serial_windows<S, F>(
    factories: Vec<F>,
    routing: &RoutingTable,
    cfg: WindowConfig,
    until: Time,
) -> Vec<S::Report>
where
    S: ParallelSegment,
    F: FnOnce() -> S,
{
    assert_eq!(
        factories.len(),
        routing.segments(),
        "one factory per segment"
    );
    assert!(cfg.lookahead >= cfg.quantum, "lookahead below the quantum");
    let mut segments: Vec<S> = factories.into_iter().map(|f| f()).collect();
    let mut pending: Vec<Vec<Envelope<S::Relay>>> =
        (0..segments.len()).map(|_| Vec::new()).collect();
    let mut now = Time::ZERO;
    while now < until {
        let t = (now + cfg.quantum).min(until);
        let mut refs: Vec<&mut dyn SegmentStep<Relay = S::Relay>> = segments
            .iter_mut()
            .map(|s| s as &mut dyn SegmentStep<Relay = S::Relay>)
            .collect();
        step_boundary(&mut refs, routing, &mut pending, t);
        now = t;
    }
    segments.into_iter().map(|s| s.finish()).collect()
}

/// Wall-clock accounting for one parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelStats {
    /// Segment threads spawned.
    pub threads: usize,
    /// Conservative windows executed (identical on every thread).
    pub windows: u64,
    /// Total wall seconds across all threads (Σ per-thread run time).
    pub busy_s: f64,
    /// Wall seconds spent blocked at window barriers, summed across
    /// threads. `stall_s / busy_s` is the barrier-stall fraction: near
    /// 0 when per-window work dominates, near `(n−1)/n` when one
    /// segment carries all the load and the speedup degrades to 1×.
    pub stall_s: f64,
}

impl ParallelStats {
    /// Fraction of total thread time spent waiting at barriers.
    pub fn stall_fraction(&self) -> f64 {
        if self.busy_s > 0.0 {
            self.stall_s / self.busy_s
        } else {
            0.0
        }
    }
}

/// Result of [`run_parallel`]: per-segment reports in segment order
/// plus barrier accounting.
#[derive(Debug)]
pub struct ParallelRun<Rep> {
    /// Per-segment reports, in segment index order.
    pub reports: Vec<Rep>,
    /// Thread/barrier accounting.
    pub stats: ParallelStats,
}

/// Depth of the per-edge batch channels. At most one window batch is
/// genuinely in flight between mutually-connected segments (their
/// window indices can never drift further than one apart); a source
/// segment with no incoming edges may run ahead until this bound
/// back-pressures it.
pub const EDGE_CHANNEL_DEPTH: usize = 4;

/// One window's worth of relays crossing one edge. An empty batch is
/// the null message: it still carries the window index, i.e. the
/// guarantee that nothing earlier is coming.
struct WindowBatch<R> {
    window: u64,
    batch: Vec<Envelope<R>>,
}

/// One segment's outgoing edges: `(destination, batch sender)` pairs.
type EdgeSenders<R> = Vec<(usize, mpsc::SyncSender<WindowBatch<R>>)>;
/// One segment's incoming edges: `(source, batch receiver)` pairs,
/// kept sorted by source so merges are schedule-independent.
type EdgeReceivers<R> = Vec<(usize, mpsc::Receiver<WindowBatch<R>>)>;

/// Run a topology with one named OS thread per segment, synchronized
/// by conservative windows (see the module docs). Produces exactly the
/// same per-segment reports as [`run_serial_windows`] over the same
/// factories — the differential proptest in `rtec-core` holds the two
/// drivers to byte equality.
///
/// Panics if any segment thread panics, or if `lookahead < quantum`
/// (the conservative guarantee would be void).
pub fn run_parallel<S, F>(
    factories: Vec<F>,
    routing: &RoutingTable,
    cfg: WindowConfig,
    until: Time,
) -> ParallelRun<S::Report>
where
    S: ParallelSegment,
    F: FnOnce() -> S + Send + 'static,
{
    assert_eq!(
        factories.len(),
        routing.segments(),
        "one factory per segment"
    );
    assert!(cfg.lookahead >= cfg.quantum, "lookahead below the quantum");
    let n = factories.len();
    let window = cfg.window();

    // One bounded channel per directed edge that carries routes.
    let edges = routing.edges();
    let mut senders: Vec<EdgeSenders<S::Relay>> = (0..n).map(|_| Vec::new()).collect();
    let mut receivers: Vec<EdgeReceivers<S::Relay>> = (0..n).map(|_| Vec::new()).collect();
    for &(from, to) in &edges {
        let (tx, rx) = mpsc::bounded(EDGE_CHANNEL_DEPTH);
        senders[from].push((to, tx));
        receivers[to].push((from, rx));
    }
    // Receive in ascending source order so the merge below is
    // schedule-independent.
    for ins in &mut receivers {
        ins.sort_by_key(|(src, _)| *src);
    }

    let mut handles = Vec::with_capacity(n);
    for (i, factory) in factories.into_iter().enumerate() {
        let outs = std::mem::take(&mut senders[i]);
        let ins = std::mem::take(&mut receivers[i]);
        let routing = routing.clone();
        let handle = thread::Builder::new()
            .name(format!("rtec-seg-{i}"))
            .spawn(move || segment_thread(i, factory, outs, ins, routing, cfg, window, until))
            .expect("spawn segment thread");
        handles.push(handle);
    }

    let mut reports = Vec::with_capacity(n);
    let mut stats = ParallelStats {
        threads: n,
        ..ParallelStats::default()
    };
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok((report, windows, busy_s, stall_s)) => {
                stats.windows = windows;
                stats.busy_s += busy_s;
                stats.stall_s += stall_s;
                reports.push(report);
            }
            Err(payload) => panic!("segment thread {i} panicked: {}", panic_text(&payload)),
        }
    }
    ParallelRun { reports, stats }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Body of one segment thread: windows of lockstep boundaries, then a
/// barrier exchanging batches on every edge (send first, then receive
/// — with windows bounded by the lookahead this cannot deadlock; the
/// loom model in `crates/sim/tests/loom_model.rs` checks the
/// handshake under every schedule).
#[allow(clippy::too_many_arguments)]
fn segment_thread<S, F>(
    index: usize,
    factory: F,
    outs: EdgeSenders<S::Relay>,
    ins: EdgeReceivers<S::Relay>,
    routing: RoutingTable,
    cfg: WindowConfig,
    window: Duration,
    until: Time,
) -> (S::Report, u64, f64, f64)
where
    S: ParallelSegment,
    F: FnOnce() -> S,
{
    let t0 = Instant::now();
    let mut seg = factory();
    let mut pending: Vec<Envelope<S::Relay>> = Vec::new();
    let mut staged: Vec<Envelope<S::Relay>> = Vec::new();
    let mut now = Time::ZERO;
    let mut windows = 0u64;
    let mut stall_s = 0.0f64;
    while now < until {
        let window_end = (now + window).min(until);
        while now < window_end {
            let t = (now + cfg.quantum).min(window_end);
            seg.advance_to(t);
            seg.collect(t, &mut staged);
            flush_due(&mut seg, &mut pending, t);
            now = t;
        }
        // Barrier: ship this window's collections (the serial driver's
        // per-boundary insertion key is (collected_at, route), so sort
        // stably by it before splitting per edge), then merge the
        // peers' batches into the pending buffer in the same key
        // order. Empty batches still flow: they are the null messages.
        staged.sort_by_key(|e| (e.collected_at, e.route));
        let mut per_dst: Vec<Vec<Envelope<S::Relay>>> = outs.iter().map(|_| Vec::new()).collect();
        for env in staged.drain(..) {
            let dst = routing.target(env.route);
            let slot = outs
                .iter()
                .position(|(d, _)| *d == dst)
                .unwrap_or_else(|| panic!("segment {index}: route targets {dst} with no edge"));
            per_dst[slot].push(env);
        }
        for (slot, (_, tx)) in outs.iter().enumerate() {
            let batch = std::mem::take(&mut per_dst[slot]);
            if tx
                .send(WindowBatch {
                    window: windows,
                    batch,
                })
                .is_err()
            {
                panic!("segment {index}: window {windows} batch receiver vanished");
            }
        }
        let mut merged: Vec<Envelope<S::Relay>> = Vec::new();
        for (src, rx) in &ins {
            let wait = Instant::now();
            let got = match rx.recv() {
                Ok(b) => b,
                Err(_) => panic!("segment {index}: window {windows} feed from {src} vanished"),
            };
            stall_s += wait.elapsed().as_secs_f64();
            assert_eq!(got.window, windows, "window indices must stay in lockstep");
            merged.extend(got.batch);
        }
        merged.sort_by_key(|e| (e.collected_at, e.route));
        pending.extend(merged);
        windows += 1;
    }
    let report = seg.finish();
    (report, windows, t0.elapsed().as_secs_f64(), stall_s)
}

/// Run `f(0..n)` across a small pool of named worker threads and
/// return the results in index order. Used by the benchmark harness to
/// shard independent experiment runs (`experiments all --jobs N`);
/// with `workers <= 1` the jobs run inline on the calling thread, so
/// the sharded path can be diffed against the serial one.
pub fn pool_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = Arc::new(f);
    let next = Arc::new(AtomicUsize::new(0));
    let slots: Arc<Mutex<Vec<Option<T>>>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let mut handles = Vec::new();
    for w in 0..workers.min(n) {
        let f = f.clone();
        let next = next.clone();
        let slots = slots.clone();
        let handle = thread::Builder::new()
            .name(format!("rtec-pool-{w}"))
            .spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let out = f(i);
                let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                guard[i] = Some(out);
            })
            .expect("spawn pool worker");
        handles.push(handle);
    }
    for handle in handles {
        if let Err(payload) = handle.join() {
            panic!("pool worker panicked: {}", panic_text(&payload));
        }
    }
    let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
    let out: Vec<T> = guard
        .iter_mut()
        .enumerate()
        .map(|(i, slot)| {
            slot.take()
                .unwrap_or_else(|| panic!("job {i} produced no result"))
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy segment: dispatches one tick per quantum, relays its tick
    /// count on every boundary, and records every applied envelope.
    struct Toy {
        ticks: u64,
        routes_out: Vec<u32>,
        latency: Duration,
        applied: Vec<(Time, u32, u64)>,
    }

    impl SegmentStep for Toy {
        type Relay = u64;
        fn advance_to(&mut self, _t: Time) {
            self.ticks += 1;
        }
        fn collect(&mut self, now: Time, out: &mut Vec<Envelope<u64>>) {
            for &route in &self.routes_out {
                out.push(Envelope {
                    due: now + self.latency,
                    collected_at: now,
                    route,
                    payload: self.ticks,
                });
            }
        }
        fn apply(&mut self, env: Envelope<u64>) {
            self.applied.push((env.due, env.route, env.payload));
        }
    }

    impl ParallelSegment for Toy {
        type Report = (u64, Vec<(Time, u32, u64)>);
        fn finish(self) -> Self::Report {
            (self.ticks, self.applied)
        }
    }

    fn toy_factories(
        n: usize,
        routing: &RoutingTable,
        latency: Duration,
    ) -> Vec<impl FnOnce() -> Toy + Send + 'static> {
        (0..n)
            .map(|i| {
                let routes_out: Vec<u32> = (0..routing.routes() as u32)
                    .filter(|&r| routing.source(r) == i)
                    .collect();
                move || Toy {
                    ticks: 0,
                    routes_out,
                    latency,
                    applied: Vec::new(),
                }
            })
            .collect()
    }

    fn ring(n: usize) -> RoutingTable {
        let mut rt = RoutingTable::new(n);
        for i in 0..n {
            rt.add_route(i, (i + 1) % n);
        }
        rt
    }

    #[test]
    fn parallel_matches_serial_on_a_ring() {
        for n in [2usize, 3, 5] {
            let routing = ring(n);
            let cfg = WindowConfig {
                quantum: Duration::from_us(100),
                lookahead: Duration::from_us(300),
            };
            let until = Time::ZERO + Duration::from_us(2_050); // partial final boundary
            let latency = Duration::from_us(300);
            let serial = run_serial_windows::<Toy, _>(
                toy_factories(n, &routing, latency),
                &routing,
                cfg,
                until,
            );
            let par =
                run_parallel::<Toy, _>(toy_factories(n, &routing, latency), &routing, cfg, until);
            assert_eq!(serial, par.reports, "{n}-segment ring diverged");
            assert_eq!(par.stats.threads, n);
            assert!(par.stats.windows > 0);
        }
    }

    #[test]
    fn lookahead_below_quantum_is_rejected() {
        let routing = ring(2);
        let cfg = WindowConfig {
            quantum: Duration::from_us(100),
            lookahead: Duration::from_us(50),
        };
        let r = std::panic::catch_unwind(|| {
            run_serial_windows::<Toy, _>(
                toy_factories(2, &routing, Duration::from_us(50)),
                &routing,
                cfg,
                Time::ZERO + Duration::from_us(500),
            )
        });
        assert!(r.is_err(), "lookahead < quantum must be rejected");
    }

    #[test]
    fn window_width_is_floor_multiple_of_quantum() {
        let cfg = WindowConfig {
            quantum: Duration::from_us(100),
            lookahead: Duration::from_us(250),
        };
        assert_eq!(cfg.window(), Duration::from_us(200));
    }

    #[test]
    fn pool_map_returns_results_in_index_order() {
        let serial = pool_map(17, 1, |i| i * i);
        let sharded = pool_map(17, 4, |i| i * i);
        assert_eq!(serial, sharded);
        assert_eq!(sharded[13], 169);
    }
}
