//! Thread-local engine throughput counters.
//!
//! The benchmark harness needs events/sec and peak queue depth for
//! experiment runs that construct their own [`crate::Engine`]s
//! internally. Rather than thread a collector through every experiment
//! signature, each engine folds its dispatch count and pending-queue
//! high-water mark into these thread-local accumulators at the end of
//! every `run`/`run_until`/`step` call. A harness brackets a workload
//! with [`reset`] and [`snapshot`]; code that never looks at telemetry
//! pays one thread-local update per *run call*, not per event.
//!
//! Counters are per-thread by design: experiment workers on separate
//! threads each measure their own simulations without synchronization.

use std::cell::Cell;

thread_local! {
    static DISPATCHED: Cell<u64> = const { Cell::new(0) };
    static PEAK_PENDING: Cell<usize> = const { Cell::new(0) };
}

/// Aggregated engine counters for the current thread since [`reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Total events dispatched across all engines on this thread.
    pub dispatched: u64,
    /// Largest pending-queue depth any engine on this thread reached.
    pub peak_pending: usize,
}

/// Zero the current thread's counters.
pub fn reset() {
    DISPATCHED.with(|c| c.set(0));
    PEAK_PENDING.with(|c| c.set(0));
}

/// Read the current thread's counters.
pub fn snapshot() -> EngineTelemetry {
    EngineTelemetry {
        dispatched: DISPATCHED.with(Cell::get),
        peak_pending: PEAK_PENDING.with(Cell::get),
    }
}

/// Fold one engine run's results in (called by the engine itself).
pub(crate) fn on_run_complete(dispatched: u64, peak_pending: usize) {
    DISPATCHED.with(|c| c.set(c.get() + dispatched));
    PEAK_PENDING.with(|c| c.set(c.get().max(peak_pending)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Duration, Engine, Model, Time};

    struct Chain(u32);
    impl Model for Chain {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            if ev < self.0 {
                ctx.after(Duration::from_us(1), ev + 1);
            }
        }
    }

    #[test]
    fn counters_accumulate_across_engines() {
        reset();
        let mut a = Engine::new(Chain(4));
        a.schedule_at(Time::ZERO, 0);
        a.run();
        let mut b = Engine::new(Chain(2));
        b.schedule_at(Time::ZERO, 0);
        b.schedule_at(Time::ZERO, 0);
        b.run();
        let snap = snapshot();
        assert_eq!(snap.dispatched, a.dispatched() + b.dispatched());
        assert_eq!(snap.peak_pending, 2);
        reset();
        assert_eq!(snapshot(), EngineTelemetry::default());
    }
}
