//! Measurement collection: exact-percentile histograms and streaming
//! moment estimators.
//!
//! Experiments record latencies and jitter as nanosecond counts. The
//! [`Histogram`] keeps every sample (simulation runs are bounded, and
//! exact percentiles matter when the claim under test is "jitter is
//! zero"), sorting lazily on first query. [`OnlineStats`] is the
//! constant-space Welford estimator for high-volume counters.

use serde::{Deserialize, Serialize};

/// An exact-sample histogram over `u64` measurements (typically
/// nanoseconds).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Record one measurement.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no measurements were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Population standard deviation, `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .samples
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// `p`-th percentile using nearest-rank on the sorted samples;
    /// `p` in `[0, 100]`. `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.max(1) - 1;
        Some(self.samples[idx.min(self.samples.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Peak-to-peak spread (`max - min`) — the paper's definition of
    /// jitter as the *variance of the latency* is reported both as this
    /// spread and as [`Histogram::std_dev`].
    pub fn spread(&self) -> Option<u64> {
        Some(self.max()? - self.min()?)
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Iterate over the raw samples (insertion order not guaranteed once
    /// a percentile has been queried).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// One-line summary for experiment output.
    pub fn summary(&mut self) -> String {
        if self.samples.is_empty() {
            return "n=0".to_string();
        }
        let n = self.count();
        let min = self.min().unwrap();
        let max = self.max().unwrap();
        let mean = self.mean().unwrap();
        let p99 = self.percentile(99.0).unwrap();
        format!("n={n} min={min} mean={mean:.1} p99={p99} max={max}")
    }
}

/// Constant-space streaming mean/variance (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty estimator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A ratio counter for hit/miss style statistics (deadline misses,
/// drops, retransmissions...).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Create a zeroed counter.
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Record one trial; `hit` marks the numerator event.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `hits / total` (0 when no trials).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(50));
        assert_eq!(h.mean(), Some(30.0));
        assert_eq!(h.spread(), Some(40));
        let sd = h.std_dev().unwrap();
        assert!((sd - 14.142).abs() < 0.01, "sd {sd}");
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.median(), Some(50));
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.percentile(0.0), Some(7));
        assert_eq!(h.percentile(50.0), Some(7));
        assert_eq!(h.percentile(100.0), Some(7));
        assert_eq!(h.spread(), Some(0));
    }

    #[test]
    fn histogram_empty() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn histogram_record_after_query() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.median(), Some(5));
        h.record(1);
        assert_eq!(h.median(), Some(1));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(3));
    }

    #[test]
    fn online_stats_matches_exact() {
        let mut s = OnlineStats::new();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for x in data {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_degenerate() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = OnlineStats::new();
        s1.record(3.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.mean(), 3.0);
    }

    #[test]
    fn ratio_counter() {
        let mut r = Ratio::new();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(false);
        r.record(false);
        r.record(true);
        assert_eq!(r.hits(), 2);
        assert_eq!(r.total(), 4);
        assert!((r.value() - 0.5).abs() < 1e-12);
    }
}
