//! Lightweight structured tracing.
//!
//! Simulation components emit trace records into a shared [`TraceSink`].
//! Tracing is off by default (a disabled sink drops events without
//! allocating), so hot simulation loops pay one branch when tracing is
//! disabled. Tests assert on recorded traces; the experiment harness
//! prints them with `--trace`.
//!
//! The recording path is allocation-free in the steady state:
//!
//! * `source` strings are interned once to a [`SourceId`] handle
//!   ([`TraceSink::intern`]); hot emitters cache the handle and pass a
//!   `u32` instead of formatting a `String` per event.
//! * key/value fields are stored in an inline small-vector
//!   ([`INLINE_FIELDS`] pairs on the stack; larger payloads spill to the
//!   heap) — [`TraceSink::emit_fields`] copies from a borrowed slice.
//! * records live in a ring buffer. The default enabled sink is
//!   unbounded (audits need the complete trace); a bounded sink
//!   ([`TraceSink::enabled_with_capacity`]) recycles the oldest record
//!   once warm and counts what it dropped ([`TraceSink::dropped`]).
//!
//! Queries are a **view layer**: [`TraceSink::events`] materializes
//! plain [`TraceEvent`]s (owned `String` source, `Vec` fields) from the
//! compact records, so auditors and tests keep the same API they had
//! when the sink stored `TraceEvent`s directly.

use crate::time::Time;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Interned `source` string handle, valid for the sink that issued it
/// (and its clones — they share the intern table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SourceId(u32);

/// Key/value pairs stored inline per record before spilling to the heap.
pub const INLINE_FIELDS: usize = 6;

/// Inline small-vector of trace fields.
#[derive(Clone, Debug)]
enum FieldBuf {
    Inline {
        len: u8,
        buf: [(&'static str, u64); INLINE_FIELDS],
    },
    Spill(Vec<(&'static str, u64)>),
}

impl FieldBuf {
    fn from_slice(fields: &[(&'static str, u64)]) -> Self {
        if fields.len() <= INLINE_FIELDS {
            let mut buf = [("", 0u64); INLINE_FIELDS];
            buf[..fields.len()].copy_from_slice(fields);
            FieldBuf::Inline {
                len: fields.len() as u8,
                buf,
            }
        } else {
            FieldBuf::Spill(fields.to_vec())
        }
    }

    fn from_vec(fields: Vec<(&'static str, u64)>) -> Self {
        if fields.len() <= INLINE_FIELDS {
            FieldBuf::from_slice(&fields)
        } else {
            FieldBuf::Spill(fields)
        }
    }

    fn as_slice(&self) -> &[(&'static str, u64)] {
        match self {
            FieldBuf::Inline { len, buf } => &buf[..*len as usize],
            FieldBuf::Spill(v) => v,
        }
    }
}

/// Compact in-ring record. `detail` is boxed out-of-line because the
/// hot emitters don't produce one.
#[derive(Debug)]
struct Rec {
    time: Time,
    source: SourceId,
    kind: &'static str,
    detail: Option<Box<str>>,
    fields: FieldBuf,
}

/// One structured trace record, as seen by queries and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the event.
    pub time: Time,
    /// Component that emitted it (e.g. `"bus"`, `"node3.srtec"`).
    pub source: String,
    /// Short machine-matchable kind tag (e.g. `"tx_start"`).
    pub kind: &'static str,
    /// Free-form detail for humans.
    pub detail: String,
    /// Machine-readable key/value payload for trace analyzers. Repeated
    /// keys are allowed (e.g. one `"cand"` entry per arbitration
    /// contender).
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// First value recorded under `name`, if any.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// All values recorded under `name`, in emission order.
    pub fn fields_named(&self, name: &str) -> Vec<u64> {
        self.fields
            .iter()
            .filter(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .collect()
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:<14} {:<16} {}",
            self.time, self.source, self.kind, self.detail
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SinkInner {
    enabled: bool,
    capacity: usize,
    records: VecDeque<Rec>,
    dropped: u64,
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl Default for SinkInner {
    fn default() -> Self {
        SinkInner {
            enabled: false,
            capacity: usize::MAX,
            records: VecDeque::new(),
            dropped: 0,
            names: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

impl SinkInner {
    fn intern(&mut self, name: &str) -> SourceId {
        if let Some(&id) = self.ids.get(name) {
            return SourceId(id);
        }
        let id = u32::try_from(self.names.len()).expect("intern table exhausted");
        let shared: Arc<str> = Arc::from(name);
        self.names.push(shared.clone());
        self.ids.insert(shared, id);
        SourceId(id)
    }

    fn push(&mut self, rec: Rec) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    fn rebuild(&self, rec: &Rec) -> TraceEvent {
        TraceEvent {
            time: rec.time,
            source: self
                .names
                .get(rec.source.0 as usize)
                .map(|s| s.to_string())
                .unwrap_or_default(),
            kind: rec.kind,
            detail: rec.detail.as_deref().unwrap_or("").to_string(),
            fields: rec.fields.as_slice().to_vec(),
        }
    }
}

/// A cheaply-cloneable handle to a shared trace buffer.
///
/// Cloning shares the underlying buffer (single-threaded simulations use
/// `Rc`; the engine itself is single-threaded by design — parallelism in
/// experiments comes from running independent simulations on worker
/// threads).
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl TraceSink {
    /// A disabled sink: events are dropped.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// An enabled sink that records every event (unbounded — complete
    /// traces are what the conformance auditor consumes).
    pub fn enabled() -> Self {
        let sink = TraceSink::default();
        sink.inner.borrow_mut().enabled = true;
        sink
    }

    /// An enabled sink bounded to the most recent `capacity` records.
    /// Once warm, recording recycles the oldest slot instead of
    /// allocating; [`TraceSink::dropped`] counts evictions.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        let sink = TraceSink::default();
        {
            let mut inner = sink.inner.borrow_mut();
            inner.enabled = true;
            inner.capacity = capacity.max(1);
            let reserve = inner.capacity.min(1 << 20);
            inner.records.reserve_exact(reserve);
        }
        sink
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().enabled = enabled;
    }

    /// Intern a source name, returning a handle that can be emitted with
    /// repeatedly without per-event string work. Interning the same name
    /// twice returns the same handle. Handles are only meaningful on the
    /// sink (or clones of the sink) that issued them.
    pub fn intern(&self, name: &str) -> SourceId {
        self.inner.borrow_mut().intern(name)
    }

    /// Emit a record from the hot path: interned source, borrowed field
    /// slice, no detail string. Allocation-free while the fields fit
    /// inline (≤ [`INLINE_FIELDS`]) and the ring is warm.
    #[inline]
    pub fn emit_fields(
        &self,
        time: Time,
        source: SourceId,
        kind: &'static str,
        fields: &[(&'static str, u64)],
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.enabled {
            inner.push(Rec {
                time,
                source,
                kind,
                detail: None,
                fields: FieldBuf::from_slice(fields),
            });
        }
    }

    /// Emit an event (dropped when disabled). Convenience path: interns
    /// `source` on every call — cache a [`SourceId`] and use
    /// [`TraceSink::emit_fields`] in hot loops.
    pub fn emit(&self, time: Time, source: &str, kind: &'static str, detail: impl Into<String>) {
        self.emit_kv(time, source, kind, detail, Vec::new());
    }

    /// Emit an event carrying machine-readable key/value fields
    /// (dropped when disabled).
    pub fn emit_kv(
        &self,
        time: Time,
        source: &str,
        kind: &'static str,
        detail: impl Into<String>,
        fields: Vec<(&'static str, u64)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.enabled {
            let source = inner.intern(source);
            let detail = detail.into();
            inner.push(Rec {
                time,
                source,
                kind,
                detail: if detail.is_empty() {
                    None
                } else {
                    Some(detail.into_boxed_str())
                },
                fields: FieldBuf::from_vec(fields),
            });
        }
    }

    /// Number of recorded events currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// `true` when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records evicted from a bounded sink since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of all recorded events (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        inner.records.iter().map(|r| inner.rebuild(r)).collect()
    }

    /// Snapshot of events matching a kind tag.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        inner
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| inner.rebuild(r))
            .collect()
    }

    /// Drop all recorded events (the intern table survives, so cached
    /// [`SourceId`]s stay valid).
    pub fn clear(&self) {
        self.inner.borrow_mut().records.clear();
    }
}

/// A thread-safe sibling of [`TraceSink`] for multi-threaded runtimes
/// (e.g. `rtec-live`, where node threads and the bus broker all emit
/// into one buffer).
///
/// Shares the exact record/intern machinery with the single-threaded
/// sink — same [`SourceId`] interning, same inline field buffer, same
/// [`TraceEvent`] view — behind an `Arc<Mutex<_>>` instead of
/// `Rc<RefCell<_>>`. Emission order across threads is whatever order
/// the emitters take the lock in; deterministic runtimes (lock-step
/// broker) therefore produce deterministic traces.
#[derive(Clone, Debug, Default)]
pub struct SharedTraceSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl SharedTraceSink {
    /// A disabled sink: events are dropped.
    pub fn disabled() -> Self {
        SharedTraceSink::default()
    }

    /// An enabled sink that records every event (unbounded).
    pub fn enabled() -> Self {
        let sink = SharedTraceSink::default();
        sink.lock().enabled = true;
        sink
    }

    /// An enabled sink bounded to the most recent `capacity` records.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        let sink = SharedTraceSink::default();
        {
            let mut inner = sink.lock();
            inner.enabled = true;
            inner.capacity = capacity.max(1);
            let reserve = inner.capacity.min(1 << 20);
            inner.records.reserve_exact(reserve);
        }
        sink
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkInner> {
        // A panicking emitter cannot leave records half-written (pushes
        // are single calls), so recover from poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.lock().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.lock().enabled = enabled;
    }

    /// Intern a source name; see [`TraceSink::intern`].
    pub fn intern(&self, name: &str) -> SourceId {
        self.lock().intern(name)
    }

    /// Emit a record from the hot path: interned source, borrowed field
    /// slice, no detail string.
    #[inline]
    pub fn emit_fields(
        &self,
        time: Time,
        source: SourceId,
        kind: &'static str,
        fields: &[(&'static str, u64)],
    ) {
        let mut inner = self.lock();
        if inner.enabled {
            inner.push(Rec {
                time,
                source,
                kind,
                detail: None,
                fields: FieldBuf::from_slice(fields),
            });
        }
    }

    /// Emit an event carrying machine-readable key/value fields
    /// (dropped when disabled).
    pub fn emit_kv(
        &self,
        time: Time,
        source: &str,
        kind: &'static str,
        detail: impl Into<String>,
        fields: Vec<(&'static str, u64)>,
    ) {
        let mut inner = self.lock();
        if inner.enabled {
            let source = inner.intern(source);
            let detail = detail.into();
            inner.push(Rec {
                time,
                source,
                kind,
                detail: if detail.is_empty() {
                    None
                } else {
                    Some(detail.into_boxed_str())
                },
                fields: FieldBuf::from_vec(fields),
            });
        }
    }

    /// Number of recorded events currently in the buffer.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// `true` when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records evicted from a bounded sink since creation.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Snapshot of all recorded events (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.lock();
        inner.records.iter().map(|r| inner.rebuild(r)).collect()
    }

    /// Snapshot of events matching a kind tag.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        let inner = self.lock();
        inner
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| inner.rebuild(r))
            .collect()
    }

    /// Drop all recorded events (the intern table survives).
    pub fn clear(&self) {
        self.lock().records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_drops_events() {
        let sink = TraceSink::disabled();
        sink.emit(Time::ZERO, "bus", "tx_start", "id=0x10");
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let sink = TraceSink::enabled();
        sink.emit(Time::from_us(1), "bus", "tx_start", "a");
        sink.emit(Time::from_us(2), "bus", "tx_end", "b");
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "tx_start");
        assert_eq!(evs[1].time, Time::from_us(2));
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.emit(Time::ZERO, "node0", "publish", "x");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn kind_filter() {
        let sink = TraceSink::enabled();
        sink.emit(Time::ZERO, "a", "x", "");
        sink.emit(Time::ZERO, "b", "y", "");
        sink.emit(Time::ZERO, "c", "x", "");
        assert_eq!(sink.events_of_kind("x").len(), 2);
        assert_eq!(sink.events_of_kind("z").len(), 0);
    }

    #[test]
    fn toggle_and_clear() {
        let sink = TraceSink::disabled();
        sink.set_enabled(true);
        sink.emit(Time::ZERO, "a", "x", "");
        assert_eq!(sink.len(), 1);
        sink.clear();
        assert!(sink.is_empty());
        sink.set_enabled(false);
        sink.emit(Time::ZERO, "a", "x", "");
        assert!(sink.is_empty());
    }

    #[test]
    fn display_format_contains_fields() {
        let ev = TraceEvent {
            time: Time::from_us(5),
            source: "node1.hrtec".into(),
            kind: "slot_start",
            detail: "slot=3".into(),
            fields: vec![("etag", 7)],
        };
        let s = format!("{ev}");
        assert!(s.contains("node1.hrtec"));
        assert!(s.contains("slot_start"));
        assert!(s.contains("slot=3"));
        assert!(s.contains("etag=7"));
    }

    #[test]
    fn kv_fields_round_trip() {
        let sink = TraceSink::enabled();
        sink.emit_kv(
            Time::from_us(1),
            "bus",
            "arb",
            "",
            vec![("cand", 10), ("cand", 20), ("win", 10)],
        );
        let ev = &sink.events()[0];
        assert_eq!(ev.field("win"), Some(10));
        assert_eq!(ev.field("absent"), None);
        assert_eq!(ev.fields_named("cand"), vec![10, 20]);
    }

    #[test]
    fn interning_is_stable_and_shared_across_clones() {
        let sink = TraceSink::enabled();
        let a = sink.intern("bus");
        let b = sink.clone().intern("bus");
        let c = sink.intern("node1.hrtec");
        assert_eq!(a, b);
        assert_ne!(a, c);
        sink.emit_fields(Time::ZERO, a, "tx_start", &[("id", 16)]);
        sink.emit(Time::ZERO, "bus", "tx_end", "");
        let evs = sink.events();
        assert_eq!(evs[0].source, "bus");
        assert_eq!(evs[1].source, "bus");
        assert_eq!(evs[0].field("id"), Some(16));
    }

    #[test]
    fn emit_fields_matches_emit_kv_view() {
        let sink = TraceSink::enabled();
        let src = sink.intern("bus");
        sink.emit_fields(Time::from_us(3), src, "arb", &[("cand", 1), ("win", 1)]);
        sink.emit_kv(
            Time::from_us(3),
            "bus",
            "arb",
            "",
            vec![("cand", 1), ("win", 1)],
        );
        let evs = sink.events();
        assert_eq!(evs[0], evs[1]);
    }

    #[test]
    fn oversized_field_lists_spill_but_round_trip() {
        let sink = TraceSink::enabled();
        let src = sink.intern("bus");
        let fields: Vec<(&'static str, u64)> =
            (0..INLINE_FIELDS as u64 + 4).map(|i| ("cand", i)).collect();
        sink.emit_fields(Time::ZERO, src, "arb", &fields);
        let ev = &sink.events()[0];
        assert_eq!(ev.fields, fields);
        assert_eq!(
            ev.fields_named("cand").len(),
            INLINE_FIELDS + 4,
            "all spilled fields visible through the view"
        );
    }

    #[test]
    fn bounded_sink_keeps_most_recent_and_counts_drops() {
        let sink = TraceSink::enabled_with_capacity(3);
        for i in 0..10u64 {
            sink.emit_kv(Time::from_ns(i), "src", "tick", "", vec![("i", i)]);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let kept: Vec<u64> = sink.events().iter().filter_map(|e| e.field("i")).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn shared_sink_matches_local_sink_view() {
        let shared = SharedTraceSink::enabled();
        let local = TraceSink::enabled();
        let s1 = shared.intern("bus");
        let s2 = local.intern("bus");
        shared.emit_fields(Time::from_us(3), s1, "arb", &[("cand", 1), ("win", 1)]);
        local.emit_fields(Time::from_us(3), s2, "arb", &[("cand", 1), ("win", 1)]);
        shared.emit_kv(Time::from_us(4), "node0", "tx_start", "d", vec![("id", 9)]);
        local.emit_kv(Time::from_us(4), "node0", "tx_start", "d", vec![("id", 9)]);
        assert_eq!(shared.events(), local.events());
        assert_eq!(shared.events_of_kind("arb").len(), 1);
    }

    #[test]
    fn shared_sink_is_usable_across_threads() {
        let sink = SharedTraceSink::enabled();
        let src = sink.intern("worker");
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    sink.emit_fields(Time::from_ns(i), src, "tick", &[("i", i)]);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 4);
        assert!(sink.events().iter().all(|e| e.source == "worker"));
    }

    #[test]
    fn shared_sink_bounded_and_disabled_behaviour() {
        let off = SharedTraceSink::disabled();
        off.emit_kv(Time::ZERO, "a", "x", "", vec![]);
        assert!(off.is_empty());
        let bounded = SharedTraceSink::enabled_with_capacity(2);
        for i in 0..5u64 {
            bounded.emit_kv(Time::from_ns(i), "a", "x", "", vec![("i", i)]);
        }
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.dropped(), 3);
        bounded.clear();
        assert!(bounded.is_empty());
    }

    #[test]
    fn foreign_source_id_renders_empty_not_panic() {
        let sink = TraceSink::enabled();
        // A handle from an unrelated sink: out of range here.
        let foreign = TraceSink::enabled().intern("other");
        let _local = sink.intern("local");
        let foreign_far = SourceId(1234);
        sink.emit_fields(Time::ZERO, foreign, "x", &[]);
        sink.emit_fields(Time::ZERO, foreign_far, "x", &[]);
        let evs = sink.events();
        assert_eq!(evs[0].source, "local"); // id 0 happens to exist here
        assert_eq!(evs[1].source, "");
    }
}
