//! Lightweight structured tracing.
//!
//! Simulation components emit [`TraceEvent`]s into a shared [`TraceSink`].
//! Tracing is off by default (a disabled sink drops events without
//! allocating), so hot simulation loops pay one branch when tracing is
//! disabled. Tests assert on recorded traces; the experiment harness
//! prints them with `--trace`.

use crate::time::Time;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One structured trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the event.
    pub time: Time,
    /// Component that emitted it (e.g. `"bus"`, `"node3.srtec"`).
    pub source: String,
    /// Short machine-matchable kind tag (e.g. `"tx_start"`).
    pub kind: &'static str,
    /// Free-form detail for humans.
    pub detail: String,
    /// Machine-readable key/value payload for trace analyzers. Repeated
    /// keys are allowed (e.g. one `"cand"` entry per arbitration
    /// contender).
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// First value recorded under `name`, if any.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// All values recorded under `name`, in emission order.
    pub fn fields_named(&self, name: &str) -> Vec<u64> {
        self.fields
            .iter()
            .filter(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .collect()
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:<14} {:<16} {}",
            self.time, self.source, self.kind, self.detail
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    enabled: bool,
    events: Vec<TraceEvent>,
}

/// A cheaply-cloneable handle to a shared trace buffer.
///
/// Cloning shares the underlying buffer (single-threaded simulations use
/// `Rc`; the engine itself is single-threaded by design — parallelism in
/// experiments comes from running independent simulations on worker
/// threads).
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    inner: Rc<RefCell<SinkInner>>,
}

impl TraceSink {
    /// A disabled sink: events are dropped.
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// An enabled sink that records every event.
    pub fn enabled() -> Self {
        let sink = TraceSink::default();
        sink.inner.borrow_mut().enabled = true;
        sink
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().enabled = enabled;
    }

    /// Emit an event (dropped when disabled).
    pub fn emit(&self, time: Time, source: &str, kind: &'static str, detail: impl Into<String>) {
        self.emit_kv(time, source, kind, detail, Vec::new());
    }

    /// Emit an event carrying machine-readable key/value fields
    /// (dropped when disabled).
    pub fn emit_kv(
        &self,
        time: Time,
        source: &str,
        kind: &'static str,
        detail: impl Into<String>,
        fields: Vec<(&'static str, u64)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        if inner.enabled {
            inner.events.push(TraceEvent {
                time,
                source: source.to_string(),
                kind,
                detail: detail.into(),
                fields,
            });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// `true` when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// Snapshot of events matching a kind tag.
    pub fn events_of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_drops_events() {
        let sink = TraceSink::disabled();
        sink.emit(Time::ZERO, "bus", "tx_start", "id=0x10");
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let sink = TraceSink::enabled();
        sink.emit(Time::from_us(1), "bus", "tx_start", "a");
        sink.emit(Time::from_us(2), "bus", "tx_end", "b");
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "tx_start");
        assert_eq!(evs[1].time, Time::from_us(2));
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.emit(Time::ZERO, "node0", "publish", "x");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn kind_filter() {
        let sink = TraceSink::enabled();
        sink.emit(Time::ZERO, "a", "x", "");
        sink.emit(Time::ZERO, "b", "y", "");
        sink.emit(Time::ZERO, "c", "x", "");
        assert_eq!(sink.events_of_kind("x").len(), 2);
        assert_eq!(sink.events_of_kind("z").len(), 0);
    }

    #[test]
    fn toggle_and_clear() {
        let sink = TraceSink::disabled();
        sink.set_enabled(true);
        sink.emit(Time::ZERO, "a", "x", "");
        assert_eq!(sink.len(), 1);
        sink.clear();
        assert!(sink.is_empty());
        sink.set_enabled(false);
        sink.emit(Time::ZERO, "a", "x", "");
        assert!(sink.is_empty());
    }

    #[test]
    fn display_format_contains_fields() {
        let ev = TraceEvent {
            time: Time::from_us(5),
            source: "node1.hrtec".into(),
            kind: "slot_start",
            detail: "slot=3".into(),
            fields: vec![("etag", 7)],
        };
        let s = format!("{ev}");
        assert!(s.contains("node1.hrtec"));
        assert!(s.contains("slot_start"));
        assert!(s.contains("slot=3"));
        assert!(s.contains("etag=7"));
    }

    #[test]
    fn kv_fields_round_trip() {
        let sink = TraceSink::enabled();
        sink.emit_kv(
            Time::from_us(1),
            "bus",
            "arb",
            "",
            vec![("cand", 10), ("cand", 20), ("win", 10)],
        );
        let ev = &sink.events()[0];
        assert_eq!(ev.field("win"), Some(10));
        assert_eq!(ev.field("absent"), None);
        assert_eq!(ev.fields_named("cand"), vec![10, 20]);
    }
}
