//! The discrete-event engine: a hierarchical timing wheel of timestamped
//! events and a dispatch loop.
//!
//! A simulation is a [`Model`]: a state type plus a typed event handler.
//! Handlers receive a [`Ctx`] through which they schedule further events
//! (absolute [`Ctx::at`] or relative [`Ctx::after`]) and cancel pending
//! ones ([`Ctx::cancel`]). Scheduling and cancellation are O(1): timers
//! live in a slab addressed by the [`TimerId`] handle, whose generation
//! tag makes cancelling an already-fired timer a true no-op (nothing is
//! recorded, so no tombstones accumulate — see [`crate::wheel`] for the
//! wheel layout and its invariants).
//!
//! Determinism: ties at the same instant are broken by the scheduling
//! sequence number, so the delivery order of simultaneous events is the
//! order in which they were scheduled. This contract is checked against
//! a reference heap scheduler ([`crate::reference`]) by property tests.

use crate::telemetry;
use crate::time::{Duration, Time};
use crate::wheel::TimerWheel;

/// Handle for a scheduled event, used to cancel it before it fires.
///
/// The low 32 bits index the engine's timer slab; the high 32 bits are
/// the slab cell's generation at allocation time. A handle is live for
/// exactly one schedule→fire/cancel window: once the timer fires or is
/// cancelled the generation advances and the handle goes stale, so
/// using it again is a detectable no-op rather than an aliasing hazard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

impl TimerId {
    /// A handle that never corresponds to a scheduled event. Useful as a
    /// placeholder in model state.
    pub const NONE: TimerId = TimerId(u64::MAX);

    #[inline]
    pub(crate) fn pack(idx: u32, gen: u32) -> TimerId {
        TimerId((u64::from(gen) << 32) | u64::from(idx))
    }

    #[inline]
    pub(crate) fn index(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A simulation model: state plus an event handler.
pub trait Model {
    /// The type of events this model exchanges with itself through the
    /// engine's queue.
    type Event;

    /// Handle one event at the current simulated instant (`ctx.now()`).
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, ev: Self::Event);
}

/// Scheduling context handed to [`Model::handle`].
///
/// Owns the event queue and the simulation clock.
pub struct Ctx<E> {
    now: Time,
    wheel: TimerWheel<E>,
    next_seq: u64,
    dispatched: u64,
    peak_pending: usize,
}

impl<E> Ctx<E> {
    fn new() -> Self {
        Ctx {
            now: Time::ZERO,
            wheel: TimerWheel::new(),
            next_seq: 0,
            dispatched: 0,
            peak_pending: 0,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of live pending events (cancelled timers are reclaimed
    /// immediately and not counted).
    #[inline]
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// High-water mark of [`Ctx::pending`] over the engine's lifetime.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Number of timer slab cells ever allocated. Bounded by the peak
    /// number of *concurrently* pending timers — fire/cancel churn
    /// reuses cells, which is what the tombstone-leak regression test
    /// asserts.
    #[inline]
    pub fn allocated_timers(&self) -> usize {
        self.wheel.allocated()
    }

    /// Schedule `ev` at absolute time `t`.
    ///
    /// `t` must not be in the past; scheduling *at* the current instant
    /// is allowed (the event runs after all currently-queued events for
    /// this instant).
    pub fn at(&mut self, t: Time, ev: E) -> TimerId {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {t} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = self.wheel.insert(t, seq, ev);
        self.peak_pending = self.peak_pending.max(self.wheel.len());
        id
    }

    /// Schedule `ev` after a relative delay.
    #[inline]
    pub fn after(&mut self, d: Duration, ev: E) -> TimerId {
        self.at(self.now + d, ev)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op — the stale
    /// handle's generation no longer matches, so nothing is recorded.
    pub fn cancel(&mut self, id: TimerId) {
        self.wheel.cancel(id);
    }

    fn pop_due(&mut self, limit: Time) -> Option<(Time, E)> {
        self.wheel.pop_due(limit).map(|(t, _seq, ev)| (t, ev))
    }
}

/// The simulation engine: a [`Model`] plus its event queue.
pub struct Engine<M: Model> {
    /// The model under simulation. Public so tests and harnesses can
    /// inspect state between [`Engine::run_until`] calls.
    pub model: M,
    ctx: Ctx<M::Event>,
}

impl<M: Model> Engine<M> {
    /// Create an engine around a model, at time zero with an empty queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            ctx: Ctx::new(),
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> Time {
        self.ctx.now
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.ctx.dispatched
    }

    /// Schedule an event from outside the model (initial stimulus).
    pub fn schedule_at(&mut self, t: Time, ev: M::Event) -> TimerId {
        self.ctx.at(t, ev)
    }

    /// Schedule an event after a delay, from outside the model.
    pub fn schedule_after(&mut self, d: Duration, ev: M::Event) -> TimerId {
        self.ctx.after(d, ev)
    }

    /// Direct access to the scheduling context (for harness helpers).
    pub fn ctx(&mut self) -> &mut Ctx<M::Event> {
        &mut self.ctx
    }

    /// Borrow the model and the scheduling context simultaneously —
    /// needed when harness code outside the event loop drives model
    /// operations that themselves schedule events.
    pub fn split(&mut self) -> (&mut M, &mut Ctx<M::Event>) {
        (&mut self.model, &mut self.ctx)
    }

    #[inline]
    fn dispatch_one(&mut self, limit: Time) -> bool {
        match self.ctx.pop_due(limit) {
            Some((time, ev)) => {
                self.ctx.now = time;
                self.ctx.dispatched += 1;
                self.model.handle(&mut self.ctx, ev);
                true
            }
            None => false,
        }
    }

    /// Dispatch a single event if one is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        let fired = self.dispatch_one(Time::MAX);
        if fired {
            telemetry::on_run_complete(1, self.ctx.peak_pending);
        }
        fired
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        let before = self.ctx.dispatched;
        while self.dispatch_one(Time::MAX) {}
        telemetry::on_run_complete(self.ctx.dispatched - before, self.ctx.peak_pending);
    }

    /// Run until simulated time `limit` (inclusive: events *at* `limit`
    /// are dispatched). Afterwards `now()` equals `limit` unless the
    /// queue drained earlier, in which case `now()` is the last dispatch
    /// time.
    pub fn run_until(&mut self, limit: Time) {
        let before = self.ctx.dispatched;
        while self.dispatch_one(limit) {}
        if self.ctx.now < limit {
            self.ctx.now = limit;
        }
        telemetry::on_run_complete(self.ctx.dispatched - before, self.ctx.peak_pending);
    }

    /// Run for a span of simulated time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let limit = self.ctx.now + d;
        self.run_until(limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(Time, u32)>,
        respawn: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if self.respawn && ev < 5 {
                ctx.after(Duration::from_us(1), ev + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: vec![],
            respawn: false,
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(30), 3);
        e.schedule_at(Time::from_us(10), 1);
        e.schedule_at(Time::from_us(20), 2);
        e.run();
        assert_eq!(
            e.model.seen,
            vec![
                (Time::from_us(10), 1),
                (Time::from_us(20), 2),
                (Time::from_us(30), 3)
            ]
        );
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut e = Engine::new(recorder());
        let t = Time::from_us(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        e.run();
        let order: Vec<u32> = e.model.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new(recorder());
        let keep = e.schedule_at(Time::from_us(1), 1);
        let drop1 = e.schedule_at(Time::from_us(2), 2);
        let drop2 = e.schedule_at(Time::from_us(3), 3);
        e.ctx().cancel(drop1);
        e.ctx().cancel(drop2);
        let _ = keep;
        e.run();
        let vals: Vec<u32> = e.model.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = Engine::new(recorder());
        let id = e.schedule_at(Time::from_us(1), 7);
        e.run();
        e.ctx().cancel(id); // must not panic or corrupt the queue
        e.schedule_at(Time::from_us(2), 8);
        e.run();
        assert_eq!(e.model.seen.len(), 2);
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut e = Engine::new(recorder());
        e.ctx().cancel(TimerId::NONE);
        assert_eq!(e.ctx().pending(), 0);
    }

    #[test]
    fn cancel_after_fire_does_not_leak() {
        // Regression test for the old engine's tombstone leak: cancelling
        // an already-fired TimerId inserted into a HashSet that was never
        // drained. With generation-tagged handles the cancel is a true
        // no-op and the slab stays at its high-water mark.
        let mut e = Engine::new(recorder());
        let mut stale: Vec<TimerId> = Vec::new();
        for round in 0..2_000u64 {
            let id = e.schedule_at(Time::from_us(round + 1), 1);
            e.run();
            stale.push(id);
            // Cancel every stale handle ever issued, every round.
            for &s in &stale {
                e.ctx().cancel(s);
            }
        }
        assert_eq!(e.dispatched(), 2_000);
        // One timer pending at a time → exactly one slab cell, ever.
        assert_eq!(e.ctx().allocated_timers(), 1);
        assert_eq!(e.ctx().pending(), 0);
        assert_eq!(e.ctx().peak_pending(), 1);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            respawn: true,
        });
        e.schedule_at(Time::ZERO, 0);
        e.run();
        assert_eq!(e.model.seen.len(), 6);
        assert_eq!(e.now(), Time::from_us(5));
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(10), 1);
        e.schedule_at(Time::from_us(20), 2);
        e.schedule_at(Time::from_us(30), 3);
        e.run_until(Time::from_us(20));
        assert_eq!(e.model.seen.len(), 2);
        assert_eq!(e.now(), Time::from_us(20));
        e.run_until(Time::from_us(100));
        assert_eq!(e.model.seen.len(), 3);
        assert_eq!(e.now(), Time::from_us(100));
    }

    #[test]
    fn run_for_advances_relative() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(5), 1);
        e.run_for(Duration::from_us(3));
        assert_eq!(e.now(), Time::from_us(3));
        assert!(e.model.seen.is_empty());
        e.run_for(Duration::from_us(3));
        assert_eq!(e.model.seen.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(10), 1);
        e.run();
        e.schedule_at(Time::from_us(5), 2);
    }

    #[test]
    fn dispatch_counter_counts_fired_only() {
        let mut e = Engine::new(recorder());
        let a = e.schedule_at(Time::from_us(1), 1);
        e.schedule_at(Time::from_us(2), 2);
        e.ctx().cancel(a);
        e.run();
        assert_eq!(e.dispatched(), 1);
    }
}
