//! The discrete-event engine: a priority queue of timestamped events and
//! a dispatch loop.
//!
//! A simulation is a [`Model`]: a state type plus a typed event handler.
//! Handlers receive a [`Ctx`] through which they schedule further events
//! (absolute [`Ctx::at`] or relative [`Ctx::after`]) and cancel pending
//! ones ([`Ctx::cancel`]). Cancellation is lazy: cancelled entries stay
//! in the heap and are skipped on pop, which keeps both operations
//! `O(log n)` amortized.
//!
//! Determinism: ties at the same instant are broken by the scheduling
//! sequence number, so the delivery order of simultaneous events is the
//! order in which they were scheduled.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle for a scheduled event, used to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

impl TimerId {
    /// A handle that never corresponds to a scheduled event. Useful as a
    /// placeholder in model state.
    pub const NONE: TimerId = TimerId(u64::MAX);
}

/// A simulation model: state plus an event handler.
pub trait Model {
    /// The type of events this model exchanges with itself through the
    /// engine's queue.
    type Event;

    /// Handle one event at the current simulated instant (`ctx.now()`).
    fn handle(&mut self, ctx: &mut Ctx<Self::Event>, ev: Self::Event);
}

struct Entry<E> {
    time: Time,
    seq: u64,
    id: TimerId,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Scheduling context handed to [`Model::handle`].
///
/// Owns the event queue and the simulation clock.
pub struct Ctx<E> {
    now: Time,
    queue: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: HashSet<TimerId>,
    dispatched: u64,
}

impl<E> Ctx<E> {
    fn new() -> Self {
        Ctx {
            now: Time::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            dispatched: 0,
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of events still pending (including lazily-cancelled ones).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `ev` at absolute time `t`.
    ///
    /// `t` must not be in the past; scheduling *at* the current instant
    /// is allowed (the event runs after all currently-queued events for
    /// this instant).
    pub fn at(&mut self, t: Time, ev: E) -> TimerId {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {t} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = TimerId(seq);
        self.queue.push(Entry {
            time: t,
            seq,
            id,
            ev,
        });
        id
    }

    /// Schedule `ev` after a relative delay.
    #[inline]
    pub fn after(&mut self, d: Duration, ev: E) -> TimerId {
        self.at(self.now + d, ev)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if id != TimerId::NONE {
            self.cancelled.insert(id);
        }
    }

    fn pop_due(&mut self, limit: Time) -> Option<Entry<E>> {
        while let Some(head) = self.queue.peek() {
            if head.time > limit {
                return None;
            }
            let entry = self.queue.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some(entry);
        }
        None
    }
}

/// The simulation engine: a [`Model`] plus its event queue.
pub struct Engine<M: Model> {
    /// The model under simulation. Public so tests and harnesses can
    /// inspect state between [`Engine::run_until`] calls.
    pub model: M,
    ctx: Ctx<M::Event>,
}

impl<M: Model> Engine<M> {
    /// Create an engine around a model, at time zero with an empty queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            ctx: Ctx::new(),
        }
    }

    /// The current simulated instant.
    #[inline]
    pub fn now(&self) -> Time {
        self.ctx.now
    }

    /// Total number of events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.ctx.dispatched
    }

    /// Schedule an event from outside the model (initial stimulus).
    pub fn schedule_at(&mut self, t: Time, ev: M::Event) -> TimerId {
        self.ctx.at(t, ev)
    }

    /// Schedule an event after a delay, from outside the model.
    pub fn schedule_after(&mut self, d: Duration, ev: M::Event) -> TimerId {
        self.ctx.after(d, ev)
    }

    /// Direct access to the scheduling context (for harness helpers).
    pub fn ctx(&mut self) -> &mut Ctx<M::Event> {
        &mut self.ctx
    }

    /// Borrow the model and the scheduling context simultaneously —
    /// needed when harness code outside the event loop drives model
    /// operations that themselves schedule events.
    pub fn split(&mut self) -> (&mut M, &mut Ctx<M::Event>) {
        (&mut self.model, &mut self.ctx)
    }

    /// Dispatch a single event if one is pending. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.ctx.pop_due(Time::MAX) {
            Some(entry) => {
                self.ctx.now = entry.time;
                self.ctx.dispatched += 1;
                self.model.handle(&mut self.ctx, entry.ev);
                true
            }
            None => false,
        }
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time `limit` (inclusive: events *at* `limit`
    /// are dispatched). Afterwards `now()` equals `limit` unless the
    /// queue drained earlier, in which case `now()` is the last dispatch
    /// time.
    pub fn run_until(&mut self, limit: Time) {
        while let Some(entry) = self.ctx.pop_due(limit) {
            self.ctx.now = entry.time;
            self.ctx.dispatched += 1;
            self.model.handle(&mut self.ctx, entry.ev);
        }
        if self.ctx.now < limit {
            self.ctx.now = limit;
        }
    }

    /// Run for a span of simulated time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let limit = self.ctx.now + d;
        self.run_until(limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(Time, u32)>,
        respawn: bool,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if self.respawn && ev < 5 {
                ctx.after(Duration::from_us(1), ev + 1);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: vec![],
            respawn: false,
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(30), 3);
        e.schedule_at(Time::from_us(10), 1);
        e.schedule_at(Time::from_us(20), 2);
        e.run();
        assert_eq!(
            e.model.seen,
            vec![
                (Time::from_us(10), 1),
                (Time::from_us(20), 2),
                (Time::from_us(30), 3)
            ]
        );
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut e = Engine::new(recorder());
        let t = Time::from_us(5);
        for i in 0..10 {
            e.schedule_at(t, i);
        }
        e.run();
        let order: Vec<u32> = e.model.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new(recorder());
        let keep = e.schedule_at(Time::from_us(1), 1);
        let drop1 = e.schedule_at(Time::from_us(2), 2);
        let drop2 = e.schedule_at(Time::from_us(3), 3);
        e.ctx().cancel(drop1);
        e.ctx().cancel(drop2);
        let _ = keep;
        e.run();
        let vals: Vec<u32> = e.model.seen.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![1]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = Engine::new(recorder());
        let id = e.schedule_at(Time::from_us(1), 7);
        e.run();
        e.ctx().cancel(id); // must not panic or corrupt the queue
        e.schedule_at(Time::from_us(2), 8);
        e.run();
        assert_eq!(e.model.seen.len(), 2);
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut e = Engine::new(recorder());
        e.ctx().cancel(TimerId::NONE);
        assert_eq!(e.ctx().pending(), 0);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(Recorder {
            seen: vec![],
            respawn: true,
        });
        e.schedule_at(Time::ZERO, 0);
        e.run();
        assert_eq!(e.model.seen.len(), 6);
        assert_eq!(e.now(), Time::from_us(5));
    }

    #[test]
    fn run_until_is_inclusive_and_advances_clock() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(10), 1);
        e.schedule_at(Time::from_us(20), 2);
        e.schedule_at(Time::from_us(30), 3);
        e.run_until(Time::from_us(20));
        assert_eq!(e.model.seen.len(), 2);
        assert_eq!(e.now(), Time::from_us(20));
        e.run_until(Time::from_us(100));
        assert_eq!(e.model.seen.len(), 3);
        assert_eq!(e.now(), Time::from_us(100));
    }

    #[test]
    fn run_for_advances_relative() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(5), 1);
        e.run_for(Duration::from_us(3));
        assert_eq!(e.now(), Time::from_us(3));
        assert!(e.model.seen.is_empty());
        e.run_for(Duration::from_us(3));
        assert_eq!(e.model.seen.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new(recorder());
        e.schedule_at(Time::from_us(10), 1);
        e.run();
        e.schedule_at(Time::from_us(5), 2);
    }

    #[test]
    fn dispatch_counter_counts_fired_only() {
        let mut e = Engine::new(recorder());
        let a = e.schedule_at(Time::from_us(1), 1);
        e.schedule_at(Time::from_us(2), 2);
        e.ctx().cancel(a);
        e.run();
        assert_eq!(e.dispatched(), 1);
    }
}
