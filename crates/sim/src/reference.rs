//! Reference scheduler: the engine's original `BinaryHeap` + lazy-cancel
//! tombstone design, preserved verbatim as an executable specification.
//!
//! Two consumers keep this alive:
//!
//! * **Differential property tests** drive the timing wheel and this
//!   heap with the same random schedule/cancel/advance sequence and
//!   assert identical dispatch order and clock advance — the
//!   determinism contract (ties fire in scheduling order) must survive
//!   any future queue swap.
//! * **`rtec-bench`** measures it as the pre-wheel baseline, so the
//!   recorded speedup in `BENCH_engine.json` is against real code, not
//!   a number in a commit message.
//!
//! It deliberately keeps the old design's flaw: cancelling an
//! already-fired timer inserts a tombstone that is never reclaimed
//! ([`HeapScheduler::tombstones`] exposes this for the leak regression
//! comparison).

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

struct Entry<E> {
    time: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Binary-heap scheduler with lazy cancellation, mirroring the engine's
/// pre-wheel implementation operation for operation.
pub struct HeapScheduler<E> {
    now: Time,
    queue: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    dispatched: u64,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        HeapScheduler {
            now: Time::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            dispatched: 0,
        }
    }

    /// The current instant (time of the last pop, or the last
    /// [`HeapScheduler::advance_to`] target).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Events dispatched so far.
    #[inline]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Queue length *including* lazily-cancelled entries still buried in
    /// the heap.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Size of the tombstone set — the structure the timing wheel
    /// eliminates. Grows without bound under cancel-after-fire churn.
    #[inline]
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedule `ev` at absolute time `t`; returns the sequence-number
    /// handle used for cancellation. Panics if `t` is in the past.
    pub fn at(&mut self, t: Time, ev: E) -> u64 {
        assert!(t >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry { time: t, seq, ev });
        seq
    }

    /// Schedule `ev` after a relative delay.
    #[inline]
    pub fn after(&mut self, d: Duration, ev: E) -> u64 {
        self.at(self.now + d, ev)
    }

    /// Lazily cancel a handle (tombstone inserted unconditionally, as
    /// in the original engine).
    pub fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    /// Pop the earliest live entry with `time ≤ limit`, advancing `now`
    /// to its timestamp.
    pub fn pop_due(&mut self, limit: Time) -> Option<(Time, E)> {
        while let Some(head) = self.queue.peek() {
            if head.time > limit {
                return None;
            }
            let entry = self.queue.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            self.dispatched += 1;
            return Some((entry.time, entry.ev));
        }
        None
    }

    /// Advance the clock to `t` without dispatching (mirrors the
    /// engine's `run_until` trailing clock update). No-op if `t` is in
    /// the past.
    pub fn advance_to(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order_with_cancels() {
        let mut h = HeapScheduler::new();
        let t = Time::from_us(5);
        h.at(t, 'a');
        let b = h.at(t, 'b');
        h.at(t, 'c');
        h.cancel(b);
        let mut got = Vec::new();
        while let Some((_, ev)) = h.pop_due(Time::MAX) {
            got.push(ev);
        }
        assert_eq!(got, vec!['a', 'c']);
        assert_eq!(h.now(), t);
        assert_eq!(h.dispatched(), 2);
    }

    #[test]
    fn cancel_after_fire_leaks_a_tombstone() {
        // Documents the defect the wheel fixes.
        let mut h = HeapScheduler::new();
        for i in 0..100u64 {
            let id = h.at(Time::from_us(i + 1), ());
            assert!(h.pop_due(Time::MAX).is_some());
            h.cancel(id); // after the fact: tombstone never reclaimed
        }
        assert_eq!(h.tombstones(), 100);
    }
}
