//! Simulated time: absolute instants ([`Time`]) and spans ([`Duration`]),
//! both counted in integer nanoseconds.
//!
//! Integer nanoseconds keep the simulation exactly reproducible (no
//! floating-point drift) while still resolving 1/1000 of a CAN bit time
//! at 1 Mbit/s.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant of simulated time, in nanoseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Value in microseconds (floating point, for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Value in milliseconds (floating point, for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    /// Value in seconds (floating point, for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration since an earlier instant; zero if `earlier` is later
    /// (saturating, never panics).
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: Duration) -> Option<Time> {
        self.0.checked_sub(d.0).map(Time)
    }

    /// Subtract a duration, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Time {
        Time(self.0.saturating_sub(d.0))
    }

    /// Round this instant *up* to the next multiple of `granule`
    /// (a granule of zero returns `self`).
    #[inline]
    pub fn round_up_to(self, granule: Duration) -> Time {
        if granule.0 == 0 {
            return self;
        }
        let rem = self.0 % granule.0;
        if rem == 0 {
            self
        } else {
            Time(self.0 + (granule.0 - rem))
        }
    }

    /// Round this instant *down* to the previous multiple of `granule`.
    #[inline]
    pub fn round_down_to(self, granule: Duration) -> Time {
        if granule.0 == 0 {
            return self;
        }
        Time(self.0 - self.0 % granule.0)
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span; used as "infinite".
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Value in microseconds (floating point, for reporting only).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Value in milliseconds (floating point, for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    /// Value in seconds (floating point, for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// `true` if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}
impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, d: Duration) -> Time {
        Time(self.0 - d.0)
    }
}
impl SubAssign<Duration> for Time {
    #[inline]
    fn sub_assign(&mut self, d: Duration) {
        self.0 -= d.0;
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, earlier: Time) -> Duration {
        Duration(self.0 - earlier.0)
    }
}
impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}
impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}
impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0 - other.0)
    }
}
impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, other: Duration) {
        self.0 -= other.0;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}
impl Div<Duration> for Duration {
    type Output = u64;
    #[inline]
    fn div(self, other: Duration) -> u64 {
        self.0 / other.0
    }
}
impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, other: Duration) -> Duration {
        Duration(self.0 % other.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "∞".to_string()
    } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Time::from_us(5).as_ns(), 5_000);
        assert_eq!(Time::from_ms(5).as_ns(), 5_000_000);
        assert_eq!(Time::from_secs(5).as_ns(), 5_000_000_000);
        assert_eq!(Duration::from_us(154).as_ns(), 154_000);
        assert!((Duration::from_us(154).as_us_f64() - 154.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_us(100);
        let d = Duration::from_us(40);
        assert_eq!(t + d, Time::from_us(140));
        assert_eq!(t - d, Time::from_us(60));
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, Duration::from_us(120));
        assert_eq!(d / 2, Duration::from_us(20));
        assert_eq!(Duration::from_us(100) / Duration::from_us(30), 3);
        assert_eq!(
            Duration::from_us(100) % Duration::from_us(30),
            Duration::from_us(10)
        );
    }

    #[test]
    fn saturating_ops() {
        let early = Time::from_us(10);
        let late = Time::from_us(50);
        assert_eq!(late.saturating_since(early), Duration::from_us(40));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(early.saturating_sub(Duration::from_us(100)), Time::ZERO);
        assert_eq!(early.checked_sub(Duration::from_us(100)), None);
        assert_eq!(early.checked_sub(Duration::from_us(10)), Some(Time::ZERO));
    }

    #[test]
    fn rounding() {
        let g = Duration::from_us(10);
        assert_eq!(Time::from_us(25).round_up_to(g), Time::from_us(30));
        assert_eq!(Time::from_us(30).round_up_to(g), Time::from_us(30));
        assert_eq!(Time::from_us(25).round_down_to(g), Time::from_us(20));
        assert_eq!(
            Time::from_us(25).round_up_to(Duration::ZERO),
            Time::from_us(25)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_ns(5)), "5ns");
        assert_eq!(format!("{}", Duration::from_us(154)), "154.000us");
        assert_eq!(format!("{}", Duration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(Time::from_us(1) < Time::from_us(2));
        assert!(Duration::from_ns(999) < Duration::from_us(1));
        assert_eq!(Time::ZERO.min(Time::MAX), Time::ZERO);
    }
}
