//! The workspace-wide synchronization facade.
//!
//! Every sync primitive the concurrent runtimes use — mutexes,
//! channels, atomics, thread spawns — is imported from here (or from
//! `rtec_live::sync`, which re-exports this module), never from
//! `std::sync`/`std::thread` directly (lint C1 in `rtec-conformance`
//! enforces this for the scanned sources). Normally the facade
//! resolves straight to `std`; compiled with `--cfg loom` (the ci.sh
//! model-check job) it resolves to the vendored `loom` stand-in, whose
//! scheduler explores thread interleavings exhaustively up to a
//! preemption bound. That swap is what lets one set of protocol
//! invariants — the live broker's lock-step turns *and* the parallel
//! simulation's window-barrier handshake — be checked both by ordinary
//! tests and by model checking without touching runtime code.
//!
//! Two deliberate narrowings versus `std`:
//!
//! * channels are **bounded only** ([`mpsc::bounded`]): concurrent hot
//!   paths must exert backpressure rather than buffer without limit
//!   (lint C2);
//! * threads are spawned through [`thread::Builder`] so every runtime
//!   thread carries a name (lint C6).

#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::{Arc, Mutex, MutexGuard};

pub mod atomic {
    //! Atomic types (sequentially consistent under the loom stand-in,
    //! which serializes every access).
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

pub mod mpsc {
    //! Bounded channels. The unbounded `channel()` constructor is
    //! intentionally not re-exported — see lint C2.
    #[cfg(loom)]
    use loom::sync::mpsc as imp;
    #[cfg(not(loom))]
    use std::sync::mpsc as imp;

    pub use imp::{Receiver, RecvTimeoutError, SendError, SyncSender};

    /// Default depth for runtime channels. Lock-step protocols keep at
    /// most a handful of messages in flight per endpoint, so this bound
    /// is never approached in a healthy system; it exists to turn a
    /// runaway producer into visible backpressure instead of unbounded
    /// memory growth.
    pub const DEFAULT_DEPTH: usize = 1024;

    /// A bounded FIFO channel of the given depth.
    pub fn bounded<T>(depth: usize) -> (SyncSender<T>, Receiver<T>) {
        imp::sync_channel(depth)
    }
}

pub mod thread {
    //! Thread spawning and parking.
    #[cfg(loom)]
    pub use loom::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
    #[cfg(not(loom))]
    pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
}
