//! Hierarchical timing wheel: the engine's priority queue.
//!
//! The wheel replaces a `BinaryHeap` + tombstone `HashSet` with a
//! structure tuned to how discrete-event CAN simulations actually
//! schedule: almost every timer lands within a few bus bit times of the
//! clock, while a small minority (cycle starts, watchdogs, consumer
//! deadlines) sit far out.
//!
//! Layout
//!
//! * Time is binned into **granules** of `2^GRANULE_BITS` ns = 1024 ns,
//!   i.e. one CAN bit time at 1 Mbit/s (1000 ns) rounded to a power of
//!   two so slot indexing is a shift, not a division.
//! * Level `k` (`k = 0..LEVELS`) has 64 slots of `2^(GRANULE_BITS +
//!   6k)` ns each; level 0 slots are single granules, level 8 slots
//!   span `2^58` ns. Together the levels cover the full `u64`
//!   nanosecond range, so no timer is ever out of horizon.
//! * Timers inside the *current* granule live in a tiny `imminent`
//!   binary heap ordered by `(time, seq)`, which is what preserves the
//!   engine's deterministic ties-fire-in-scheduling-order contract.
//! * Each level keeps a 64-bit occupancy bitmap; finding the next
//!   non-empty slot is a rotate + `trailing_zeros`, so an idle stretch
//!   of any length costs O(levels), not O(elapsed slots).
//!
//! Timer state lives in a slab indexed by the low 32 bits of
//! [`TimerId`]; the high 32 bits carry a per-cell **generation** that is
//! bumped every time a cell is freed (fire or cancel). Slot vectors and
//! the imminent heap store `(index, generation)` references, so a stale
//! reference — to a timer that was cancelled, fired, or whose cell was
//! since reused — is recognized by generation mismatch and skipped.
//! Cancellation is therefore O(1) (free the cell, bump the generation)
//! and cancelling an already-fired timer is a true no-op: nothing is
//! inserted anywhere, which is what fixes the unbounded tombstone set
//! the old engine accumulated.
//!
//! Invariants (relied on by `pop_due`):
//!
//! 1. `wheel_now` never exceeds the earliest live timer: it only
//!    advances to the start of a slot that contained a *live* entry.
//!    Slots holding only stale references are cleared without advancing.
//! 2. A placed reference never targets the slot `wheel_now` currently
//!    occupies at that level (same-granule timers go to `imminent`), so
//!    the bitmap scan never has to special-case the cursor slot.
//! 3. Every entry at level `k > 0` is strictly later than every entry
//!    at level `k - 1` (it differs from `wheel_now` in a higher bit),
//!    so the lowest occupied level always holds the next due slot.

use crate::engine::TimerId;
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the granule size in ns: 1024 ns ≈ one CAN bit time @ 1 Mbit/s.
pub(crate) const GRANULE_BITS: u32 = 10;
/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed to cover all 64 time bits: 10 + 9·6 = 64.
const LEVELS: usize = 9;

/// One slab cell. `gen` is bumped on every free, invalidating
/// outstanding references and handles.
struct TimerCell<E> {
    gen: u32,
    data: Option<(Time, u64, E)>,
}

/// One wheel level: a 64-slot ring plus an occupancy bitmap.
struct Level {
    occupied: u64,
    slots: [Vec<(u32, u32)>; SLOTS],
}

impl Level {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// Hierarchical timing wheel over events of type `E`.
pub(crate) struct TimerWheel<E> {
    cells: Vec<TimerCell<E>>,
    free: Vec<u32>,
    live: usize,
    levels: Vec<Level>,
    /// Min-heap of `(time_ns, seq, idx, gen)` for timers inserted into
    /// the current granule while it is being dispatched.
    imminent: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    /// The current granule's pre-sorted entries, descending by
    /// `(time, seq)` so the minimum pops from the back in O(1). Filled
    /// by draining a level-0 slot (one sort instead of per-entry heap
    /// traffic); only entries scheduled *after* the drain go through
    /// `imminent`, and `pop_due` takes the smaller of the two heads.
    due: Vec<(u64, u64, u32, u32)>,
    /// The wheel's own cursor, in ns. Always ≤ the earliest live timer.
    wheel_now: u64,
    /// Spare buffer swapped into a slot being drained, so steady-state
    /// cascading never allocates: buffers rotate between the slots and
    /// this scratch space, keeping their capacity.
    scratch: Vec<(u32, u32)>,
}

impl<E> TimerWheel<E> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            cells: Vec::new(),
            free: Vec::new(),
            live: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            imminent: BinaryHeap::new(),
            due: Vec::new(),
            wheel_now: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of live (scheduled, not yet fired or cancelled) timers.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Number of slab cells ever allocated (capacity watermark). Stays
    /// flat across fire/cancel churn — the regression test for the old
    /// tombstone leak asserts on this.
    #[inline]
    pub(crate) fn allocated(&self) -> usize {
        self.cells.len()
    }

    /// Schedule `ev` at `t` with tie-break sequence `seq`. Returns a
    /// generation-tagged handle.
    pub(crate) fn insert(&mut self, t: Time, seq: u64, ev: E) -> TimerId {
        let idx = match self.free.pop() {
            Some(i) => {
                self.cells[i as usize].data = Some((t, seq, ev));
                i
            }
            None => {
                let i = self.cells.len();
                assert!(i < u32::MAX as usize, "timer slab exhausted");
                self.cells.push(TimerCell {
                    gen: 0,
                    data: Some((t, seq, ev)),
                });
                i as u32
            }
        };
        self.live += 1;
        let gen = self.cells[idx as usize].gen;
        self.place(t.as_ns(), seq, idx, gen);
        TimerId::pack(idx, gen)
    }

    /// Cancel a timer. Returns `true` if it was live. Stale handles
    /// (already fired, already cancelled, or `TimerId::NONE`) are
    /// recognized by generation mismatch and ignored — nothing is
    /// recorded, so repeated stale cancels cannot grow any structure.
    pub(crate) fn cancel(&mut self, id: TimerId) -> bool {
        let Some(cell) = self.cells.get_mut(id.index() as usize) else {
            return false;
        };
        if cell.gen != id.generation() || cell.data.is_none() {
            return false;
        }
        cell.data = None;
        cell.gen = cell.gen.wrapping_add(1);
        self.free.push(id.index());
        self.live -= 1;
        true
    }

    /// File a reference to cell `idx` under the level/slot (or the
    /// imminent heap) appropriate for time `t` relative to `wheel_now`.
    fn place(&mut self, t: u64, seq: u64, idx: u32, gen: u32) {
        let diff = (t ^ self.wheel_now) >> GRANULE_BITS;
        if diff == 0 {
            // Same granule as the cursor: ordered heap keeps ties exact.
            self.imminent.push(Reverse((t, seq, idx, gen)));
            return;
        }
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        debug_assert!(level < LEVELS);
        let shift = GRANULE_BITS + LEVEL_BITS * level as u32;
        let slot = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
        debug_assert_ne!(
            slot,
            ((self.wheel_now >> shift) & (SLOTS as u64 - 1)) as usize,
            "placement must never target the cursor slot"
        );
        self.levels[level].slots[slot].push((idx, gen));
        self.levels[level].occupied |= 1u64 << slot;
    }

    /// Lowest occupied (level, slot, slot_start_ns), searching forward
    /// from the cursor. By invariant 3 the lowest occupied level holds
    /// the earliest slot.
    fn next_occupied(&self) -> Option<(usize, usize, u64)> {
        for (level, lv) in self.levels.iter().enumerate() {
            if lv.occupied == 0 {
                continue;
            }
            let shift = GRANULE_BITS + LEVEL_BITS * level as u32;
            let unit = self.wheel_now >> shift;
            let cursor = (unit & (SLOTS as u64 - 1)) as u32;
            let dist = u64::from(lv.occupied.rotate_right(cursor).trailing_zeros());
            let target_unit = unit + dist;
            let slot = (target_unit & (SLOTS as u64 - 1)) as usize;
            debug_assert!(lv.occupied & (1u64 << slot) != 0);
            return Some((level, slot, target_unit << shift));
        }
        None
    }

    /// Pop the earliest timer with `time ≤ limit`, in `(time, seq)`
    /// order. Stale references encountered along the way are discarded
    /// (this is where cancelled timers are garbage-collected).
    pub(crate) fn pop_due(&mut self, limit: Time) -> Option<(Time, u64, E)> {
        let limit_ns = limit.as_ns();
        loop {
            // Drain the current granule first — the smaller of the
            // sorted `due` tail and the `imminent` top; while either is
            // non-empty no wheel slot can hold anything earlier.
            loop {
                let head_due = self.due.last().copied();
                let head_imm = self.imminent.peek().map(|&Reverse(e)| e);
                let (entry, from_due) = match (head_due, head_imm) {
                    (None, None) => break,
                    (Some(d), None) => (d, true),
                    (None, Some(h)) => (h, false),
                    (Some(d), Some(h)) => {
                        if (d.0, d.1) <= (h.0, h.1) {
                            (d, true)
                        } else {
                            (h, false)
                        }
                    }
                };
                let (t, _seq, idx, gen) = entry;
                if t > limit_ns {
                    return None;
                }
                if from_due {
                    self.due.pop();
                } else {
                    self.imminent.pop();
                }
                let cell = &mut self.cells[idx as usize];
                if cell.gen != gen {
                    continue; // cancelled (cell possibly reused since)
                }
                let (time, eseq, ev) = cell.data.take().expect("generation-matched cell is live");
                debug_assert_eq!(time.as_ns(), t);
                cell.gen = cell.gen.wrapping_add(1);
                self.free.push(idx);
                self.live -= 1;
                return Some((time, eseq, ev));
            }
            // Advance to the next occupied slot and cascade it.
            let (level, slot, slot_start) = self.next_occupied()?;
            if slot_start > limit_ns {
                return None;
            }
            let mut refs = std::mem::replace(
                &mut self.levels[level].slots[slot],
                std::mem::take(&mut self.scratch),
            );
            self.levels[level].occupied &= !(1u64 << slot);
            let mut advanced = false;
            if level == 0 {
                // A level-0 slot spans exactly one granule, and both
                // granule queues are empty here (drained above): one
                // descending sort arms `due` for O(1) pops. Timers
                // scheduled into this granule *after* the drain go
                // through `imminent`, merged at pop time.
                debug_assert!(self.due.is_empty() && self.imminent.is_empty());
                for &(idx, gen) in &refs {
                    let cell = &self.cells[idx as usize];
                    if cell.gen != gen {
                        continue; // stale reference: drop it
                    }
                    let &(t, seq, _) = cell.data.as_ref().expect("generation-matched cell is live");
                    if !advanced {
                        // Advance only for slots that held a live entry
                        // (invariant 1); all live entries here are ≥
                        // slot_start, so the cursor stays ≤ earliest
                        // timer.
                        self.wheel_now = self.wheel_now.max(slot_start);
                        advanced = true;
                    }
                    self.due.push((t.as_ns(), seq, idx, gen));
                }
                self.due.sort_unstable_by(|a, b| b.cmp(a));
            } else {
                for &(idx, gen) in &refs {
                    if self.cells[idx as usize].gen != gen {
                        continue; // stale reference: drop it
                    }
                    let &(t, seq, _) = self.cells[idx as usize]
                        .data
                        .as_ref()
                        .expect("generation-matched cell is live");
                    if !advanced {
                        self.wheel_now = self.wheel_now.max(slot_start);
                        advanced = true;
                    }
                    self.place(t.as_ns(), seq, idx, gen);
                }
            }
            refs.clear();
            self.scratch = refs;
            // Dead-only slot: bit cleared, cursor unmoved; keep looking.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(w: &mut TimerWheel<E>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, seq, _)) = w.pop_due(Time::MAX) {
            out.push((t.as_ns(), seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // Mix of same-granule ties, short and very long horizons.
        let times = [5u64, 5, 1_000_000, 3, 5, 70_000, u64::MAX / 2, 1024, 1023];
        for (seq, &t) in times.iter().enumerate() {
            w.insert(Time::from_ns(t), seq as u64, ());
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn cancel_is_exact_and_reuses_cells() {
        let mut w = TimerWheel::new();
        let a = w.insert(Time::from_ns(100), 0, 'a');
        let b = w.insert(Time::from_ns(200_000), 1, 'b');
        let c = w.insert(Time::from_ns(300), 2, 'c');
        assert!(w.cancel(b));
        assert!(!w.cancel(b), "double cancel is a no-op");
        let allocated = w.allocated();
        // The freed cell is reused; allocation watermark stays flat.
        let d = w.insert(Time::from_ns(400), 3, 'd');
        assert_eq!(w.allocated(), allocated);
        let mut evs = Vec::new();
        while let Some((_, _, ev)) = w.pop_due(Time::MAX) {
            evs.push(ev);
        }
        assert_eq!(evs, vec!['a', 'c', 'd']);
        let _ = (a, c, d);
    }

    #[test]
    fn stale_handle_cannot_cancel_cell_reuser() {
        let mut w = TimerWheel::new();
        let a = w.insert(Time::from_ns(100), 0, 'a');
        assert!(w.cancel(a));
        // 'b' reuses a's cell; a's stale handle must not reach it.
        let _b = w.insert(Time::from_ns(200), 1, 'b');
        assert!(!w.cancel(a));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(Time::MAX).map(|(_, _, e)| e), Some('b'));
    }

    #[test]
    fn pop_due_respects_limit_across_levels() {
        let mut w = TimerWheel::new();
        w.insert(Time::from_ns(500), 0, ());
        w.insert(Time::from_ns(100_000), 1, ());
        w.insert(Time::from_ns(10_000_000), 2, ());
        assert!(w.pop_due(Time::from_ns(499)).is_none());
        assert!(w.pop_due(Time::from_ns(500)).is_some());
        assert!(w.pop_due(Time::from_ns(99_999)).is_none());
        assert!(w.pop_due(Time::from_ns(100_000)).is_some());
        assert!(w.pop_due(Time::from_ns(9_999_999)).is_none());
        assert!(w.pop_due(Time::MAX).is_some());
        assert!(w.pop_due(Time::MAX).is_none());
    }

    #[test]
    fn far_future_then_near_past_interleave() {
        // Schedule far out, pop nothing, then schedule near: the near
        // timer must still come out first.
        let mut w = TimerWheel::new();
        w.insert(Time::from_secs(10), 0, "far");
        assert!(w.pop_due(Time::from_ns(1)).is_none());
        w.insert(Time::from_ns(2), 1, "near");
        assert_eq!(w.pop_due(Time::MAX).map(|(_, _, e)| e), Some("near"));
        assert_eq!(w.pop_due(Time::MAX).map(|(_, _, e)| e), Some("far"));
    }

    #[test]
    fn dead_only_slots_do_not_advance_cursor() {
        let mut w = TimerWheel::new();
        // A timer far out, cancelled; then a query must not let the
        // cursor jump past a later-scheduled nearer timer.
        let far = w.insert(Time::from_ms(50), 0, ());
        assert!(w.cancel(far));
        assert!(w.pop_due(Time::MAX).is_none()); // GC pass over dead slot
        w.insert(Time::from_ns(100), 1, ());
        w.insert(Time::from_ms(60), 2, ());
        let got = drain(&mut w);
        assert_eq!(got, vec![(100, 1), (60_000_000, 2)]);
    }

    #[test]
    fn max_time_timer_is_representable() {
        let mut w = TimerWheel::new();
        w.insert(Time::MAX, 0, ());
        w.insert(Time::from_ns(1), 1, ());
        assert_eq!(
            w.pop_due(Time::MAX).map(|(t, _, _)| t),
            Some(Time::from_ns(1))
        );
        assert_eq!(w.pop_due(Time::MAX).map(|(t, _, _)| t), Some(Time::MAX));
    }
}
