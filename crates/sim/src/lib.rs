//! # rtec-sim — deterministic discrete-event simulation engine
//!
//! The whole `rtec` stack (CAN bus, clock synchronization, event-channel
//! middleware) runs on top of this small engine. The engine is
//! deliberately minimal: a model type handles typed events, and a
//! [`Ctx`] lets handlers schedule further events at absolute or relative
//! simulated times. Simulated time is counted in **nanoseconds** (at the
//! CAN bit rates of interest, 1 bit = 1000 ns @ 1 Mbit/s), which gives a
//! simulation horizon of ~584 years in a `u64` — far beyond any run.
//!
//! Determinism: events firing at the same instant are delivered in the
//! order they were scheduled (a monotonically increasing sequence number
//! breaks ties), and all randomness comes from [`rng`] streams seeded
//! from a single run seed. Two runs with the same seed produce identical
//! traces.
//!
//! ```
//! use rtec_sim::{Engine, Model, Ctx, Time, Duration};
//!
//! struct Counter { fired: Vec<u32> }
//! impl Model for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, ctx: &mut Ctx<u32>, ev: u32) {
//!         self.fired.push(ev);
//!         if ev < 3 {
//!             ctx.after(Duration::from_us(10), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: vec![] });
//! engine.schedule_at(Time::ZERO, 0);
//! engine.run();
//! assert_eq!(engine.model.fired, vec![0, 1, 2, 3]);
//! assert_eq!(engine.now(), Time::from_us(30));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod parallel;
pub mod reference;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod time;
pub mod trace;
mod wheel;

pub use engine::{Ctx, Engine, Model, TimerId};
pub use reference::HeapScheduler;
pub use rng::{Rng, RngStreams};
pub use stats::{Histogram, OnlineStats};
pub use telemetry::EngineTelemetry;
pub use time::{Duration, Time};
pub use trace::{SharedTraceSink, SourceId, TraceEvent, TraceSink};
