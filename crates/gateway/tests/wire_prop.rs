//! Property-based tests for the gateway ⇄ client wire codec, in the
//! same mold as the broker codec's (`crates/live/tests/wire_prop.rs`):
//! every message round-trips, and arbitrary / mutated / truncated byte
//! strings are rejected without panicking. On top of those, the
//! version-tolerance contract — version 0 never decodes, higher
//! version bytes may carry trailing extension bytes — and the v2
//! compatibility oracle: a faithful reimplementation of the version 1
//! handshake decoder must accept every v2 `Hello`/`Welcome`, because
//! that is exactly what an unupgraded peer will run against a v2
//! sender.

use proptest::prelude::*;
use rtec_core::ChannelClass;
use rtec_gateway::wire::{
    decode_to_client, decode_to_gateway, encode_to_client, encode_to_gateway, BatchEntry,
    ClassWatermarks, EventMsg, FragMsg, Reason, ResumeReq, ResumeVerdict, SessionInfo, ToClient,
    ToGateway, WireError, MAGIC, WIRE_VERSION,
};

fn arb_class() -> impl Strategy<Value = ChannelClass> {
    prop_oneof![
        Just(ChannelClass::Hrt),
        Just(ChannelClass::Srt),
        Just(ChannelClass::Nrt),
    ]
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

/// Reasons that survive a round trip: the named variants, or Unknown
/// with a byte the decoder does not map back to a name.
fn arb_reason() -> impl Strategy<Value = Reason> {
    prop_oneof![
        Just(Reason::Slow),
        Just(Reason::Stale),
        Just(Reason::Shutdown),
        any::<u8>()
            .prop_filter("assigned reason codes decode to names", |c| !(1..=3)
                .contains(c))
            .prop_map(Reason::Unknown),
    ]
}

/// Verdicts that survive a round trip (same rule as [`arb_reason`]).
fn arb_verdict() -> impl Strategy<Value = ResumeVerdict> {
    prop_oneof![
        Just(ResumeVerdict::Fresh),
        Just(ResumeVerdict::Resumed),
        Just(ResumeVerdict::Expired),
        Just(ResumeVerdict::Gap),
        (4u8..=255).prop_map(ResumeVerdict::Unknown),
    ]
}

fn arb_wm() -> impl Strategy<Value = ClassWatermarks> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(hrt, srt, nrt)| ClassWatermarks {
        hrt,
        srt,
        nrt,
    })
}

/// Token 0 is the wire encoding of "no session", so a present resume
/// request always carries a nonzero token.
fn arb_resume() -> impl Strategy<Value = Option<ResumeReq>> {
    prop_oneof![
        Just(None),
        (1u64..=u64::MAX, arb_wm()).prop_map(|(token, wm)| Some(ResumeReq { token, wm })),
    ]
}

fn arb_session() -> impl Strategy<Value = Option<SessionInfo>> {
    prop_oneof![
        Just(None),
        (1u64..=u64::MAX, arb_verdict())
            .prop_map(|(token, verdict)| Some(SessionInfo { token, verdict })),
    ]
}

fn arb_event() -> impl Strategy<Value = EventMsg> {
    (
        arb_class(),
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(
            |(class, origin, uid, seq, wire_ns, release_ns, payload)| EventMsg {
                class,
                origin,
                uid,
                seq,
                wire_ns,
                release_ns,
                payload,
            },
        )
}

fn arb_batch_entry() -> impl Strategy<Value = BatchEntry> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(|(origin, uid, seq, wire_ns, payload)| BatchEntry {
            origin,
            uid,
            seq,
            wire_ns,
            payload,
        })
}

fn arb_frag() -> impl Strategy<Value = FragMsg> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 1..48),
    )
        .prop_map(
            |(origin, uid, seq, wire_ns, offset, total, chunk)| FragMsg {
                origin,
                uid,
                seq,
                wire_ns,
                offset,
                total,
                chunk,
            },
        )
}

fn arb_to_gateway() -> impl Strategy<Value = ToGateway> {
    prop_oneof![
        (any::<u16>(), arb_resume()).prop_map(|(subs, resume)| ToGateway::Hello { subs, resume }),
        any::<u64>().prop_map(|uid| ToGateway::Subscribe { uid }),
        Just(ToGateway::Bye),
    ]
}

fn arb_to_client() -> impl Strategy<Value = ToClient> {
    prop_oneof![
        (any::<u32>(), any::<u64>(), arb_session()).prop_map(|(client, now_ns, session)| {
            ToClient::Welcome {
                client,
                now_ns,
                session,
            }
        }),
        arb_event().prop_map(ToClient::Event),
        prop::collection::vec(arb_batch_entry(), 1..6)
            .prop_map(|entries| ToClient::Batch { entries }),
        arb_frag().prop_map(ToClient::Frag),
        (arb_class(), arb_reason(), any::<u32>()).prop_map(|(class, reason, count)| {
            ToClient::Shed {
                class,
                reason,
                count,
            }
        }),
        (arb_class(), any::<u32>()).prop_map(|(class, count)| ToClient::Gap { class, count }),
        arb_reason().prop_map(|reason| ToClient::Disconnect { reason }),
    ]
}

/// A faithful reimplementation of the version 1 handshake decoder
/// (what PR 9 shipped): strict v1 body lengths, trailing-byte
/// tolerance for any *newer* version byte. This is the compatibility
/// oracle — an unupgraded v1 peer runs exactly this logic against a v2
/// sender, so every v2 `Hello`/`Welcome` must decode here.
mod v1 {
    const V1_WIRE_VERSION: u8 = 1;

    fn header(buf: &[u8]) -> Option<(u8, &[u8], u8)> {
        (buf.len() >= 4 && buf[..2] == *b"RG" && buf[2] >= 1).then(|| (buf[3], &buf[4..], buf[2]))
    }

    fn body_ok(body: &[u8], want: usize, version: u8) -> bool {
        if version > V1_WIRE_VERSION {
            body.len() >= want
        } else {
            body.len() == want
        }
    }

    /// Decode a `Hello` under the v1 layout: just the subs count.
    pub fn decode_hello(buf: &[u8]) -> Option<u16> {
        let (kind, body, version) = header(buf)?;
        (kind == 1 && body_ok(body, 2, version)).then(|| u16::from_le_bytes([body[0], body[1]]))
    }

    /// Decode a `Welcome` under the v1 layout: client id and bus time.
    pub fn decode_welcome(buf: &[u8]) -> Option<(u32, u64)> {
        let (kind, body, version) = header(buf)?;
        (kind == 16 && body_ok(body, 12, version)).then(|| {
            (
                u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
                u64::from_le_bytes([
                    body[4], body[5], body[6], body[7], body[8], body[9], body[10], body[11],
                ]),
            )
        })
    }
}

proptest! {
    /// Client → gateway messages survive the encoding.
    #[test]
    fn to_gateway_round_trips(msg in arb_to_gateway()) {
        let bytes = encode_to_gateway(&msg);
        prop_assert_eq!(decode_to_gateway(&bytes).unwrap(), msg);
    }

    /// Gateway → client messages survive the encoding.
    #[test]
    fn to_client_round_trips(msg in arb_to_client()) {
        let bytes = encode_to_client(&msg);
        prop_assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// Arbitrary byte strings never panic either decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = decode_to_gateway(&bytes);
        let _ = decode_to_client(&bytes);
    }

    /// Any single-byte mutation of a valid message is rejected or
    /// decodes to *some* message — never a panic, never an
    /// out-of-bounds read.
    #[test]
    fn mutated_messages_never_panic(
        msg in arb_to_client(),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = encode_to_client(&msg);
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = decode_to_client(&bytes);
        let _ = decode_to_gateway(&bytes);
    }

    /// The same for the handshake direction — resume tokens and
    /// watermarks included.
    #[test]
    fn mutated_handshakes_never_panic(
        msg in arb_to_gateway(),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = encode_to_gateway(&msg);
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = decode_to_gateway(&bytes);
        let _ = decode_to_client(&bytes);
    }

    /// Truncating a valid message at any point short of its full
    /// length is rejected — never a panic.
    #[test]
    fn truncated_messages_are_rejected(msg in arb_to_client(), keep_frac in 0.0f64..1.0) {
        let bytes = encode_to_client(&msg);
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        prop_assert!(decode_to_client(&bytes[..keep]).is_err() || keep == bytes.len());
    }

    /// Truncated resume handshakes are rejected too — a v2 `Hello` cut
    /// anywhere inside its token or watermark tail must fail, never
    /// silently lose the resume request.
    #[test]
    fn truncated_handshakes_are_rejected(msg in arb_to_gateway(), keep_frac in 0.0f64..1.0) {
        let bytes = encode_to_gateway(&msg);
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        prop_assert!(decode_to_gateway(&bytes[..keep]).is_err() || keep == bytes.len());
    }

    /// A message stamped with a higher version byte decodes under our
    /// layout, with or without trailing extension bytes.
    #[test]
    fn higher_versions_tolerate_trailing_bytes(
        msg in arb_to_client(),
        version in (WIRE_VERSION + 1)..=255,
        tail in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut bytes = encode_to_client(&msg);
        bytes[2] = version;
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// Version 0 never existed: always rejected.
    #[test]
    fn version_zero_is_rejected(msg in arb_to_client()) {
        let mut bytes = encode_to_client(&msg);
        bytes[2] = 0;
        prop_assert_eq!(decode_to_client(&bytes), Err(WireError::BadVersion(0)));
    }

    /// Current-version bodies are strictly length-checked: any
    /// appended tail turns a valid message into `BadLength`.
    #[test]
    fn current_version_rejects_trailing_bytes(
        msg in arb_to_gateway(),
        tail in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut bytes = encode_to_gateway(&msg);
        bytes.extend_from_slice(&tail);
        let bad_length = matches!(decode_to_gateway(&bytes), Err(WireError::BadLength { .. }));
        prop_assert!(bad_length);
    }

    /// Every v2 `Hello` — resume tail or not — decodes on the v1
    /// reference decoder to the same subs count.
    #[test]
    fn v1_decoder_accepts_every_v2_hello(subs in any::<u16>(), resume in arb_resume()) {
        let bytes = encode_to_gateway(&ToGateway::Hello { subs, resume });
        prop_assert_eq!(v1::decode_hello(&bytes), Some(subs));
    }

    /// Every v2 `Welcome` — session tail or not — decodes on the v1
    /// reference decoder to the same client id and bus time.
    #[test]
    fn v1_decoder_accepts_every_v2_welcome(
        client in any::<u32>(),
        now_ns in any::<u64>(),
        session in arb_session(),
    ) {
        let bytes = encode_to_client(&ToClient::Welcome { client, now_ns, session });
        prop_assert_eq!(v1::decode_welcome(&bytes), Some((client, now_ns)));
    }
}

/// The two protocol families reject each other's magic loudly.
#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = encode_to_gateway(&ToGateway::Bye);
    bytes[0] = b'R';
    bytes[1] = b'L'; // the broker protocol's magic
    assert_eq!(decode_to_gateway(&bytes), Err(WireError::BadMagic));
    assert_eq!(MAGIC, *b"RG");
}
