//! Property-based tests for the gateway ⇄ client wire codec, in the
//! same mold as the broker codec's (`crates/live/tests/wire_prop.rs`):
//! every message round-trips, and arbitrary / mutated / truncated byte
//! strings are rejected without panicking. On top of those, the
//! version-tolerance contract: higher version bytes may carry trailing
//! extension bytes, version 0 never decodes.

use proptest::prelude::*;
use rtec_core::ChannelClass;
use rtec_gateway::wire::{
    decode_to_client, decode_to_gateway, encode_to_client, encode_to_gateway, BatchEntry, EventMsg,
    FragMsg, ToClient, ToGateway, WireError, MAGIC, WIRE_VERSION,
};

fn arb_class() -> impl Strategy<Value = ChannelClass> {
    prop_oneof![
        Just(ChannelClass::Hrt),
        Just(ChannelClass::Srt),
        Just(ChannelClass::Nrt),
    ]
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..48)
}

fn arb_event() -> impl Strategy<Value = EventMsg> {
    (
        arb_class(),
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(
            |(class, origin, uid, seq, wire_ns, release_ns, payload)| EventMsg {
                class,
                origin,
                uid,
                seq,
                wire_ns,
                release_ns,
                payload,
            },
        )
}

fn arb_batch_entry() -> impl Strategy<Value = BatchEntry> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(|(origin, uid, seq, wire_ns, payload)| BatchEntry {
            origin,
            uid,
            seq,
            wire_ns,
            payload,
        })
}

fn arb_frag() -> impl Strategy<Value = FragMsg> {
    (
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 1..48),
    )
        .prop_map(
            |(origin, uid, seq, wire_ns, offset, total, chunk)| FragMsg {
                origin,
                uid,
                seq,
                wire_ns,
                offset,
                total,
                chunk,
            },
        )
}

fn arb_to_gateway() -> impl Strategy<Value = ToGateway> {
    prop_oneof![
        any::<u16>().prop_map(|subs| ToGateway::Hello { subs }),
        any::<u64>().prop_map(|uid| ToGateway::Subscribe { uid }),
        Just(ToGateway::Bye),
    ]
}

fn arb_to_client() -> impl Strategy<Value = ToClient> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(client, now_ns)| ToClient::Welcome { client, now_ns }),
        arb_event().prop_map(ToClient::Event),
        prop::collection::vec(arb_batch_entry(), 1..6)
            .prop_map(|entries| ToClient::Batch { entries }),
        arb_frag().prop_map(ToClient::Frag),
        (arb_class(), any::<u8>(), any::<u32>()).prop_map(|(class, reason, count)| {
            ToClient::Shed {
                class,
                reason,
                count,
            }
        }),
        any::<u8>().prop_map(|reason| ToClient::Disconnect { reason }),
    ]
}

proptest! {
    /// Client → gateway messages survive the encoding.
    #[test]
    fn to_gateway_round_trips(msg in arb_to_gateway()) {
        let bytes = encode_to_gateway(&msg);
        prop_assert_eq!(decode_to_gateway(&bytes).unwrap(), msg);
    }

    /// Gateway → client messages survive the encoding.
    #[test]
    fn to_client_round_trips(msg in arb_to_client()) {
        let bytes = encode_to_client(&msg);
        prop_assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// Arbitrary byte strings never panic either decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = decode_to_gateway(&bytes);
        let _ = decode_to_client(&bytes);
    }

    /// Any single-byte mutation of a valid message is rejected or
    /// decodes to *some* message — never a panic, never an
    /// out-of-bounds read.
    #[test]
    fn mutated_messages_never_panic(
        msg in arb_to_client(),
        pos_frac in 0.0f64..1.0,
        delta in 1u8..=255,
    ) {
        let mut bytes = encode_to_client(&msg);
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let _ = decode_to_client(&bytes);
        let _ = decode_to_gateway(&bytes);
    }

    /// Truncating a valid message at any point short of its full
    /// length is rejected — never a panic.
    #[test]
    fn truncated_messages_are_rejected(msg in arb_to_client(), keep_frac in 0.0f64..1.0) {
        let bytes = encode_to_client(&msg);
        let keep = ((bytes.len() as f64) * keep_frac) as usize;
        prop_assert!(decode_to_client(&bytes[..keep]).is_err() || keep == bytes.len());
    }

    /// A message stamped with a higher version byte decodes under
    /// version 1's layout, with or without trailing extension bytes.
    #[test]
    fn higher_versions_tolerate_trailing_bytes(
        msg in arb_to_client(),
        version in (WIRE_VERSION + 1)..=255,
        tail in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut bytes = encode_to_client(&msg);
        bytes[2] = version;
        bytes.extend_from_slice(&tail);
        prop_assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// Version 0 never existed: always rejected.
    #[test]
    fn version_zero_is_rejected(msg in arb_to_client()) {
        let mut bytes = encode_to_client(&msg);
        bytes[2] = 0;
        prop_assert_eq!(decode_to_client(&bytes), Err(WireError::BadVersion(0)));
    }

    /// Version 1 bodies are strictly length-checked: any appended tail
    /// turns a valid message into `BadLength`.
    #[test]
    fn current_version_rejects_trailing_bytes(
        msg in arb_to_gateway(),
        tail in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let mut bytes = encode_to_gateway(&msg);
        bytes.extend_from_slice(&tail);
        let bad_length = matches!(decode_to_gateway(&bytes), Err(WireError::BadLength { .. }));
        prop_assert!(bad_length);
    }
}

/// The two protocol families reject each other's magic loudly.
#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = encode_to_gateway(&ToGateway::Bye);
    bytes[0] = b'R';
    bytes[1] = b'L'; // the broker protocol's magic
    assert_eq!(decode_to_gateway(&bytes), Err(WireError::BadMagic));
    assert_eq!(MAGIC, *b"RG");
}
