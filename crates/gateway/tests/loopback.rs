//! End-to-end tests of the gateway against a live loopback cluster:
//! per-class QoS off-bus (HRT beats NRT bulk under client contention),
//! same-seed determinism of the whole egress path, slow-consumer
//! policies, merged trace auditing, and a real TCP client.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::channel::{ChannelClass, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_gateway::wire::{Reason, ToClient};
use rtec_gateway::{
    Acceptor, ClientSink, ClientSinkSpec, Gateway, GatewayClient, GatewayConfig, GatewayReport,
    SinkStatus, SlowConsumerPolicy,
};
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::Pace;
use rtec_sim::{Duration, SharedTraceSink};

/// Publishes a fresh HRT sample every calendar round.
struct HrtSource {
    subject: Subject,
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(self.subject, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(self.subject).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(self.subject, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

/// Publishes an SRT sample every `every`.
struct SrtSource {
    subject: Subject,
    every: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(self.subject, vec![0xAB, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// Publishes a bulk NRT transfer every `every`.
struct NrtPulse {
    subject: Subject,
    every: Duration,
    bytes: usize,
}

impl Behavior for NrtPulse {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        let payload: Vec<u8> = (0..self.bytes).map(|i| i as u8).collect();
        let _ = ctx.publish(Event::new(self.subject, payload));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// A sink that refuses everything until its gate opens, then records
/// every decoded message in arrival order.
#[derive(Clone)]
struct GatedRecorder {
    open: Arc<AtomicBool>,
    msgs: Arc<Mutex<Vec<ToClient>>>,
}

impl GatedRecorder {
    fn new() -> Self {
        GatedRecorder {
            open: Arc::new(AtomicBool::new(false)),
            msgs: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl ClientSink for GatedRecorder {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        if !self.open.load(Ordering::SeqCst) {
            return SinkStatus::Busy;
        }
        let msg = rtec_gateway::wire::decode_to_client(bytes).expect("gateway sent junk");
        self.msgs.lock().unwrap().push(msg);
        SinkStatus::Accepted
    }
}

/// Two subjects guaranteed to land on the same fanout shard.
fn colliding_subjects(shards: usize) -> (Subject, Subject) {
    let a = Subject::new(0x1001);
    let target = a.shard_of(shards);
    let b = (0x3000u64..0x4000)
        .map(Subject::new)
        .find(|s| s.shard_of(shards) == target)
        .expect("no colliding subject in range");
    (a, b)
}

/// HRT samples and NRT bulk contending for one blocked client lane:
/// when the client finally drains, every HRT sample comes out first —
/// released, never shed — while the NRT backlog was shed to the queue
/// bound.
#[test]
fn hrt_beats_nrt_bulk_under_client_contention() {
    let workers = 3;
    let (hrt_subject, nrt_subject) = colliding_subjects(workers);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        subject: hrt_subject,
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(NrtPulse {
        subject: nrt_subject,
        every: Duration::from_ms(5),
        bytes: 600,
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(n0, hrt_subject, hrt);
    cluster.publish(n1, nrt_subject, nrt);

    let gateway = Gateway::new(GatewayConfig {
        workers,
        client_queue_cap: 12,
        ..GatewayConfig::default()
    });
    gateway.bind(hrt_subject, &hrt);
    gateway.bind(nrt_subject, &nrt);
    let recorder = GatedRecorder::new();
    let sink: Box<dyn ClientSink> = Box::new(recorder.clone());
    gateway.add_client(
        &[hrt_subject, nrt_subject],
        &ClientSinkSpec::Shared(Arc::new(Mutex::new(sink))),
        Some(SlowConsumerPolicy::ShedNrtFirst),
    );
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, hrt_subject, hrt);
    cluster.subscribe(gw_node, nrt_subject, nrt);

    let report = cluster.run_for(Duration::from_ms(80)).unwrap();
    // The client wakes up only now: the backlog drains in class order.
    recorder.open.store(true, Ordering::SeqCst);
    let gw = gateway.finish();

    let hrt_ingress = report
        .log
        .iter()
        .filter(|r| r.node == gw_node && r.class == ChannelClass::Hrt)
        .count() as u64;
    assert!(hrt_ingress > 0, "no HRT deliveries reached the gateway");
    assert_eq!(
        gw.stats.delivered_hrt, hrt_ingress,
        "every HRT sample must survive the contention"
    );
    assert!(gw.stats.shed_nrt > 0, "the NRT backlog was never shed");
    assert!(
        gw.stats.peak_lane_occupancy <= 12,
        "lane queue exceeded its bound"
    );

    let msgs = recorder.msgs.lock().unwrap();
    let first_non_hrt = msgs
        .iter()
        .position(|m| !matches!(m, ToClient::Event(e) if e.class == ChannelClass::Hrt))
        .expect("nothing but HRT came out");
    assert_eq!(
        first_non_hrt as u64, hrt_ingress,
        "all HRT must drain before any NRT"
    );
    assert!(
        !msgs[first_non_hrt..]
            .iter()
            .any(|m| matches!(m, ToClient::Event(e) if e.class == ChannelClass::Hrt)),
        "HRT appeared after NRT in the drain"
    );
    assert!(
        msgs.iter().any(|m| matches!(m, ToClient::Frag(_))),
        "bulk NRT should be fragment-streamed"
    );
    assert!(
        matches!(
            msgs.last(),
            Some(ToClient::Disconnect {
                reason: Reason::Shutdown
            })
        ),
        "session should end with a shutdown notice"
    );
}

/// Build the standard mixed cluster + gateway used by the determinism
/// and audit tests.
fn mixed_run(sink: Option<SharedTraceSink>) -> (LiveReport, GatewayReport, u8) {
    let hrt_subject = Subject::new(0x1001);
    let srt_subject = Subject::new(0x2002);
    let nrt_subject = Subject::new(0x3003);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    if let Some(s) = &sink {
        cluster.use_sink(s.clone());
    }
    let n0 = cluster.add_node(Box::new(HrtSource {
        subject: hrt_subject,
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let n2 = cluster.add_node(Box::new(NrtPulse {
        subject: nrt_subject,
        every: Duration::from_ms(7),
        bytes: 400,
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(n0, hrt_subject, hrt);
    cluster.publish(n1, srt_subject, srt);
    cluster.publish(n2, nrt_subject, nrt);

    let gateway = Gateway::new(GatewayConfig {
        workers: 4,
        client_queue_cap: 8,
        sink: sink.clone().unwrap_or_else(SharedTraceSink::disabled),
        ..GatewayConfig::default()
    });
    gateway.bind(hrt_subject, &hrt);
    gateway.bind(srt_subject, &srt);
    gateway.bind(nrt_subject, &nrt);
    let subjects = [hrt_subject, srt_subject, nrt_subject];
    for (i, permille) in [1000u16, 650, 300, 1000, 450].iter().enumerate() {
        gateway.add_client(
            &subjects,
            &ClientSinkSpec::sim(42 + i as u64, *permille),
            Some(if i % 2 == 0 {
                SlowConsumerPolicy::ShedNrtFirst
            } else {
                SlowConsumerPolicy::CoalesceToLatest
            }),
        );
    }
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, hrt_subject, hrt);
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.subscribe(gw_node, nrt_subject, nrt);

    let report = cluster.run_for(Duration::from_ms(60)).unwrap();
    let gw = gateway.finish();
    (report, gw, gw_node)
}

/// Same seed ⇒ byte-identical sink digests, lane stats and shard
/// counters across two independent runs (threads and all).
#[test]
fn same_seed_gateway_runs_are_byte_identical() {
    let (ra, ga, _) = mixed_run(None);
    let (rb, gb, _) = mixed_run(None);
    assert_eq!(ra.log, rb.log, "cluster delivery logs diverged");
    assert_eq!(ga.stats, gb.stats, "gateway stats diverged");
    assert_eq!(ga.shards, gb.shards, "shard counters diverged");
    assert_eq!(ga.lanes, gb.lanes, "lane reports (digests) diverged");
    assert!(
        ga.lanes
            .iter()
            .any(|l| l.digest.as_ref().is_some_and(|d| d.frames > 0)),
        "no lane delivered anything"
    );
}

/// The gateway's trace records merge into the cluster's sink and the
/// combined trace still satisfies the T1..T8 auditor.
#[test]
fn merged_gateway_trace_passes_conformance_audit() {
    let sink = SharedTraceSink::enabled();
    let (report, gw, _) = mixed_run(Some(sink.clone()));
    assert!(gw.stats.delivered_msgs > 0);
    assert_eq!(sink.dropped(), 0, "trace ring overflowed");
    let mut trace = sink.events();
    trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
    assert!(
        trace.iter().any(|e| e.kind == "gw_fanout"),
        "gateway fanout records missing from the merged trace"
    );
    assert!(
        trace.iter().any(|e| e.kind == "gw_shard"),
        "gateway shard summaries missing from the merged trace"
    );
    let ctx = AuditContext::from_parts(
        (*report.calendar).clone(),
        report.calendar_start,
        report.channels.clone(),
        report.hrt_periods.clone(),
    );
    let rep = audit(&ctx, &trace);
    assert!(
        rep.passes(),
        "audit failed on the merged trace:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );
}

/// The two remaining policies, end to end: a dead-slow client under
/// `Disconnect` is torn down; under `CoalesceToLatest` it stays
/// connected and its backlog collapses to the newest events.
#[test]
fn slow_consumer_policies_disconnect_vs_coalesce() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(2),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig {
        workers: 2,
        client_queue_cap: 2,
        ..GatewayConfig::default()
    });
    gateway.bind(srt_subject, &srt);
    let brittle = gateway.add_client(
        &[srt_subject],
        &ClientSinkSpec::sim(7, 0), // never accepts
        Some(SlowConsumerPolicy::Disconnect),
    );
    let patient = gateway.add_client(
        &[srt_subject],
        &ClientSinkSpec::sim(8, 0), // never accepts either
        Some(SlowConsumerPolicy::CoalesceToLatest),
    );
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);

    cluster.run_for(Duration::from_ms(40)).unwrap();
    let gw = gateway.finish();

    let lane = |client: u32| {
        gw.lanes
            .iter()
            .find(|l| l.client == client)
            .expect("lane missing")
    };
    assert!(lane(brittle).gone, "Disconnect policy never fired");
    assert!(gw.stats.disconnects >= 1);
    let patient_lane = lane(patient);
    assert!(!patient_lane.gone, "coalescing client must stay connected");
    assert!(
        patient_lane.stats.coalesced > 0,
        "backlog should collapse to the newest same-subject events"
    );
}

/// A real TCP client: handshake, a stream of re-published events, a
/// shutdown notice.
#[test]
fn tcp_client_receives_republished_events() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(srt_subject, &srt);
    let acceptor = Acceptor::tcp(
        gateway.clone(),
        "127.0.0.1:0",
        SlowConsumerPolicy::ShedNrtFirst,
    )
    .unwrap();
    // Connect (and therefore register) before the bus starts talking.
    let mut client = GatewayClient::connect(acceptor.addr(), &[srt_subject]).unwrap();

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.run_for(Duration::from_ms(45)).unwrap();
    let gw = gateway.finish();
    acceptor.stop();

    let mut events = 0;
    let mut shutdown = false;
    while let Some(msg) = client.recv().unwrap() {
        match msg {
            ToClient::Event(e) => {
                assert_eq!(e.class, ChannelClass::Srt);
                assert_eq!(e.uid, srt_subject.uid());
                events += 1;
            }
            ToClient::Disconnect {
                reason: Reason::Shutdown,
            } => {
                shutdown = true;
                break;
            }
            _ => {}
        }
    }
    client.bye().unwrap();
    assert!(events > 0, "no events reached the TCP client");
    assert_eq!(gw.stats.delivered_msgs, events);
    assert!(shutdown, "missing shutdown notice");
}

/// Same transport contract over a Unix-domain socket: handshake,
/// events, shutdown notice, and the socket file is cleaned up.
#[cfg(unix)]
#[test]
fn unix_client_receives_republished_events() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(srt_subject, &srt);
    let path = std::env::temp_dir().join(format!("rtec-gw-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let acceptor =
        Acceptor::unix(gateway.clone(), &path, SlowConsumerPolicy::ShedNrtFirst).unwrap();
    let mut client = GatewayClient::connect_unix(acceptor.path(), &[srt_subject]).unwrap();

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.run_for(Duration::from_ms(30)).unwrap();
    let gw = gateway.finish();
    acceptor.stop();

    let mut events = 0;
    let mut shutdown = false;
    while let Some(msg) = client.recv().unwrap() {
        match msg {
            ToClient::Event(e) => {
                assert_eq!(e.class, ChannelClass::Srt);
                events += 1;
            }
            ToClient::Disconnect {
                reason: Reason::Shutdown,
            } => {
                shutdown = true;
                break;
            }
            _ => {}
        }
    }
    client.bye().unwrap();
    assert!(events > 0, "no events reached the Unix-domain client");
    assert_eq!(gw.stats.delivered_msgs, events);
    assert!(shutdown, "missing shutdown notice");
    assert!(!path.exists(), "socket file must be removed on stop()");
}

/// An unupgraded v1 client — raw version-1 frames, no resume tail, no
/// session — still speaks to the v2 gateway: the handshake completes,
/// events flow, and the shutdown notice arrives. (The v2 `Welcome` is
/// longer than v1's; the v1 decoder tolerates the trailing bytes.)
#[test]
fn legacy_v1_client_speaks_to_a_v2_gateway() {
    use std::io::Write as _;

    fn v1_frame(kind: u8, body: &[u8]) -> Vec<u8> {
        let mut msg = vec![b'R', b'G', 1, kind];
        msg.extend_from_slice(body);
        let mut framed = (msg.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&msg);
        framed
    }

    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(srt_subject, &srt);
    let acceptor = Acceptor::tcp(
        gateway.clone(),
        "127.0.0.1:0",
        SlowConsumerPolicy::ShedNrtFirst,
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(acceptor.addr()).unwrap();
    stream.write_all(&v1_frame(1, &1u16.to_le_bytes())).unwrap();
    stream
        .write_all(&v1_frame(2, &srt_subject.uid().to_le_bytes()))
        .unwrap();
    let welcome = rtec_gateway::wire::read_frame(&mut stream)
        .unwrap()
        .unwrap();
    match rtec_gateway::wire::decode_to_client(&welcome).unwrap() {
        ToClient::Welcome { session, .. } => {
            assert!(session.is_none(), "a v1 Hello must not open a session");
        }
        other => panic!("expected Welcome, got {other:?}"),
    }

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.run_for(Duration::from_ms(30)).unwrap();
    let gw = gateway.finish();
    acceptor.stop();

    let mut events = 0u64;
    let mut shutdown = false;
    while let Some(frame) = rtec_gateway::wire::read_frame(&mut stream).unwrap() {
        match rtec_gateway::wire::decode_to_client(&frame).unwrap() {
            ToClient::Event(e) => {
                assert_eq!(e.uid, srt_subject.uid());
                events += 1;
            }
            ToClient::Disconnect {
                reason: Reason::Shutdown,
            } => {
                shutdown = true;
                break;
            }
            _ => {}
        }
    }
    assert!(events > 0, "no events reached the v1 client");
    assert_eq!(gw.stats.delivered_msgs, events);
    assert!(shutdown, "missing shutdown notice");
}

/// A TCP client severed mid-stream resumes its session and receives
/// exactly the missing HRT suffix: across both connections every HRT
/// sequence number appears exactly once — no duplicates, no holes
/// (§3.2's exactly-once contract carried over a reconnect).
#[test]
fn severed_tcp_client_resumes_with_exact_hrt_replay() {
    use rtec_gateway::wire::ResumeVerdict;

    let hrt_subject = Subject::new(0x1001);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        subject: hrt_subject,
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    cluster.publish(n0, hrt_subject, hrt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(hrt_subject, &hrt);
    let acceptor = Acceptor::tcp(
        gateway.clone(),
        "127.0.0.1:0",
        SlowConsumerPolicy::ShedNrtFirst,
    )
    .unwrap();
    let mut first = GatewayClient::connect(acceptor.addr(), &[hrt_subject]).unwrap();
    assert!(
        matches!(
            first.session,
            Some(rtec_gateway::wire::SessionInfo {
                verdict: ResumeVerdict::Fresh,
                ..
            })
        ),
        "a v2 connect should open a fresh session"
    );

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, hrt_subject, hrt);
    cluster.run_for(Duration::from_ms(45)).unwrap();

    // Read a strict prefix of the delivered events, then sever the
    // connection with the rest still in flight.
    first
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    let mut seqs = Vec::new();
    while seqs.len() < 2 {
        match first.recv() {
            Ok(Some(ToClient::Event(e))) => seqs.push(e.seq),
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(_) => break,
        }
    }
    assert_eq!(seqs.len(), 2, "expected at least two HRT deliveries");
    let resume = first.resume_req().expect("v2 sessions carry a token");
    drop(first); // sever: no Bye

    let mut second =
        GatewayClient::connect_resume(acceptor.addr(), &[hrt_subject], resume).unwrap();
    let verdict = second.session.expect("resumed session").verdict;
    assert_eq!(
        verdict,
        ResumeVerdict::Resumed,
        "replay ring should cover the gap"
    );

    // Drain the replay (bounded by a read timeout), then shut down and
    // collect the shutdown notice.
    second
        .set_read_timeout(Some(std::time::Duration::from_millis(300)))
        .unwrap();
    loop {
        match second.recv() {
            Ok(Some(ToClient::Event(e))) => seqs.push(e.seq),
            Ok(Some(_)) => {}
            _ => break,
        }
    }
    let gw = gateway.finish();
    acceptor.stop();
    second
        .set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .unwrap();
    let mut shutdown = false;
    loop {
        match second.recv() {
            Ok(Some(ToClient::Event(e))) => seqs.push(e.seq),
            Ok(Some(ToClient::Disconnect {
                reason: Reason::Shutdown,
            })) => {
                shutdown = true;
                break;
            }
            Ok(Some(_)) => {}
            _ => break,
        }
    }
    assert!(shutdown, "missing shutdown notice after resume");
    assert!(seqs.len() > 2, "the replay delivered nothing");

    // Exactly-once across the reconnect: every sequence number 0..n
    // appears exactly once, in order.
    let expected: Vec<u32> = (0..seqs.len() as u32).collect();
    assert_eq!(seqs, expected, "HRT replay duplicated or lost events");
    assert_eq!(gw.sessions.resumed, 1);
    assert_eq!(gw.sessions.gapped, 0);
    assert_eq!(gw.sessions.gap_frames, 0);
}

/// `Bye` and an abrupt drop end differently: a clean goodbye spends
/// the session token (a later resume is refused), while a sever parks
/// the session and its token resumes within the TTL.
#[test]
fn bye_spends_the_session_but_a_sever_keeps_it_resumable() {
    use rtec_gateway::wire::ResumeVerdict;

    let subject = Subject::new(0x2002);
    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(subject, &ChannelSpec::Srt(SrtSpec::default()));
    let acceptor = Acceptor::tcp(
        gateway.clone(),
        "127.0.0.1:0",
        SlowConsumerPolicy::ShedNrtFirst,
    )
    .unwrap();

    // Clean exit: Bye + half-close, observed as a drained stream.
    let polite = GatewayClient::connect(acceptor.addr(), &[subject]).unwrap();
    let polite_req = polite.resume_req().unwrap();
    polite.bye().unwrap();
    let after_bye = GatewayClient::connect_resume(acceptor.addr(), &[subject], polite_req).unwrap();
    assert_eq!(
        after_bye.session.unwrap().verdict,
        ResumeVerdict::Expired,
        "a Bye must spend the token; the fallback is a fresh session"
    );

    // Abrupt drop: the reader sees the sever and parks the session.
    let abrupt = GatewayClient::connect(acceptor.addr(), &[subject]).unwrap();
    let abrupt_req = abrupt.resume_req().unwrap();
    drop(abrupt);
    let after_drop =
        GatewayClient::connect_resume(acceptor.addr(), &[subject], abrupt_req).unwrap();
    assert_eq!(
        after_drop.session.unwrap().verdict,
        ResumeVerdict::Resumed,
        "a severed session must stay resumable within the TTL"
    );

    let gw = gateway.finish();
    acceptor.stop();
    assert_eq!(gw.sessions.ended_clean, 1, "one polite goodbye");
    assert_eq!(gw.sessions.refused, 1, "one refused (spent) token");
    assert_eq!(gw.sessions.resumed, 1, "one successful resume");
}
