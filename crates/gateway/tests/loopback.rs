//! End-to-end tests of the gateway against a live loopback cluster:
//! per-class QoS off-bus (HRT beats NRT bulk under client contention),
//! same-seed determinism of the whole egress path, slow-consumer
//! policies, merged trace auditing, and a real TCP client.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::channel::{ChannelClass, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_gateway::wire::{ToClient, REASON_SHUTDOWN};
use rtec_gateway::{
    Acceptor, ClientSink, ClientSinkSpec, Gateway, GatewayClient, GatewayConfig, GatewayReport,
    SinkStatus, SlowConsumerPolicy,
};
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::Pace;
use rtec_sim::{Duration, SharedTraceSink};

/// Publishes a fresh HRT sample every calendar round.
struct HrtSource {
    subject: Subject,
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(self.subject, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(self.subject).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(self.subject, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

/// Publishes an SRT sample every `every`.
struct SrtSource {
    subject: Subject,
    every: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(self.subject, vec![0xAB, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// Publishes a bulk NRT transfer every `every`.
struct NrtPulse {
    subject: Subject,
    every: Duration,
    bytes: usize,
}

impl Behavior for NrtPulse {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _payload: u64) {
        let payload: Vec<u8> = (0..self.bytes).map(|i| i as u8).collect();
        let _ = ctx.publish(Event::new(self.subject, payload));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// A sink that refuses everything until its gate opens, then records
/// every decoded message in arrival order.
#[derive(Clone)]
struct GatedRecorder {
    open: Arc<AtomicBool>,
    msgs: Arc<Mutex<Vec<ToClient>>>,
}

impl GatedRecorder {
    fn new() -> Self {
        GatedRecorder {
            open: Arc::new(AtomicBool::new(false)),
            msgs: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl ClientSink for GatedRecorder {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        if !self.open.load(Ordering::SeqCst) {
            return SinkStatus::Busy;
        }
        let msg = rtec_gateway::wire::decode_to_client(bytes).expect("gateway sent junk");
        self.msgs.lock().unwrap().push(msg);
        SinkStatus::Accepted
    }
}

/// Two subjects guaranteed to land on the same fanout shard.
fn colliding_subjects(shards: usize) -> (Subject, Subject) {
    let a = Subject::new(0x1001);
    let target = a.shard_of(shards);
    let b = (0x3000u64..0x4000)
        .map(Subject::new)
        .find(|s| s.shard_of(shards) == target)
        .expect("no colliding subject in range");
    (a, b)
}

/// HRT samples and NRT bulk contending for one blocked client lane:
/// when the client finally drains, every HRT sample comes out first —
/// released, never shed — while the NRT backlog was shed to the queue
/// bound.
#[test]
fn hrt_beats_nrt_bulk_under_client_contention() {
    let workers = 3;
    let (hrt_subject, nrt_subject) = colliding_subjects(workers);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(HrtSource {
        subject: hrt_subject,
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(NrtPulse {
        subject: nrt_subject,
        every: Duration::from_ms(5),
        bytes: 600,
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(n0, hrt_subject, hrt);
    cluster.publish(n1, nrt_subject, nrt);

    let gateway = Gateway::new(GatewayConfig {
        workers,
        client_queue_cap: 12,
        ..GatewayConfig::default()
    });
    gateway.bind(hrt_subject, &hrt);
    gateway.bind(nrt_subject, &nrt);
    let recorder = GatedRecorder::new();
    let sink: Box<dyn ClientSink> = Box::new(recorder.clone());
    gateway.add_client(
        &[hrt_subject, nrt_subject],
        &ClientSinkSpec::Shared(Arc::new(Mutex::new(sink))),
        Some(SlowConsumerPolicy::ShedNrtFirst),
    );
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, hrt_subject, hrt);
    cluster.subscribe(gw_node, nrt_subject, nrt);

    let report = cluster.run_for(Duration::from_ms(80)).unwrap();
    // The client wakes up only now: the backlog drains in class order.
    recorder.open.store(true, Ordering::SeqCst);
    let gw = gateway.finish();

    let hrt_ingress = report
        .log
        .iter()
        .filter(|r| r.node == gw_node && r.class == ChannelClass::Hrt)
        .count() as u64;
    assert!(hrt_ingress > 0, "no HRT deliveries reached the gateway");
    assert_eq!(
        gw.stats.delivered_hrt, hrt_ingress,
        "every HRT sample must survive the contention"
    );
    assert!(gw.stats.shed_nrt > 0, "the NRT backlog was never shed");
    assert!(
        gw.stats.peak_lane_occupancy <= 12,
        "lane queue exceeded its bound"
    );

    let msgs = recorder.msgs.lock().unwrap();
    let first_non_hrt = msgs
        .iter()
        .position(|m| !matches!(m, ToClient::Event(e) if e.class == ChannelClass::Hrt))
        .expect("nothing but HRT came out");
    assert_eq!(
        first_non_hrt as u64, hrt_ingress,
        "all HRT must drain before any NRT"
    );
    assert!(
        !msgs[first_non_hrt..]
            .iter()
            .any(|m| matches!(m, ToClient::Event(e) if e.class == ChannelClass::Hrt)),
        "HRT appeared after NRT in the drain"
    );
    assert!(
        msgs.iter().any(|m| matches!(m, ToClient::Frag(_))),
        "bulk NRT should be fragment-streamed"
    );
    assert!(
        matches!(
            msgs.last(),
            Some(ToClient::Disconnect {
                reason: REASON_SHUTDOWN
            })
        ),
        "session should end with a shutdown notice"
    );
}

/// Build the standard mixed cluster + gateway used by the determinism
/// and audit tests.
fn mixed_run(sink: Option<SharedTraceSink>) -> (LiveReport, GatewayReport, u8) {
    let hrt_subject = Subject::new(0x1001);
    let srt_subject = Subject::new(0x2002);
    let nrt_subject = Subject::new(0x3003);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    if let Some(s) = &sink {
        cluster.use_sink(s.clone());
    }
    let n0 = cluster.add_node(Box::new(HrtSource {
        subject: hrt_subject,
        counter: 0,
        period: Duration::from_ms(10),
    }));
    let n1 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let n2 = cluster.add_node(Box::new(NrtPulse {
        subject: nrt_subject,
        every: Duration::from_ms(7),
        bytes: 400,
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(n0, hrt_subject, hrt);
    cluster.publish(n1, srt_subject, srt);
    cluster.publish(n2, nrt_subject, nrt);

    let gateway = Gateway::new(GatewayConfig {
        workers: 4,
        client_queue_cap: 8,
        sink: sink.clone().unwrap_or_else(SharedTraceSink::disabled),
        ..GatewayConfig::default()
    });
    gateway.bind(hrt_subject, &hrt);
    gateway.bind(srt_subject, &srt);
    gateway.bind(nrt_subject, &nrt);
    let subjects = [hrt_subject, srt_subject, nrt_subject];
    for (i, permille) in [1000u16, 650, 300, 1000, 450].iter().enumerate() {
        gateway.add_client(
            &subjects,
            &ClientSinkSpec::sim(42 + i as u64, *permille),
            Some(if i % 2 == 0 {
                SlowConsumerPolicy::ShedNrtFirst
            } else {
                SlowConsumerPolicy::CoalesceToLatest
            }),
        );
    }
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, hrt_subject, hrt);
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.subscribe(gw_node, nrt_subject, nrt);

    let report = cluster.run_for(Duration::from_ms(60)).unwrap();
    let gw = gateway.finish();
    (report, gw, gw_node)
}

/// Same seed ⇒ byte-identical sink digests, lane stats and shard
/// counters across two independent runs (threads and all).
#[test]
fn same_seed_gateway_runs_are_byte_identical() {
    let (ra, ga, _) = mixed_run(None);
    let (rb, gb, _) = mixed_run(None);
    assert_eq!(ra.log, rb.log, "cluster delivery logs diverged");
    assert_eq!(ga.stats, gb.stats, "gateway stats diverged");
    assert_eq!(ga.shards, gb.shards, "shard counters diverged");
    assert_eq!(ga.lanes, gb.lanes, "lane reports (digests) diverged");
    assert!(
        ga.lanes
            .iter()
            .any(|l| l.digest.as_ref().is_some_and(|d| d.frames > 0)),
        "no lane delivered anything"
    );
}

/// The gateway's trace records merge into the cluster's sink and the
/// combined trace still satisfies the T1..T8 auditor.
#[test]
fn merged_gateway_trace_passes_conformance_audit() {
    let sink = SharedTraceSink::enabled();
    let (report, gw, _) = mixed_run(Some(sink.clone()));
    assert!(gw.stats.delivered_msgs > 0);
    assert_eq!(sink.dropped(), 0, "trace ring overflowed");
    let mut trace = sink.events();
    trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
    assert!(
        trace.iter().any(|e| e.kind == "gw_fanout"),
        "gateway fanout records missing from the merged trace"
    );
    assert!(
        trace.iter().any(|e| e.kind == "gw_shard"),
        "gateway shard summaries missing from the merged trace"
    );
    let ctx = AuditContext::from_parts(
        (*report.calendar).clone(),
        report.calendar_start,
        report.channels.clone(),
        report.hrt_periods.clone(),
    );
    let rep = audit(&ctx, &trace);
    assert!(
        rep.passes(),
        "audit failed on the merged trace:\n{:#?}",
        rep.errors().collect::<Vec<_>>()
    );
}

/// The two remaining policies, end to end: a dead-slow client under
/// `Disconnect` is torn down; under `CoalesceToLatest` it stays
/// connected and its backlog collapses to the newest events.
#[test]
fn slow_consumer_policies_disconnect_vs_coalesce() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(2),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig {
        workers: 2,
        client_queue_cap: 2,
        ..GatewayConfig::default()
    });
    gateway.bind(srt_subject, &srt);
    let brittle = gateway.add_client(
        &[srt_subject],
        &ClientSinkSpec::sim(7, 0), // never accepts
        Some(SlowConsumerPolicy::Disconnect),
    );
    let patient = gateway.add_client(
        &[srt_subject],
        &ClientSinkSpec::sim(8, 0), // never accepts either
        Some(SlowConsumerPolicy::CoalesceToLatest),
    );
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);

    cluster.run_for(Duration::from_ms(40)).unwrap();
    let gw = gateway.finish();

    let lane = |client: u32| {
        gw.lanes
            .iter()
            .find(|l| l.client == client)
            .expect("lane missing")
    };
    assert!(lane(brittle).gone, "Disconnect policy never fired");
    assert!(gw.stats.disconnects >= 1);
    let patient_lane = lane(patient);
    assert!(!patient_lane.gone, "coalescing client must stay connected");
    assert!(
        patient_lane.stats.coalesced > 0,
        "backlog should collapse to the newest same-subject events"
    );
}

/// A real TCP client: handshake, a stream of re-published events, a
/// shutdown notice.
#[test]
fn tcp_client_receives_republished_events() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(srt_subject, &srt);
    let acceptor = Acceptor::tcp(
        gateway.clone(),
        "127.0.0.1:0",
        SlowConsumerPolicy::ShedNrtFirst,
    )
    .unwrap();
    // Connect (and therefore register) before the bus starts talking.
    let mut client = GatewayClient::connect(acceptor.addr(), &[srt_subject]).unwrap();

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.run_for(Duration::from_ms(45)).unwrap();
    let gw = gateway.finish();
    acceptor.stop();

    let mut events = 0;
    let mut shutdown = false;
    while let Some(msg) = client.recv().unwrap() {
        match msg {
            ToClient::Event(e) => {
                assert_eq!(e.class, ChannelClass::Srt);
                assert_eq!(e.uid, srt_subject.uid());
                events += 1;
            }
            ToClient::Disconnect {
                reason: REASON_SHUTDOWN,
            } => {
                shutdown = true;
                break;
            }
            _ => {}
        }
    }
    client.bye();
    assert!(events > 0, "no events reached the TCP client");
    assert_eq!(gw.stats.delivered_msgs, events);
    assert!(shutdown, "missing shutdown notice");
}

/// Same transport contract over a Unix-domain socket: handshake,
/// events, shutdown notice, and the socket file is cleaned up.
#[cfg(unix)]
#[test]
fn unix_client_receives_republished_events() {
    let srt_subject = Subject::new(0x2002);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let n0 = cluster.add_node(Box::new(SrtSource {
        subject: srt_subject,
        every: Duration::from_ms(3),
        counter: 0,
    }));
    let srt = ChannelSpec::Srt(SrtSpec::default());
    cluster.publish(n0, srt_subject, srt);

    let gateway = Gateway::new(GatewayConfig::default());
    gateway.bind(srt_subject, &srt);
    let path = std::env::temp_dir().join(format!("rtec-gw-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let acceptor =
        Acceptor::unix(gateway.clone(), &path, SlowConsumerPolicy::ShedNrtFirst).unwrap();
    let mut client = GatewayClient::connect_unix(acceptor.path(), &[srt_subject]).unwrap();

    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, srt_subject, srt);
    cluster.run_for(Duration::from_ms(30)).unwrap();
    let gw = gateway.finish();
    acceptor.stop();

    let mut events = 0;
    let mut shutdown = false;
    while let Some(msg) = client.recv().unwrap() {
        match msg {
            ToClient::Event(e) => {
                assert_eq!(e.class, ChannelClass::Srt);
                events += 1;
            }
            ToClient::Disconnect {
                reason: REASON_SHUTDOWN,
            } => {
                shutdown = true;
                break;
            }
            _ => {}
        }
    }
    client.bye();
    assert!(events > 0, "no events reached the Unix-domain client");
    assert_eq!(gw.stats.delivered_msgs, events);
    assert!(shutdown, "missing shutdown notice");
    assert!(!path.exists(), "socket file must be removed on stop()");
}
