//! `rtec-gateway`: an off-bus event-channel gateway for the live
//! cluster.
//!
//! The paper's event channel model ends at the CAN bus: consumers are
//! nodes. Real deployments also have *off-bus* consumers — monitoring
//! dashboards, loggers, bridge processes — that want the bus's events
//! without a seat on the bus. This crate adds that tier: a gateway
//! process joins the cluster as one ordinary node (same transport,
//! same turn protocol, same audited trace) and re-publishes delivered
//! events to many external clients over stream sockets, preserving the
//! per-class semantics of §2 off the bus:
//!
//! * **HRT** events are released to clients at their delivery deadline
//!   (the calendar slot boundary, §3.2), never early and never shed;
//! * **SRT** events carry a re-anchored validity window and are
//!   *dropped when stale* rather than queued past their expiration
//!   (§2.2.2);
//! * **NRT** events are batched, and bulk payloads are fragment-
//!   streamed (§2.2.3), always yielding to the real-time classes.
//!
//! Fanout is sharded by subject across worker threads ([`gateway`]),
//! every client lane has a bounded queue, and a pluggable
//! [`SlowConsumerPolicy`] decides what happens when a client cannot
//! keep up: disconnect it, shed its NRT backlog first, or coalesce
//! queued events to the latest per subject. All worker threads go
//! through the `rtec_live::sync` facade, so the loom model checker and
//! the C1–C6 source lints cover this crate like the rest of the
//! runtime, and same-seed runs with simulated clients are
//! byte-identical ([`SimClientSink`] digests).

pub mod client;
pub mod egress;
pub mod gateway;
pub mod meter;
pub mod net;
pub mod reconnect;
pub mod session;
pub mod wire;

pub use client::{ClientSink, ClientSinkSpec, SimClientSink, SinkDigest, SinkStatus};
pub use egress::{EgressQueue, LaneStats, SlowConsumerPolicy};
pub use gateway::{
    Gateway, GatewayConfig, GatewayReport, GatewayStats, LaneReport, ResumePending, ShardStats,
    WmSource,
};
pub use net::{Acceptor, GatewayClient};
pub use reconnect::{ReconnectPolicy, ReconnectStats, ReconnectingClient, Target};
pub use session::SessionStats;
pub use wire::{ClassWatermarks, Reason, ResumeReq, ResumeVerdict, SessionInfo};
