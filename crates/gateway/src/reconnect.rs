//! Client-side reconnect loop: a [`GatewayClient`] that survives a
//! severed connection.
//!
//! [`ReconnectingClient::recv`] looks like a plain blocking receive,
//! but when the stream dies — EOF, an I/O error, or a read that sits
//! idle past [`ReconnectPolicy::idle_timeout`] (the half-open case:
//! the gateway host vanished without a FIN, so the socket just goes
//! quiet) — it captures the session's resume request (token + current
//! per-class watermarks) and re-dials with bounded exponential backoff
//! and seeded jitter, the same scheme as the UDP transport's send
//! retry: doubling backoff plus up to one backoff interval of jitter
//! from a seeded [`Rng`], so a fleet of clients severed by the same
//! gateway restart does not stampede back in lock-step.
//!
//! What the resumed connection delivers first — replayed frames and
//! `Gap` notices — flows out of `recv` like any other traffic; the
//! caller observes a sever only through [`ReconnectStats`] (and
//! through any `Gap`/`Shed` notices the gateway sends). A `Disconnect`
//! frame is surfaced, not retried: the gateway said goodbye on
//! purpose.

use crate::net::GatewayClient;
use crate::wire::{ClassWatermarks, ResumeReq, ResumeVerdict, SessionInfo, ToClient};
use rtec_core::Subject;
use rtec_live::sync::thread;
use rtec_sim::Rng;
use std::io;
use std::net::SocketAddr;
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration as StdDuration;

/// Where the gateway lives — re-dialed verbatim on every reconnect.
#[derive(Clone, Debug)]
pub enum Target {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Target {
    fn dial(&self, subjects: &[Subject], resume: Option<ResumeReq>) -> io::Result<GatewayClient> {
        match (self, resume) {
            (Target::Tcp(addr), None) => GatewayClient::connect(*addr, subjects),
            (Target::Tcp(addr), Some(req)) => GatewayClient::connect_resume(*addr, subjects, req),
            #[cfg(unix)]
            (Target::Unix(path), None) => GatewayClient::connect_unix(path, subjects),
            #[cfg(unix)]
            (Target::Unix(path), Some(req)) => {
                GatewayClient::connect_unix_resume(path, subjects, req)
            }
        }
    }
}

/// Knobs of the reconnect loop.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Dial attempts per outage before `recv` gives up with an error.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per attempt, plus up
    /// to one backoff interval of seeded jitter.
    pub first_backoff: StdDuration,
    /// A read idle past this counts as a dead (half-open) connection
    /// and triggers a reconnect. Must exceed the longest expected gap
    /// between deliveries — there is no ping in the protocol, so an
    /// idle healthy link and a dead one look identical until then.
    /// `None` trusts the link and blocks forever.
    pub idle_timeout: Option<StdDuration>,
    /// Seed of the jitter stream; give each client its own.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: 7,
            first_backoff: StdDuration::from_millis(20),
            idle_timeout: Some(StdDuration::from_secs(2)),
            seed: 0xCA11_BACC,
        }
    }
}

/// What the reconnect loop has been through.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconnectStats {
    /// Successful re-dials after a sever (the initial connect is not
    /// counted).
    pub reconnects: u64,
    /// Reconnects the gateway answered `Resumed` or `Gap` — the
    /// session survived.
    pub resumed: u64,
    /// `Gap` verdicts among those: resumed, but with explicitly
    /// acknowledged loss.
    pub gap_verdicts: u64,
    /// Reconnects answered `Expired`: the session was gone and the
    /// client restarted fresh (watermarks reset).
    pub expired: u64,
    /// Dial attempts that failed outright.
    pub failures: u64,
}

/// A [`GatewayClient`] wrapped in the reconnect loop.
pub struct ReconnectingClient {
    target: Target,
    subjects: Vec<Subject>,
    policy: ReconnectPolicy,
    rng: Rng,
    inner: Option<GatewayClient>,
    /// The resume request to present on the next dial; refreshed from
    /// the live client at every sever.
    resume: Option<ResumeReq>,
    stats: ReconnectStats,
}

impl ReconnectingClient {
    /// Dial `target` (with the policy's bounded retry) and subscribe
    /// to `subjects`.
    pub fn connect(
        target: Target,
        subjects: &[Subject],
        policy: ReconnectPolicy,
    ) -> io::Result<ReconnectingClient> {
        let mut me = ReconnectingClient {
            target,
            subjects: subjects.to_vec(),
            policy,
            rng: Rng::seed_from_u64(policy.seed ^ 0x0CA1_1BAC_C0FF_5E75),
            inner: None,
            resume: None,
            stats: ReconnectStats::default(),
        };
        me.redial(true)?;
        Ok(me)
    }

    /// Receive the next message, reconnecting through severs. Errors
    /// only once an outage outlives [`ReconnectPolicy::attempts`].
    pub fn recv(&mut self) -> io::Result<ToClient> {
        loop {
            let Some(client) = self.inner.as_mut() else {
                self.redial(false)?;
                continue;
            };
            match client.recv() {
                Ok(Some(msg)) => return Ok(msg),
                // EOF, idle past the timeout (half-open), or a hard
                // error: all mean this stream is done — capture the
                // resume request and go around to re-dial.
                Ok(None) | Err(_) => self.sever(),
            }
        }
    }

    /// Drop the dead stream, keeping what the next dial must present.
    fn sever(&mut self) {
        if let Some(client) = self.inner.take() {
            self.resume = client.resume_req();
        }
    }

    /// Bounded exponential backoff with seeded jitter, mirroring the
    /// UDP transport's send retry.
    fn redial(&mut self, initial: bool) -> io::Result<()> {
        let mut backoff = self.policy.first_backoff;
        let mut last: Option<io::Error> = None;
        for i in 0..self.policy.attempts.max(1) {
            if i > 0 {
                let jitter_ns = self.rng.gen_range_u64(backoff.as_nanos().max(1) as u64);
                thread::sleep(backoff + StdDuration::from_nanos(jitter_ns));
                backoff *= 2;
            }
            match self.target.dial(&self.subjects, self.resume) {
                Ok(client) => {
                    if !initial {
                        self.stats.reconnects += 1;
                    }
                    match client.session.as_ref().map(|s| s.verdict) {
                        Some(ResumeVerdict::Resumed) => self.stats.resumed += 1,
                        Some(ResumeVerdict::Gap) => {
                            self.stats.resumed += 1;
                            self.stats.gap_verdicts += 1;
                        }
                        Some(ResumeVerdict::Expired) => self.stats.expired += 1,
                        _ => {}
                    }
                    client.set_read_timeout(self.policy.idle_timeout)?;
                    self.resume = client.resume_req();
                    self.inner = Some(client);
                    return Ok(());
                }
                Err(e) => {
                    self.stats.failures += 1;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "reconnect attempts exhausted")
        }))
    }

    /// The reconnect history so far.
    pub fn stats(&self) -> ReconnectStats {
        self.stats
    }

    /// The current connection's session (None mid-outage or against a
    /// v1 gateway).
    pub fn session(&self) -> Option<SessionInfo> {
        self.inner.as_ref().and_then(|c| c.session)
    }

    /// Current per-class delivery watermarks (the mid-outage snapshot
    /// if the stream is down).
    pub fn watermarks(&self) -> ClassWatermarks {
        match (&self.inner, &self.resume) {
            (Some(client), _) => client.watermarks(),
            (None, Some(req)) => req.wm,
            (None, None) => ClassWatermarks::default(),
        }
    }

    /// Leave cleanly (see [`GatewayClient::bye`]); a no-op mid-outage —
    /// the session then just expires at the gateway's TTL.
    pub fn bye(mut self) -> io::Result<()> {
        match self.inner.take() {
            Some(client) => client.bye(),
            None => Ok(()),
        }
    }
}
