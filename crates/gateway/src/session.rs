//! Crash-tolerant client sessions: tokens, per-class delivery
//! watermarks, and bounded replay across reconnect.
//!
//! A v2 client's session outlives its connection. The gateway keeps,
//! per session: how many *data* frames of each class it has put on the
//! client's stream (the send-side watermark), and a bounded per-class
//! ring of the most recently sent frames. When the link dies, the
//! client reconnects with its token and its receive-side watermarks
//! ([`crate::wire::ClassWatermarks`]); because the shared stream sink
//! totally orders a session's frames and a stream delivers an in-order
//! prefix, `sent − received` identifies *exactly* the suffix of each
//! class's frame sequence that was in flight when the link died — and
//! the ring holds it, up to its bound.
//!
//! Resume then applies the paper's class rules to that suffix:
//!
//! * **HRT** (§3.2): replayed in full — exactly-once across the
//!   reconnect, mirroring how node rejoin uses the delivery watermark
//!   for at-most-once on the bus. A suffix longer than the ring is a
//!   protocol violation surfaced as a `Gap` notice (audit rule T9
//!   flags it) — never silently dropped.
//! * **SRT** (§2.2.2): frames whose validity window closed while the
//!   client was away are *not* replayed — shed as stale, reported in a
//!   `Gap` notice so the client can reconcile its watermark.
//! * **NRT** (§2.2.3): replayed while the ring lasts; older frames
//!   that fell off the bounded ring become an explicit `Gap` notice.
//!
//! Frames that were queued but never sent need no replay machinery at
//! all: a detached lane keeps its bounded egress queue inside its
//! fanout worker, and reattaching the lane flushes it normally.

use crate::client::{ClientSink, SinkDigest, SinkStatus};
use crate::egress::SlowConsumerPolicy;
use crate::wire::{self, ClassWatermarks, ResumeVerdict, ToClient};
use rtec_core::ChannelClass;
use rtec_live::sync::atomic::{AtomicU64, Ordering};
use rtec_live::sync::{Arc, Mutex};
use std::collections::{HashMap, VecDeque};

/// Cap on stored wall-clock resume durations (bench accounting only).
const RESUME_SAMPLE_CAP: usize = 1 << 12;

/// Ring index for a class.
fn class_idx(class: ChannelClass) -> usize {
    match class {
        ChannelClass::Hrt => 0,
        ChannelClass::Srt => 1,
        ChannelClass::Nrt => 2,
    }
}

const CLASSES: [ChannelClass; 3] = [ChannelClass::Hrt, ChannelClass::Srt, ChannelClass::Nrt];

/// One sent data frame retained for possible replay.
struct RingFrame {
    bytes: Arc<Vec<u8>>,
    /// Subject uid (0 for Batch/Frag frames — only SRT staleness
    /// filtering reads it, and SRT is never batched or fragmented).
    uid: u64,
    /// Bus-time release stamp (validity anchor for SRT).
    release_ns: u64,
}

/// The send-side truth of one session: per-class sent counters and the
/// bounded replay rings. Shared between the session's [`SessionSink`]
/// (which appends) and the resume path (which reads).
pub(crate) struct SessionCore {
    sent: ClassWatermarks,
    rings: [VecDeque<RingFrame>; 3],
    ring_cap: usize,
}

impl SessionCore {
    pub(crate) fn new(ring_cap: usize) -> Self {
        SessionCore {
            sent: ClassWatermarks::default(),
            rings: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            ring_cap: ring_cap.max(1),
        }
    }

    /// Count one accepted data frame and retain it for replay.
    fn record(&mut self, class: ChannelClass, uid: u64, release_ns: u64, bytes: &[u8]) {
        self.sent.bump(class);
        let ring = &mut self.rings[class_idx(class)];
        ring.push_back(RingFrame {
            bytes: Arc::new(bytes.to_vec()),
            uid,
            release_ns,
        });
        if ring.len() > self.ring_cap {
            ring.pop_front();
        }
    }

    /// Frames of each class put on the stream so far.
    #[cfg(test)]
    pub(crate) fn sent(&self) -> ClassWatermarks {
        self.sent
    }

    /// Cheap resume-verdict preview for the handshake reply: `Gap` iff
    /// some class is missing more frames than the ring still holds.
    /// (Stale-SRT skips keep the `Resumed` verdict — they are the
    /// §2.2.2 rule, not loss.)
    pub(crate) fn preview(&self, wm: &ClassWatermarks) -> ResumeVerdict {
        for class in CLASSES {
            let sent = self.sent.of(class);
            let got = wm.of(class);
            if got > sent {
                continue;
            }
            if (sent - got) as usize > self.rings[class_idx(class)].len() {
                return ResumeVerdict::Gap;
            }
        }
        ResumeVerdict::Resumed
    }
}

/// A [`ClientSink`] decorator that keeps the session's send-side
/// accounting. Every lane of a session shares one of these behind the
/// usual shared-sink mutex, so the counters see the exact total order
/// of frames on the stream.
pub(crate) struct SessionSink {
    core: Arc<Mutex<SessionCore>>,
    inner: Box<dyn ClientSink>,
}

impl SessionSink {
    pub(crate) fn new(core: Arc<Mutex<SessionCore>>, inner: Box<dyn ClientSink>) -> Self {
        SessionSink { core, inner }
    }
}

impl ClientSink for SessionSink {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        let status = self.inner.offer(bytes);
        if status == SinkStatus::Accepted {
            if let Some((class, uid, release_ns)) = wire::data_frame_meta(bytes) {
                self.core
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(class, uid, release_ns, bytes);
            }
        }
        status
    }

    fn digest(&self) -> Option<SinkDigest> {
        self.inner.digest()
    }
}

/// What a resume replays, computed from the core under one lock.
pub(crate) struct ReplayPlan {
    /// Encoded `Gap` notices, sent before any replayed frame; each
    /// covers frames the client must account for but will never get.
    pub notices: Vec<(ChannelClass, u32, Vec<u8>)>,
    /// The frames to resend, oldest first, HRT then SRT then NRT.
    pub frames: Vec<Arc<Vec<u8>>>,
    /// The verdict the handshake reports.
    pub verdict: ResumeVerdict,
    /// Frames replayed per class (HRT, SRT, NRT).
    pub replayed: [u64; 3],
    /// Frames lost beyond the ring bound (per-class sum).
    pub gap_frames: u64,
    /// SRT frames skipped because their validity window closed.
    pub stale_skipped: u64,
    /// Replayed payload bytes (bench accounting).
    pub replay_bytes: u64,
    /// The client claimed more frames than were ever sent.
    pub anomaly: bool,
}

/// Decide what a resuming client gets, per the class rules above.
///
/// `stale_of(uid)` is the subject's staleness budget (SRT validity
/// window, bus ns); `now_wm` the gateway's bus-time high-water mark.
pub(crate) fn compute_replay(
    core: &SessionCore,
    stale_of: impl Fn(u64) -> Option<u64>,
    now_wm: u64,
    wm: &ClassWatermarks,
) -> ReplayPlan {
    let mut plan = ReplayPlan {
        notices: Vec::new(),
        frames: Vec::new(),
        verdict: ResumeVerdict::Resumed,
        replayed: [0; 3],
        gap_frames: 0,
        stale_skipped: 0,
        replay_bytes: 0,
        anomaly: false,
    };
    let mut hard_gap = false;
    for class in CLASSES {
        let i = class_idx(class);
        let sent = core.sent.of(class);
        let got = wm.of(class);
        if got > sent {
            plan.anomaly = true;
            continue;
        }
        let missing = (sent - got) as usize;
        let ring = &core.rings[i];
        let avail = missing.min(ring.len());
        let gap = (missing - avail) as u64;
        let mut stale = 0u64;
        let start = ring.len() - avail;
        for f in ring.iter().skip(start) {
            if class == ChannelClass::Srt {
                if let Some(budget) = stale_of(f.uid) {
                    if f.release_ns.saturating_add(budget) <= now_wm {
                        stale += 1;
                        continue;
                    }
                }
            }
            plan.replay_bytes += f.bytes.len() as u64;
            plan.frames.push(Arc::clone(&f.bytes));
            plan.replayed[i] += 1;
        }
        let unaccounted = gap + stale;
        if unaccounted > 0 {
            let count = unaccounted.min(u64::from(u32::MAX)) as u32;
            plan.notices.push((
                class,
                count,
                wire::encode_to_client(&ToClient::Gap { class, count }),
            ));
        }
        // A stale-SRT skip is the §2.2.2 rule working as intended; a
        // ring overrun is real loss and downgrades the verdict.
        hard_gap |= gap > 0;
        plan.gap_frames += gap;
        plan.stale_skipped += stale;
    }
    if hard_gap {
        plan.verdict = ResumeVerdict::Gap;
    }
    plan
}

/// Where a session currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SessionState {
    /// A live connection serves it.
    Attached,
    /// The connection died at bus time `at_wm`; resumable until the
    /// TTL elapses.
    Detached { at_wm: u64 },
    /// Closed for good (clean `Bye`, policy disconnect, or shutdown).
    Ended,
}

/// One client's session bookkeeping.
pub(crate) struct SessionEntry {
    /// Subject uids, for recomputing the session's shard set.
    pub subjects: Vec<u64>,
    pub policy: SlowConsumerPolicy,
    pub core: Arc<Mutex<SessionCore>>,
    /// Bumped on every resume; stale `Deregister`s from a dead
    /// connection's reader carry an older incarnation and are ignored.
    pub incarnation: u32,
    state: SessionState,
}

/// Aggregate session counters, surfaced in the gateway report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions opened.
    pub opened: u64,
    /// Connections detached with the session kept resumable.
    pub detached: u64,
    /// Resumes completed with every missing frame replayed.
    pub resumed: u64,
    /// Resumes completed with a `Gap` verdict (ring overrun).
    pub gapped: u64,
    /// Resume attempts refused: token unknown, session ended, or TTL
    /// elapsed.
    pub refused: u64,
    /// Resumes aborted because the new sink died mid-replay.
    pub aborted: u64,
    /// Sessions closed by a clean `Bye`.
    pub ended_clean: u64,
    /// Sessions ended by a slow-consumer policy or shutdown.
    pub ended_other: u64,
    /// HRT frames replayed across reconnects.
    pub replayed_hrt: u64,
    /// SRT frames replayed across reconnects.
    pub replayed_srt: u64,
    /// NRT frames replayed across reconnects.
    pub replayed_nrt: u64,
    /// Frames covered by `Gap` notices (ring overruns; excludes stale
    /// SRT skips).
    pub gap_frames: u64,
    /// SRT frames shed stale at resume instead of delivered late.
    pub srt_stale_skipped: u64,
    /// Payload bytes replayed.
    pub replay_bytes: u64,
}

/// The gateway's session table. All mutation happens under one mutex;
/// the hot path (per-frame accounting) never touches it — that lives
/// in [`SessionSink`] under the per-session core lock.
pub(crate) struct SessionStore {
    ttl_ns: u64,
    ring_cap: usize,
    now_wm: Arc<AtomicU64>,
    opened: u64,
    by_token: HashMap<u64, u32>,
    by_client: HashMap<u32, SessionEntry>,
    pub stats: SessionStats,
    /// Wall-clock resume durations (replay start → lane reattached),
    /// capped; bench accounting only, never part of determinism.
    pub resume_wall_ns: Vec<u64>,
}

/// splitmix64 — deterministic, collision-free token minting.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SessionStore {
    pub(crate) fn new(ttl_ns: u64, ring_cap: usize, now_wm: Arc<AtomicU64>) -> Self {
        SessionStore {
            ttl_ns,
            ring_cap,
            now_wm,
            opened: 0,
            by_token: HashMap::new(),
            by_client: HashMap::new(),
            stats: SessionStats::default(),
            resume_wall_ns: Vec::new(),
        }
    }

    fn now(&self) -> u64 {
        self.now_wm.load(Ordering::SeqCst)
    }

    /// Open a session for a reserved client id; returns its token
    /// (never 0 — 0 means "no session" on the wire).
    pub(crate) fn open(
        &mut self,
        client: u32,
        subjects: Vec<u64>,
        policy: SlowConsumerPolicy,
    ) -> u64 {
        self.opened += 1;
        self.stats.opened += 1;
        let mut token = splitmix64(0x5E55_10AD ^ self.opened);
        while token == 0 || self.by_token.contains_key(&token) {
            token = splitmix64(token.wrapping_add(1));
        }
        self.by_token.insert(token, client);
        self.by_client.insert(
            client,
            SessionEntry {
                subjects,
                policy,
                core: Arc::new(Mutex::new(SessionCore::new(self.ring_cap))),
                incarnation: 0,
                state: SessionState::Attached,
            },
        );
        token
    }

    /// The session entry for a client, if one exists.
    pub(crate) fn entry(&self, client: u32) -> Option<&SessionEntry> {
        self.by_client.get(&client)
    }

    /// The session's core, for wrapping a sink.
    #[cfg(test)]
    pub(crate) fn core_of(&self, client: u32) -> Option<Arc<Mutex<SessionCore>>> {
        self.by_client.get(&client).map(|e| Arc::clone(&e.core))
    }

    /// A lane's sink died (or its connection reader saw EOF): keep the
    /// session resumable. Returns `true` when the client has a live
    /// session worth parking — `false` tells the worker to tear the
    /// lane down the legacy way.
    pub(crate) fn detach(&mut self, client: u32) -> bool {
        let now = self.now();
        match self.by_client.get_mut(&client) {
            Some(e) if e.state == SessionState::Attached => {
                e.state = SessionState::Detached { at_wm: now };
                self.stats.detached += 1;
                true
            }
            Some(e) => !matches!(e.state, SessionState::Ended),
            None => false,
        }
    }

    /// End a session for good. `clean` distinguishes a `Bye` from a
    /// policy disconnect or shutdown.
    pub(crate) fn end(&mut self, client: u32, clean: bool) {
        if let Some(e) = self.by_client.get_mut(&client) {
            if e.state != SessionState::Ended {
                e.state = SessionState::Ended;
                if clean {
                    self.stats.ended_clean += 1;
                } else {
                    self.stats.ended_other += 1;
                }
            }
        }
    }

    /// Validate a resume attempt and, if it holds, claim the session
    /// for a new incarnation. On refusal the token is spent: an
    /// expired entry is removed, and the caller opens a fresh session.
    pub(crate) fn claim_resume(&mut self, token: u64) -> Result<ResumeClaim, ResumeVerdict> {
        let Some(&client) = self.by_token.get(&token) else {
            self.stats.refused += 1;
            return Err(ResumeVerdict::Expired);
        };
        let now = self.now();
        let ttl = self.ttl_ns;
        let entry = self
            .by_client
            .get_mut(&client)
            .expect("token map points at a live entry");
        let expired = match entry.state {
            SessionState::Ended => true,
            SessionState::Detached { at_wm } => now.saturating_sub(at_wm) > ttl,
            SessionState::Attached => false,
        };
        if expired {
            self.by_token.remove(&token);
            self.by_client.remove(&client);
            self.stats.refused += 1;
            return Err(ResumeVerdict::Expired);
        }
        let entry = self.by_client.get_mut(&client).expect("checked above");
        entry.incarnation += 1;
        entry.state = SessionState::Attached;
        Ok(ResumeClaim {
            client,
            token,
            incarnation: entry.incarnation,
            policy: entry.policy,
            subjects: entry.subjects.clone(),
            core: Arc::clone(&entry.core),
        })
    }

    /// Record a completed (or aborted) resume, with its wall duration.
    pub(crate) fn resume_done(&mut self, client: u32, plan: &ReplayPlan, wall_ns: u64, dead: bool) {
        if dead {
            self.stats.aborted += 1;
            // The new sink died mid-replay: back to detached so the
            // client can try again within the TTL.
            self.detach(client);
        } else {
            match plan.verdict {
                ResumeVerdict::Gap => self.stats.gapped += 1,
                _ => self.stats.resumed += 1,
            }
            self.stats.replayed_hrt += plan.replayed[0];
            self.stats.replayed_srt += plan.replayed[1];
            self.stats.replayed_nrt += plan.replayed[2];
            self.stats.gap_frames += plan.gap_frames;
            self.stats.srt_stale_skipped += plan.stale_skipped;
            self.stats.replay_bytes += plan.replay_bytes;
        }
        if self.resume_wall_ns.len() < RESUME_SAMPLE_CAP {
            self.resume_wall_ns.push(wall_ns);
        }
    }
}

/// A validated resume, claimed for a new incarnation: everything the
/// commit step needs to rebuild the client's lanes.
pub(crate) struct ResumeClaim {
    pub client: u32,
    pub token: u64,
    pub incarnation: u32,
    pub policy: SlowConsumerPolicy,
    pub subjects: Vec<u64>,
    pub core: Arc<Mutex<SessionCore>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::EventMsg;

    fn frame(class: ChannelClass, uid: u64, release_ns: u64, tag: u8) -> Vec<u8> {
        wire::encode_to_client(&ToClient::Event(EventMsg {
            class,
            origin: 0,
            uid,
            seq: 0,
            wire_ns: 0,
            release_ns,
            payload: vec![tag],
        }))
    }

    struct TakeAll;
    impl ClientSink for TakeAll {
        fn offer(&mut self, _bytes: &[u8]) -> SinkStatus {
            SinkStatus::Accepted
        }
    }

    /// The sink counts data frames per class, skips control frames,
    /// and the ring keeps only the newest `cap` frames.
    #[test]
    fn session_sink_counts_and_bounds_the_ring() {
        let core = Arc::new(Mutex::new(SessionCore::new(2)));
        let mut sink = SessionSink::new(Arc::clone(&core), Box::new(TakeAll));
        for i in 0..4u8 {
            sink.offer(&frame(ChannelClass::Hrt, 1, 10, i));
        }
        sink.offer(&frame(ChannelClass::Srt, 2, 20, 9));
        sink.offer(&wire::encode_to_client(&ToClient::Shed {
            class: ChannelClass::Nrt,
            reason: wire::Reason::Slow,
            count: 1,
        }));
        let core = core.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(core.sent().hrt, 4);
        assert_eq!(core.sent().srt, 1);
        assert_eq!(core.sent().nrt, 0, "control frames are not counted");
        assert_eq!(core.rings[0].len(), 2, "ring bounded at cap");
    }

    /// An in-flight suffix within the ring replays exactly; nothing
    /// the client already has is resent (HRT exactly-once, §3.2).
    #[test]
    fn replay_covers_exactly_the_missing_suffix() {
        let mut core = SessionCore::new(8);
        let frames: Vec<_> = (0..5u8)
            .map(|i| frame(ChannelClass::Hrt, 1, 10, i))
            .collect();
        for f in &frames {
            core.record(ChannelClass::Hrt, 1, 10, f);
        }
        // Client saw 3 of 5: replay frames 3 and 4 only.
        let wm = ClassWatermarks {
            hrt: 3,
            ..Default::default()
        };
        let plan = compute_replay(&core, |_| None, 100, &wm);
        assert_eq!(plan.verdict, ResumeVerdict::Resumed);
        assert_eq!(plan.replayed, [2, 0, 0]);
        assert_eq!(plan.gap_frames, 0);
        assert!(plan.notices.is_empty());
        assert_eq!(
            plan.frames.iter().map(|f| f.as_slice()).collect::<Vec<_>>(),
            vec![&frames[3][..], &frames[4][..]]
        );
        // Fully caught up: nothing replays.
        let wm = ClassWatermarks {
            hrt: 5,
            ..Default::default()
        };
        assert!(compute_replay(&core, |_| None, 100, &wm).frames.is_empty());
    }

    /// A suffix longer than the ring yields a `Gap` notice for the
    /// overrun and a `Gap` verdict — loss is reported, never hidden.
    #[test]
    fn ring_overrun_becomes_an_explicit_gap() {
        let mut core = SessionCore::new(2);
        for i in 0..6u8 {
            let f = frame(ChannelClass::Nrt, 3, 0, i);
            core.record(ChannelClass::Nrt, 3, 0, &f);
        }
        let wm = ClassWatermarks::default(); // client got nothing
        let plan = compute_replay(&core, |_| None, 0, &wm);
        assert_eq!(plan.verdict, ResumeVerdict::Gap);
        assert_eq!(plan.replayed, [0, 0, 2]);
        assert_eq!(plan.gap_frames, 4);
        assert_eq!(plan.notices.len(), 1);
        let (class, count, _) = &plan.notices[0];
        assert_eq!((*class, *count), (ChannelClass::Nrt, 4));
    }

    /// SRT frames whose validity closed while the client was away are
    /// skipped (shed, not delivered late — §2.2.2) and covered by a
    /// `Gap` notice; the verdict stays `Resumed`.
    #[test]
    fn stale_srt_is_skipped_not_replayed() {
        let mut core = SessionCore::new(8);
        for (uid, release) in [(7u64, 10u64), (7, 80)] {
            let f = frame(ChannelClass::Srt, uid, release, release as u8);
            core.record(ChannelClass::Srt, uid, release, &f);
        }
        let wm = ClassWatermarks::default();
        // Validity 50 ns; now 100: release 10 is stale, release 80 is not.
        let plan = compute_replay(&core, |_| Some(50), 100, &wm);
        assert_eq!(plan.verdict, ResumeVerdict::Resumed);
        assert_eq!(plan.replayed, [0, 1, 0]);
        assert_eq!(plan.stale_skipped, 1);
        let (class, count, _) = &plan.notices[0];
        assert_eq!((*class, *count), (ChannelClass::Srt, 1));
    }

    /// A client claiming more than was sent is an anomaly, not a
    /// crash: nothing replays for that class.
    #[test]
    fn watermark_ahead_of_sent_is_flagged_not_replayed() {
        let mut core = SessionCore::new(4);
        let f = frame(ChannelClass::Hrt, 1, 0, 0);
        core.record(ChannelClass::Hrt, 1, 0, &f);
        let wm = ClassWatermarks {
            hrt: 5,
            ..Default::default()
        };
        let plan = compute_replay(&core, |_| None, 0, &wm);
        assert!(plan.anomaly);
        assert_eq!(plan.replayed, [0, 0, 0]);
    }

    /// Tokens are never 0, never collide, and the full detach → claim
    /// → expire lifecycle enforces the TTL in bus time.
    #[test]
    fn store_lifecycle_and_ttl() {
        let now = Arc::new(AtomicU64::new(0));
        let mut store = SessionStore::new(100, 8, Arc::clone(&now));
        let t1 = store.open(1, vec![10], SlowConsumerPolicy::ShedNrtFirst);
        let t2 = store.open(2, vec![11], SlowConsumerPolicy::ShedNrtFirst);
        assert_ne!(t1, 0);
        assert_ne!(t2, 0);
        assert_ne!(t1, t2);
        // Unknown token refused.
        assert!(store.claim_resume(t1 ^ t2 ^ 0x55).is_err());
        // Detach at wm 50; within TTL at 100 the claim succeeds and
        // bumps the incarnation.
        now.store(50, Ordering::SeqCst);
        assert!(store.detach(1));
        now.store(100, Ordering::SeqCst);
        let claim = store.claim_resume(t1).expect("within TTL");
        assert_eq!((claim.client, claim.incarnation), (1, 1));
        // Detach again; past the TTL the claim is refused and the
        // entry is gone.
        now.store(120, Ordering::SeqCst);
        assert!(store.detach(1));
        now.store(240, Ordering::SeqCst);
        assert!(matches!(
            store.claim_resume(t1),
            Err(ResumeVerdict::Expired)
        ));
        assert!(store.core_of(1).is_none());
        // Ended sessions never resume.
        store.end(2, true);
        assert!(matches!(
            store.claim_resume(t2),
            Err(ResumeVerdict::Expired)
        ));
        assert_eq!(store.stats.ended_clean, 1);
        assert_eq!(store.stats.refused, 3);
    }
}
