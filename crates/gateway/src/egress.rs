//! Per-lane egress queues: bounded, class-aware, shed-on-pressure.
//!
//! Every (client, shard) pair owns one [`EgressQueue`]. The queue
//! preserves the paper's per-class semantics off-bus:
//!
//! * **HRT** (§3.2): released in order at the delivery deadline
//!   already stamped by the live runtime's deferred delivery; never
//!   shed by backpressure — a client that cannot even take its HRT
//!   traffic is disconnected rather than silently degraded.
//! * **SRT** (§2.2.2): events carry a validity end; anything still
//!   queued past it is dropped (*shed as stale*) instead of being
//!   delivered late, exactly as the bus-side queue drops expired
//!   events rather than transmitting them.
//! * **NRT** (§2.2.3): lowest priority, batched when small and
//!   fragment-streamed when large, and the first thing shed when a
//!   slow consumer fills its bounded queue.
//!
//! The queue never blocks and never allocates past its bound, so a
//! slow TCP client cannot exhaust gateway memory — the explicit
//! [`SlowConsumerPolicy`] decides what gives instead.

use rtec_core::ChannelClass;
use rtec_live::sync::Arc;
use std::collections::VecDeque;

/// Byte budget of one NRT `Batch` message (payloads plus per-entry
/// envelopes): keeps every encoded batch comfortably under the wire
/// codec's frame cap regardless of `batch_max` and the configured
/// fragment threshold.
const MAX_BATCH_BYTES: usize = 32 * 1024;
/// Conservative per-entry envelope inside a `Batch` frame (fixed
/// fields plus the payload length prefix, rounded up).
const BATCH_ENTRY_OVERHEAD: usize = 32;

/// What a lane does when a slow consumer fills its bounded queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlowConsumerPolicy {
    /// Tear the client down: better no subscriber than a stale one.
    Disconnect,
    /// Shed NRT first (oldest first), then SRT; disconnect only when
    /// even the HRT share alone overflows the bound.
    ShedNrtFirst,
    /// Keep only the latest SRT/NRT event per subject (coalescing),
    /// falling back to shed-NRT-first when there is nothing to
    /// coalesce.
    CoalesceToLatest,
}

/// One queued, pre-encoded message awaiting a sink slot.
#[derive(Clone, Debug)]
pub struct EgressEntry {
    /// Timeliness class.
    pub class: ChannelClass,
    /// Subject uid.
    pub uid: u64,
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the frame completed on the wire.
    pub wire_ns: u64,
    /// Bus time the event was released to subscribers (HRT: the slot
    /// deadline).
    pub release_ns: u64,
    /// Validity end in bus time (SRT only).
    pub expiry_ns: Option<u64>,
    /// Wall-clock stamp taken at gateway ingress (latency accounting).
    pub ingress_wall_ns: u64,
    /// Raw payload bytes (for batch re-encoding), shared across lanes.
    pub payload: Arc<Vec<u8>>,
    /// The encoded [`crate::wire::ToClient`] message, shared across
    /// all subscribed lanes.
    pub encoded: Arc<Vec<u8>>,
    /// Entry is one chunk of a fragment-streamed bulk event (never
    /// batched or coalesced).
    pub frag: bool,
}

/// Per-lane counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Messages the sink accepted.
    pub delivered_msgs: u64,
    /// HRT events delivered.
    pub delivered_hrt: u64,
    /// SRT events delivered.
    pub delivered_srt: u64,
    /// NRT events (or fragments) delivered.
    pub delivered_nrt: u64,
    /// NRT entries shed under pressure.
    pub shed_nrt: u64,
    /// SRT entries dropped because their validity window closed.
    pub shed_srt_stale: u64,
    /// SRT entries shed under pressure (validity still open).
    pub shed_srt_cap: u64,
    /// Entries replaced in place by a newer same-subject event.
    pub coalesced: u64,
    /// NRT batch messages sent.
    pub batches: u64,
    /// Fragment messages sent.
    pub fragments: u64,
    /// High-water mark of queued entries.
    pub peak: usize,
    /// Shed counts already covered by a `Shed` notice, as
    /// `(shed_nrt, shed_srt_cap, shed_srt_stale)` — lets the notice
    /// path report deltas even across a detach/resume cycle.
    pub shed_notified: [u64; 3],
}

/// Outcome of [`EgressQueue::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Entry queued (possibly after shedding something older).
    Queued,
    /// Entry (or an older same-subject entry) was dropped; counters
    /// say which class.
    Shed,
    /// The policy demands the client be torn down.
    Disconnect,
}

/// A bounded, class-aware queue for one (client, shard) lane.
#[derive(Debug)]
pub struct EgressQueue {
    cap: usize,
    hrt: VecDeque<EgressEntry>,
    srt: VecDeque<EgressEntry>,
    nrt: VecDeque<EgressEntry>,
    /// Counters, maintained by `push`/`flush`.
    pub stats: LaneStats,
}

/// What `flush` hands the sink in one offer.
pub enum FlushItem<'a> {
    /// One pre-encoded message (HRT, SRT, NRT fragment, or a lone NRT
    /// event).
    Single(&'a EgressEntry),
    /// Several small NRT entries to coalesce into one batch message
    /// (the closure encodes them).
    Batch(&'a [EgressEntry]),
}

/// Sink verdict on one flush offer (mirrors
/// [`crate::client::SinkStatus`] without depending on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushVerdict {
    /// Taken; pop the entries and keep flushing.
    Taken,
    /// Sink is busy; stop flushing this lane, entries stay queued.
    Blocked,
    /// Sink is gone; the caller tears the lane down.
    Lost,
}

impl EgressQueue {
    /// An empty queue bounded at `cap` entries (across all classes).
    pub fn new(cap: usize) -> Self {
        EgressQueue {
            cap: cap.max(1),
            hrt: VecDeque::new(),
            srt: VecDeque::new(),
            nrt: VecDeque::new(),
            stats: LaneStats::default(),
        }
    }

    /// Entries currently queued, all classes.
    pub fn len(&self) -> usize {
        self.hrt.len() + self.srt.len() + self.nrt.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop queued SRT entries whose validity window closed at or
    /// before `watermark` (bus ns). Returns how many were dropped.
    pub fn purge_stale_srt(&mut self, watermark: u64) -> u64 {
        let before = self.srt.len();
        self.srt
            .retain(|e| e.expiry_ns.is_none_or(|x| x > watermark));
        let dropped = (before - self.srt.len()) as u64;
        self.stats.shed_srt_stale += dropped;
        dropped
    }

    /// Queue `entry`, applying `policy` under pressure.
    pub fn push(
        &mut self,
        entry: EgressEntry,
        policy: SlowConsumerPolicy,
        watermark: u64,
    ) -> PushOutcome {
        // An SRT event already past its validity end is never queued —
        // delivering it late would violate §2.2.2 off-bus.
        if entry.class == ChannelClass::Srt && entry.expiry_ns.is_some_and(|x| x <= watermark) {
            self.stats.shed_srt_stale += 1;
            return PushOutcome::Shed;
        }
        let mut shed_something = false;
        while self.len() >= self.cap {
            match policy {
                SlowConsumerPolicy::Disconnect => return PushOutcome::Disconnect,
                SlowConsumerPolicy::ShedNrtFirst => {
                    if !self.shed_one_for(&entry) {
                        return PushOutcome::Disconnect;
                    }
                    shed_something = true;
                }
                SlowConsumerPolicy::CoalesceToLatest => {
                    if self.coalesce(&entry) {
                        self.stats.coalesced += 1;
                        return PushOutcome::Queued;
                    }
                    if !self.shed_one_for(&entry) {
                        return PushOutcome::Disconnect;
                    }
                    shed_something = true;
                }
            }
        }
        match entry.class {
            ChannelClass::Hrt => self.hrt.push_back(entry),
            ChannelClass::Srt => self.srt.push_back(entry),
            ChannelClass::Nrt => self.nrt.push_back(entry),
        }
        self.stats.peak = self.stats.peak.max(self.len());
        if shed_something {
            PushOutcome::Shed
        } else {
            PushOutcome::Queued
        }
    }

    /// Make room by shedding the least valuable queued entry: oldest
    /// NRT, else oldest SRT. Returns `false` when only HRT remains —
    /// HRT is never shed, so a queue full of undeliverable HRT *is*
    /// the disconnect condition.
    fn shed_one_for(&mut self, _incoming: &EgressEntry) -> bool {
        if self.nrt.pop_front().is_some() {
            self.stats.shed_nrt += 1;
            true
        } else if self.srt.pop_front().is_some() {
            self.stats.shed_srt_cap += 1;
            true
        } else {
            false
        }
    }

    /// Replace the oldest queued same-subject, same-class SRT/NRT
    /// entry with `entry`'s content (keeping queue position). HRT and
    /// fragments never coalesce.
    fn coalesce(&mut self, entry: &EgressEntry) -> bool {
        if entry.frag || entry.class == ChannelClass::Hrt {
            return false;
        }
        let q = match entry.class {
            ChannelClass::Srt => &mut self.srt,
            ChannelClass::Nrt => &mut self.nrt,
            ChannelClass::Hrt => unreachable!(),
        };
        if let Some(old) = q.iter_mut().find(|e| e.uid == entry.uid && !e.frag) {
            *old = entry.clone();
            true
        } else {
            false
        }
    }

    /// Drain ready entries into the sink closure, HRT before SRT
    /// before NRT, until the sink blocks, dies, or the queue empties.
    ///
    /// `watermark` is the shard's bus-time high-water mark: HRT
    /// entries release only once it passes their deadline stamp, and
    /// stale SRT entries are purged before anything is offered. Small
    /// consecutive NRT entries (up to `batch_max`, within
    /// [`MAX_BATCH_BYTES`]) are offered as one [`FlushItem::Batch`].
    /// Returns `false` when the sink is gone.
    pub fn flush<F>(&mut self, watermark: u64, batch_max: usize, mut offer: F) -> bool
    where
        F: FnMut(FlushItem<'_>) -> FlushVerdict,
    {
        self.purge_stale_srt(watermark);
        loop {
            // HRT: strictly in order, gated on the release stamp.
            if let Some(front) = self.hrt.front() {
                if front.release_ns <= watermark {
                    match offer(FlushItem::Single(front)) {
                        FlushVerdict::Taken => {
                            self.hrt.pop_front();
                            self.stats.delivered_msgs += 1;
                            self.stats.delivered_hrt += 1;
                            continue;
                        }
                        FlushVerdict::Blocked => return true,
                        FlushVerdict::Lost => return false,
                    }
                }
            }
            if let Some(front) = self.srt.front() {
                match offer(FlushItem::Single(front)) {
                    FlushVerdict::Taken => {
                        self.srt.pop_front();
                        self.stats.delivered_msgs += 1;
                        self.stats.delivered_srt += 1;
                        continue;
                    }
                    FlushVerdict::Blocked => return true,
                    FlushVerdict::Lost => return false,
                }
            }
            if !self.nrt.is_empty() {
                // A fragment goes alone; small events batch up, but
                // never past the byte budget — an unbounded batch
                // could encode to a frame the wire cap rejects.
                let mut budget = MAX_BATCH_BYTES;
                let run = self
                    .nrt
                    .make_contiguous()
                    .iter()
                    .take_while(|e| {
                        let cost = e.payload.len() + BATCH_ENTRY_OVERHEAD;
                        !e.frag && cost <= budget && {
                            budget -= cost;
                            true
                        }
                    })
                    .count()
                    .min(batch_max);
                let (item, n) = if run <= 1 {
                    (FlushItem::Single(&self.nrt[0]), 1)
                } else {
                    (FlushItem::Batch(&self.nrt.as_slices().0[..run]), run)
                };
                let frags = u64::from(self.nrt[0].frag);
                match offer(item) {
                    FlushVerdict::Taken => {
                        self.nrt.drain(..n);
                        self.stats.delivered_msgs += 1;
                        self.stats.delivered_nrt += n as u64;
                        self.stats.fragments += frags;
                        if n > 1 {
                            self.stats.batches += 1;
                        }
                        continue;
                    }
                    FlushVerdict::Blocked => return true,
                    FlushVerdict::Lost => return false,
                }
            }
            return true;
        }
    }

    /// Entries still queued (used at shutdown for the undelivered
    /// count).
    pub fn drain_remaining(&mut self) -> usize {
        let n = self.len();
        self.hrt.clear();
        self.srt.clear();
        self.nrt.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        class: ChannelClass,
        uid: u64,
        release_ns: u64,
        expiry_ns: Option<u64>,
    ) -> EgressEntry {
        EgressEntry {
            class,
            uid,
            origin: 0,
            seq: 0,
            wire_ns: 0,
            release_ns,
            expiry_ns,
            ingress_wall_ns: 0,
            payload: Arc::new(vec![uid as u8]),
            encoded: Arc::new(vec![class as u8, uid as u8]),
            frag: false,
        }
    }

    fn drain_all(q: &mut EgressQueue, watermark: u64) -> Vec<(ChannelClass, u64)> {
        let mut seen = Vec::new();
        q.flush(watermark, 8, |item| {
            match item {
                FlushItem::Single(e) => seen.push((e.class, e.uid)),
                FlushItem::Batch(es) => seen.extend(es.iter().map(|e| (e.class, e.uid))),
            }
            FlushVerdict::Taken
        });
        seen
    }

    #[test]
    fn flush_orders_hrt_srt_nrt() {
        let mut q = EgressQueue::new(16);
        q.push(
            entry(ChannelClass::Nrt, 3, 0, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        q.push(
            entry(ChannelClass::Srt, 2, 0, Some(100)),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        q.push(
            entry(ChannelClass::Hrt, 1, 5, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        assert_eq!(
            drain_all(&mut q, 10),
            vec![
                (ChannelClass::Hrt, 1),
                (ChannelClass::Srt, 2),
                (ChannelClass::Nrt, 3)
            ]
        );
    }

    #[test]
    fn hrt_waits_for_its_release_stamp() {
        let mut q = EgressQueue::new(16);
        q.push(
            entry(ChannelClass::Hrt, 1, 50, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        q.push(
            entry(ChannelClass::Srt, 2, 0, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        // Before the deadline the SRT event goes out, the HRT one holds.
        assert_eq!(drain_all(&mut q, 10), vec![(ChannelClass::Srt, 2)]);
        assert_eq!(drain_all(&mut q, 50), vec![(ChannelClass::Hrt, 1)]);
    }

    #[test]
    fn stale_srt_is_dropped_not_delivered() {
        let mut q = EgressQueue::new(16);
        q.push(
            entry(ChannelClass::Srt, 1, 0, Some(20)),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        // Watermark passes the validity end before the sink drains.
        assert_eq!(drain_all(&mut q, 30), vec![]);
        assert_eq!(q.stats.shed_srt_stale, 1);
        // Pushing an already-stale event drops it immediately.
        let out = q.push(
            entry(ChannelClass::Srt, 2, 0, Some(20)),
            SlowConsumerPolicy::ShedNrtFirst,
            30,
        );
        assert_eq!(out, PushOutcome::Shed);
        assert_eq!(q.stats.shed_srt_stale, 2);
    }

    #[test]
    fn shed_nrt_first_prefers_nrt_then_srt_never_hrt() {
        let mut q = EgressQueue::new(2);
        q.push(
            entry(ChannelClass::Nrt, 1, 0, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        q.push(
            entry(ChannelClass::Srt, 2, 0, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        // Full: pushing HRT sheds the NRT entry first.
        assert_eq!(
            q.push(
                entry(ChannelClass::Hrt, 3, 0, None),
                SlowConsumerPolicy::ShedNrtFirst,
                0
            ),
            PushOutcome::Shed
        );
        assert_eq!(q.stats.shed_nrt, 1);
        // Full again: next push sheds the SRT entry.
        assert_eq!(
            q.push(
                entry(ChannelClass::Hrt, 4, 0, None),
                SlowConsumerPolicy::ShedNrtFirst,
                0
            ),
            PushOutcome::Shed
        );
        assert_eq!(q.stats.shed_srt_cap, 1);
        // Only HRT left: the lane must disconnect instead of shedding.
        assert_eq!(
            q.push(
                entry(ChannelClass::Hrt, 5, 0, None),
                SlowConsumerPolicy::ShedNrtFirst,
                0
            ),
            PushOutcome::Disconnect
        );
    }

    #[test]
    fn disconnect_policy_disconnects_on_pressure() {
        let mut q = EgressQueue::new(1);
        q.push(
            entry(ChannelClass::Nrt, 1, 0, None),
            SlowConsumerPolicy::Disconnect,
            0,
        );
        assert_eq!(
            q.push(
                entry(ChannelClass::Nrt, 2, 0, None),
                SlowConsumerPolicy::Disconnect,
                0
            ),
            PushOutcome::Disconnect
        );
    }

    #[test]
    fn coalesce_replaces_same_subject_in_place() {
        let mut q = EgressQueue::new(2);
        q.push(
            entry(ChannelClass::Nrt, 7, 0, None),
            SlowConsumerPolicy::CoalesceToLatest,
            0,
        );
        q.push(
            entry(ChannelClass::Srt, 8, 0, None),
            SlowConsumerPolicy::CoalesceToLatest,
            0,
        );
        // Full; a newer event for subject 7 replaces the queued one.
        let mut newer = entry(ChannelClass::Nrt, 7, 0, None);
        newer.encoded = Arc::new(vec![0xff]);
        assert_eq!(
            q.push(newer, SlowConsumerPolicy::CoalesceToLatest, 0),
            PushOutcome::Queued
        );
        assert_eq!(q.stats.coalesced, 1);
        assert_eq!(q.len(), 2);
        let seen = drain_all(&mut q, 10);
        assert_eq!(seen, vec![(ChannelClass::Srt, 8), (ChannelClass::Nrt, 7)]);
        // No same-subject entry to merge into → falls back to shedding.
        q.push(
            entry(ChannelClass::Nrt, 1, 0, None),
            SlowConsumerPolicy::CoalesceToLatest,
            0,
        );
        q.push(
            entry(ChannelClass::Srt, 2, 0, None),
            SlowConsumerPolicy::CoalesceToLatest,
            0,
        );
        assert_eq!(
            q.push(
                entry(ChannelClass::Nrt, 3, 0, None),
                SlowConsumerPolicy::CoalesceToLatest,
                0
            ),
            PushOutcome::Shed
        );
        assert_eq!(q.stats.shed_nrt, 1);
    }

    #[test]
    fn small_nrt_entries_batch_fragments_go_alone() {
        let mut q = EgressQueue::new(16);
        for uid in 1..=3 {
            q.push(
                entry(ChannelClass::Nrt, uid, 0, None),
                SlowConsumerPolicy::ShedNrtFirst,
                0,
            );
        }
        let mut frag = entry(ChannelClass::Nrt, 9, 0, None);
        frag.frag = true;
        q.push(frag, SlowConsumerPolicy::ShedNrtFirst, 0);
        let mut offers = Vec::new();
        q.flush(10, 8, |item| {
            offers.push(match item {
                FlushItem::Single(e) => vec![e.uid],
                FlushItem::Batch(es) => es.iter().map(|e| e.uid).collect(),
            });
            FlushVerdict::Taken
        });
        assert_eq!(offers, vec![vec![1, 2, 3], vec![9]]);
        assert_eq!(q.stats.batches, 1);
        assert_eq!(q.stats.fragments, 1);
    }

    /// Entries whose payloads would blow the batch byte budget go out
    /// as singles — a batch must never encode to a frame the wire cap
    /// rejects.
    #[test]
    fn batch_respects_byte_budget() {
        let mut q = EgressQueue::new(16);
        for uid in 1..=2 {
            let mut e = entry(ChannelClass::Nrt, uid, 0, None);
            e.payload = Arc::new(vec![0u8; MAX_BATCH_BYTES]);
            q.push(e, SlowConsumerPolicy::ShedNrtFirst, 0);
        }
        let mut offers = Vec::new();
        q.flush(10, 8, |item| {
            offers.push(match item {
                FlushItem::Single(e) => vec![e.uid],
                FlushItem::Batch(es) => es.iter().map(|e| e.uid).collect(),
            });
            FlushVerdict::Taken
        });
        assert_eq!(offers, vec![vec![1], vec![2]]);
        assert_eq!(q.stats.batches, 0);
        assert_eq!(q.stats.fragments, 0);
    }

    #[test]
    fn blocked_sink_keeps_entries_queued() {
        let mut q = EgressQueue::new(16);
        q.push(
            entry(ChannelClass::Srt, 1, 0, None),
            SlowConsumerPolicy::ShedNrtFirst,
            0,
        );
        q.flush(10, 8, |_| FlushVerdict::Blocked);
        assert_eq!(q.len(), 1);
        assert_eq!(q.stats.delivered_msgs, 0);
    }
}
