//! Socket transport: real clients over TCP or Unix-domain streams.
//!
//! The acceptor thread owns the listener; each accepted connection is
//! handshaken inline (read `Hello`, then that many `Subscribe` frames,
//! under a read timeout so a stalled half-open connection cannot wedge
//! accepting), registered with the gateway behind a [`ClientSinkSpec::
//! Shared`] stream sink, and answered with `Welcome`. Fanout workers
//! then write frames straight into the stream; a write timeout maps to
//! [`SinkStatus::Busy`] so a stalled client builds backpressure into
//! its bounded lane queue — where the shedding policies, not the
//! socket, decide what gives.
//!
//! Shutdown never sleeps or polls: `stop()` raises a flag and then
//! *connects* to the listener once, so the blocking `accept()` returns
//! and the thread observes the flag (C4 keeps `thread::sleep` out of
//! runtime code).

use crate::client::{ClientSink, ClientSinkSpec, SinkStatus};
use crate::egress::SlowConsumerPolicy;
use crate::gateway::Gateway;
use crate::wire::{self, ToClient, ToGateway};
use rtec_core::Subject;
use rtec_live::sync::atomic::{AtomicBool, Ordering};
use rtec_live::sync::{thread, Arc, Mutex};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration as StdDuration;

/// Read timeout for the connection handshake.
const HANDSHAKE_TIMEOUT: StdDuration = StdDuration::from_secs(2);
/// Write timeout after which a client counts as busy (not gone).
const WRITE_TIMEOUT: StdDuration = StdDuration::from_millis(20);

/// A [`ClientSink`] writing length-prefixed frames to a stream.
///
/// `Busy` on timeout/would-block, `Gone` on any other I/O error.
struct StreamSink<W: Write + Send> {
    stream: W,
}

impl<W: Write + Send> ClientSink for StreamSink<W> {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        match wire::write_frame(&mut self.stream, bytes) {
            Ok(()) => SinkStatus::Accepted,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                SinkStatus::Busy
            }
            Err(_) => SinkStatus::Gone,
        }
    }
}

/// The two stream families the acceptor speaks, abstracted over the
/// handful of non-`Read`/`Write` calls `admit` needs.
trait Stream: io::Read + Write + Send + Sized + 'static {
    /// Apply the per-connection timeouts (and TCP_NODELAY where it
    /// exists).
    fn configure(&self) -> io::Result<()>;
    /// A second handle onto the same connection (reader/writer split).
    fn try_clone_stream(&self) -> io::Result<Self>;
}

impl Stream for TcpStream {
    fn configure(&self) -> io::Result<()> {
        self.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        self.set_write_timeout(Some(WRITE_TIMEOUT))?;
        self.set_nodelay(true)
    }
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

#[cfg(unix)]
impl Stream for UnixStream {
    fn configure(&self) -> io::Result<()> {
        self.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        self.set_write_timeout(Some(WRITE_TIMEOUT))
    }
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

/// Where a running acceptor listens — also how `stop()` wakes its
/// blocking `accept()`.
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running socket acceptor bound to a gateway.
pub struct Acceptor {
    stop: Arc<AtomicBool>,
    endpoint: Endpoint,
    handle: Option<thread::JoinHandle<()>>,
}

impl Acceptor {
    /// Accept TCP clients on `addr` (e.g. `"127.0.0.1:0"`) and register
    /// each with `gateway` under `policy`.
    pub fn tcp(gateway: Gateway, addr: &str, policy: SlowConsumerPolicy) -> io::Result<Acceptor> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (stop, handle) = Self::accept_loop(gateway, policy, move || listener.accept());
        Ok(Acceptor {
            stop,
            endpoint: Endpoint::Tcp(local),
            handle: Some(handle),
        })
    }

    /// Accept Unix-domain clients on the socket file `path` (created
    /// here, removed by `stop()`) and register each with `gateway`
    /// under `policy`.
    #[cfg(unix)]
    pub fn unix(
        gateway: Gateway,
        path: impl Into<PathBuf>,
        policy: SlowConsumerPolicy,
    ) -> io::Result<Acceptor> {
        let path = path.into();
        let listener = UnixListener::bind(&path)?;
        let (stop, handle) = Self::accept_loop(gateway, policy, move || listener.accept());
        Ok(Acceptor {
            stop,
            endpoint: Endpoint::Unix(path),
            handle: Some(handle),
        })
    }

    /// Spawn the named acceptor thread shared by both stream families.
    fn accept_loop<S, A, F>(
        gateway: Gateway,
        policy: SlowConsumerPolicy,
        mut accept: F,
    ) -> (Arc<AtomicBool>, thread::JoinHandle<()>)
    where
        S: Stream,
        F: FnMut() -> io::Result<(S, A)> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("gw-acceptor".to_string())
            .spawn(move || loop {
                let conn = accept();
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok((stream, _)) = conn else { continue };
                let _ = admit(&gateway, stream, policy);
            })
            .expect("spawn gateway acceptor");
        (stop, handle)
    }

    /// The bound local TCP address (useful with port 0). Panics for a
    /// Unix-domain acceptor — use [`Acceptor::path`] there.
    pub fn addr(&self) -> SocketAddr {
        match &self.endpoint {
            Endpoint::Tcp(addr) => *addr,
            #[cfg(unix)]
            Endpoint::Unix(_) => panic!("addr() on a Unix-domain acceptor; use path()"),
        }
    }

    /// The socket file of a Unix-domain acceptor. Panics for TCP.
    #[cfg(unix)]
    pub fn path(&self) -> &std::path::Path {
        match &self.endpoint {
            Endpoint::Unix(path) => path,
            Endpoint::Tcp(_) => panic!("path() on a TCP acceptor; use addr()"),
        }
    }

    /// Stop accepting: raise the flag, wake the blocking `accept()`
    /// with a throwaway self-connection, join the thread. A Unix
    /// acceptor's socket file is removed.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Handshake one accepted connection and register it as a client.
fn admit<S: Stream>(gateway: &Gateway, stream: S, policy: SlowConsumerPolicy) -> io::Result<()> {
    stream.configure()?;
    let mut reader = stream.try_clone_stream()?;
    let subs = match next_msg(&mut reader)? {
        Some(ToGateway::Hello { subs }) => subs,
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected Hello")),
    };
    let mut subjects = Vec::with_capacity(usize::from(subs));
    for _ in 0..subs {
        match next_msg(&mut reader)? {
            Some(ToGateway::Subscribe { uid }) => subjects.push(Subject::new(uid)),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected Subscribe",
                ))
            }
        }
    }
    let sink: Box<dyn ClientSink> = Box::new(StreamSink {
        stream: stream.try_clone_stream()?,
    });
    let spec = ClientSinkSpec::Shared(Arc::new(Mutex::new(sink)));
    let client = gateway.add_client(&subjects, &spec, Some(policy));
    let mut out = stream;
    wire::write_frame(
        &mut out,
        &wire::encode_to_client(&ToClient::Welcome { client, now_ns: 0 }),
    )?;
    Ok(())
}

/// Read and decode the next client → gateway frame.
fn next_msg<R: io::Read>(r: &mut R) -> io::Result<Option<ToGateway>> {
    let Some(frame) = wire::read_frame(r)? else {
        return Ok(None);
    };
    wire::decode_to_gateway(&frame)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
}

/// The client side of either stream family, as one trait object.
trait ClientStream: io::Read + Write + Send {}
impl<T: io::Read + Write + Send> ClientStream for T {}

/// A minimal blocking client for tests and demos.
pub struct GatewayClient {
    stream: Box<dyn ClientStream>,
    /// Client id assigned by the gateway's `Welcome`.
    pub client: u32,
}

impl GatewayClient {
    /// Connect over TCP, subscribe to `subjects`, await `Welcome`.
    pub fn connect(addr: SocketAddr, subjects: &[Subject]) -> io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Box::new(stream), subjects)
    }

    /// Connect over a Unix-domain socket file, subscribe to
    /// `subjects`, await `Welcome`.
    #[cfg(unix)]
    pub fn connect_unix(
        path: impl AsRef<std::path::Path>,
        subjects: &[Subject],
    ) -> io::Result<GatewayClient> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Box::new(stream), subjects)
    }

    fn handshake(
        mut stream: Box<dyn ClientStream>,
        subjects: &[Subject],
    ) -> io::Result<GatewayClient> {
        wire::write_frame(
            &mut stream,
            &wire::encode_to_gateway(&ToGateway::Hello {
                subs: subjects.len() as u16,
            }),
        )?;
        for s in subjects {
            wire::write_frame(
                &mut stream,
                &wire::encode_to_gateway(&ToGateway::Subscribe { uid: s.uid() }),
            )?;
        }
        let frame = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no Welcome"))?;
        let client = match wire::decode_to_client(&frame) {
            Ok(ToClient::Welcome { client, .. }) => client,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Welcome, got {other:?}"),
                ))
            }
        };
        Ok(GatewayClient { stream, client })
    }

    /// Receive the next gateway → client message (`None` on clean EOF).
    pub fn recv(&mut self) -> io::Result<Option<ToClient>> {
        let Some(frame) = wire::read_frame(&mut self.stream)? else {
            return Ok(None);
        };
        wire::decode_to_client(&frame)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }

    /// Tell the gateway we are leaving (best-effort).
    pub fn bye(&mut self) {
        let _ = wire::write_frame(&mut self.stream, &wire::encode_to_gateway(&ToGateway::Bye));
    }
}
