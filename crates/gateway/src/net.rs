//! Socket transport: real clients over TCP or Unix-domain streams.
//!
//! The acceptor thread owns the listener; each accepted connection is
//! handshaken inline (read `Hello`, then that many `Subscribe` frames,
//! under a read timeout so a stalled half-open connection cannot wedge
//! accepting), answered with `Welcome`, and only then registered with
//! the gateway behind a shared stream sink — so `Welcome` is always
//! the first frame on the wire. Fanout workers then write frames
//! through the shared sink; a write timeout before any byte of a frame
//! goes out maps to [`SinkStatus::Busy`] so a stalled client builds
//! backpressure into its bounded lane queue — where the shedding
//! policies, not the socket, decide what gives — while a frame caught
//! mid-write is buffered and finished on the next offer, keeping the
//! client's length-prefixed framing intact.
//!
//! A v2 `Hello` may carry a session token and per-class delivery
//! watermarks: the gateway then *resumes* the session — `Welcome`
//! answers with the verdict, and the missing frame suffix replays
//! right behind it (see `session.rs`). A v1 `Hello` gets the legacy
//! sessionless path. Each admitted connection also gets a reader
//! thread watching for `Bye` (clean close: lanes flush and the session
//! token is spent) versus EOF or an error (sever: lanes park and the
//! session stays resumable for the TTL).
//!
//! Shutdown never sleeps or polls: `stop()` raises a flag and then
//! *connects* to the listener once, so the blocking `accept()` returns
//! and the thread observes the flag (C4 keeps `thread::sleep` out of
//! runtime code).

use crate::client::{ClientSink, ClientSinkSpec, SinkStatus};
use crate::egress::SlowConsumerPolicy;
use crate::gateway::Gateway;
use crate::wire::{
    self, ClassWatermarks, ResumeReq, ResumeVerdict, SessionInfo, ToClient, ToGateway,
};
use rtec_core::{ChannelClass, Subject};
use rtec_live::sync::atomic::{AtomicBool, Ordering};
use rtec_live::sync::{thread, Arc, Mutex};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration as StdDuration;

/// Read timeout for the connection handshake.
const HANDSHAKE_TIMEOUT: StdDuration = StdDuration::from_secs(2);
/// Write timeout after which a client counts as busy (not gone).
const WRITE_TIMEOUT: StdDuration = StdDuration::from_millis(20);
/// How long a departing client waits for the gateway to close the
/// stream after its `Bye`.
const BYE_DRAIN_TIMEOUT: StdDuration = StdDuration::from_secs(1);
/// Most in-flight frames a departing client will drain after `Bye`.
const BYE_DRAIN_FRAMES: usize = 1024;

/// A [`ClientSink`] writing length-prefixed frames to a stream.
///
/// The write timeout can fire after *part* of a frame (length prefix
/// included) is already on the wire. Re-sending the frame from byte 0
/// on the lane's retry would leave the duplicated prefix in the stream
/// and permanently desync the client's framing — exactly under the
/// slow-consumer load the backpressure design targets. So the sink
/// buffers the frame it is writing and tracks an offset: a frame that
/// started going out is *committed* (reported `Accepted`, its tail
/// drains ahead of any later frame), and `Busy` is only ever reported
/// while zero bytes of the offered frame have been attempted. The
/// buffer holds at most one frame (≤ [`wire::MAX_FRAME_LEN`] + 4
/// bytes), so per-client memory stays bounded.
struct StreamSink<W: Write + Send> {
    stream: W,
    /// The frame being written (length prefix + body); empty when no
    /// write is in flight.
    pending: Vec<u8>,
    /// Bytes of `pending` already on the wire.
    written: usize,
}

/// Outcome of one attempt to drain [`StreamSink::pending`].
enum Drained {
    /// Everything pending is on the wire.
    Done,
    /// Timeout/would-block with bytes still pending.
    Blocked,
    /// Hard I/O error: the stream is unusable.
    Dead,
}

impl<W: Write + Send> StreamSink<W> {
    fn new(stream: W) -> Self {
        StreamSink {
            stream,
            pending: Vec::new(),
            written: 0,
        }
    }

    /// Push `pending[written..]` at the stream until it is gone, the
    /// socket blocks, or the stream dies.
    fn drain(&mut self) -> Drained {
        while self.written < self.pending.len() {
            match self.stream.write(&self.pending[self.written..]) {
                Ok(0) => return Drained::Dead,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Drained::Blocked
                }
                Err(_) => return Drained::Dead,
            }
        }
        self.pending.clear();
        self.written = 0;
        Drained::Done
    }
}

impl<W: Write + Send> ClientSink for StreamSink<W> {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        // Finish the previously committed frame first; until its tail
        // is out, nothing of the new frame may touch the stream.
        match self.drain() {
            Drained::Done => {}
            Drained::Blocked => return SinkStatus::Busy,
            Drained::Dead => return SinkStatus::Gone,
        }
        if bytes.len() > wire::MAX_FRAME_LEN {
            return SinkStatus::Gone;
        }
        self.pending.reserve(4 + bytes.len());
        self.pending
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(bytes);
        match self.drain() {
            Drained::Done => SinkStatus::Accepted,
            Drained::Blocked if self.written == 0 => {
                // Not a single byte went out: safe to let the lane
                // keep (or shed) the entry and retry it verbatim.
                self.pending.clear();
                SinkStatus::Busy
            }
            // Partially written: the frame is committed — its tail
            // goes out ahead of any future frame — so the lane must
            // treat it as delivered, not retry it.
            Drained::Blocked => SinkStatus::Accepted,
            Drained::Dead => SinkStatus::Gone,
        }
    }
}

/// The two stream families the acceptor speaks, abstracted over the
/// handful of non-`Read`/`Write` calls `admit` needs.
trait Stream: io::Read + Write + Send + Sized + 'static {
    /// Apply the per-connection timeouts (and TCP_NODELAY where it
    /// exists).
    fn configure(&self) -> io::Result<()>;
    /// A second handle onto the same connection (reader/writer split).
    fn try_clone_stream(&self) -> io::Result<Self>;
    /// Lift the handshake read timeout: the post-handshake reader
    /// blocks until the client sends `Bye` or the connection dies.
    fn clear_read_timeout(&self) -> io::Result<()>;
}

impl Stream for TcpStream {
    fn configure(&self) -> io::Result<()> {
        self.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        self.set_write_timeout(Some(WRITE_TIMEOUT))?;
        self.set_nodelay(true)
    }
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn clear_read_timeout(&self) -> io::Result<()> {
        self.set_read_timeout(None)
    }
}

#[cfg(unix)]
impl Stream for UnixStream {
    fn configure(&self) -> io::Result<()> {
        self.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        self.set_write_timeout(Some(WRITE_TIMEOUT))
    }
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn clear_read_timeout(&self) -> io::Result<()> {
        self.set_read_timeout(None)
    }
}

/// Where a running acceptor listens — also how `stop()` wakes its
/// blocking `accept()`.
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// A running socket acceptor bound to a gateway.
pub struct Acceptor {
    stop: Arc<AtomicBool>,
    endpoint: Endpoint,
    handle: Option<thread::JoinHandle<()>>,
}

impl Acceptor {
    /// Accept TCP clients on `addr` (e.g. `"127.0.0.1:0"`) and register
    /// each with `gateway` under `policy`.
    pub fn tcp(gateway: Gateway, addr: &str, policy: SlowConsumerPolicy) -> io::Result<Acceptor> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (stop, handle) = Self::accept_loop(gateway, policy, move || listener.accept());
        Ok(Acceptor {
            stop,
            endpoint: Endpoint::Tcp(local),
            handle: Some(handle),
        })
    }

    /// Accept Unix-domain clients on the socket file `path` (created
    /// here, removed by `stop()`) and register each with `gateway`
    /// under `policy`.
    #[cfg(unix)]
    pub fn unix(
        gateway: Gateway,
        path: impl Into<PathBuf>,
        policy: SlowConsumerPolicy,
    ) -> io::Result<Acceptor> {
        let path = path.into();
        let listener = UnixListener::bind(&path)?;
        let (stop, handle) = Self::accept_loop(gateway, policy, move || listener.accept());
        Ok(Acceptor {
            stop,
            endpoint: Endpoint::Unix(path),
            handle: Some(handle),
        })
    }

    /// Spawn the named acceptor thread shared by both stream families.
    fn accept_loop<S, A, F>(
        gateway: Gateway,
        policy: SlowConsumerPolicy,
        mut accept: F,
    ) -> (Arc<AtomicBool>, thread::JoinHandle<()>)
    where
        S: Stream,
        F: FnMut() -> io::Result<(S, A)> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("gw-acceptor".to_string())
            .spawn(move || loop {
                let conn = accept();
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok((stream, _)) = conn else { continue };
                let _ = admit(&gateway, stream, policy);
            })
            .expect("spawn gateway acceptor");
        (stop, handle)
    }

    /// The bound local TCP address (useful with port 0). Panics for a
    /// Unix-domain acceptor — use [`Acceptor::path`] there.
    pub fn addr(&self) -> SocketAddr {
        match &self.endpoint {
            Endpoint::Tcp(addr) => *addr,
            #[cfg(unix)]
            Endpoint::Unix(_) => panic!("addr() on a Unix-domain acceptor; use path()"),
        }
    }

    /// The socket file of a Unix-domain acceptor. Panics for TCP.
    #[cfg(unix)]
    pub fn path(&self) -> &std::path::Path {
        match &self.endpoint {
            Endpoint::Unix(path) => path,
            Endpoint::Tcp(_) => panic!("path() on a TCP acceptor; use addr()"),
        }
    }

    /// Stop accepting: raise the flag, wake the blocking `accept()`
    /// with a throwaway self-connection, join the thread. A Unix
    /// acceptor's socket file is removed.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Handshake one accepted connection and register it as a client.
///
/// A v2 `Hello` with a resume token first tries to resume the session;
/// on refusal (unknown token, ended, TTL elapsed) the connection falls
/// back to a fresh session and the `Welcome` verdict says `Expired` so
/// the client knows its watermarks are void. A resume `Hello` still
/// lists its subscriptions — they are used only on that fresh-session
/// fallback; a resumed session keeps the set it was opened with.
fn admit<S: Stream>(gateway: &Gateway, stream: S, policy: SlowConsumerPolicy) -> io::Result<()> {
    stream.configure()?;
    let mut reader = stream.try_clone_stream()?;
    let first = wire::read_frame(&mut reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no Hello"))?;
    let v2 = wire::frame_version(&first).is_some_and(|v| v >= 2);
    let (subs, resume) = match decode_msg(&first)? {
        ToGateway::Hello { subs, resume } => (subs, resume),
        _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected Hello")),
    };
    let mut subjects = Vec::with_capacity(usize::from(subs));
    for _ in 0..subs {
        match next_msg(&mut reader)? {
            Some(ToGateway::Subscribe { uid }) => subjects.push(Subject::new(uid)),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "expected Subscribe",
                ))
            }
        }
    }
    let sink: Box<dyn ClientSink> = Box::new(StreamSink::new(stream.try_clone_stream()?));
    // Welcome must be the first frame on the stream, wholly written
    // before any fanout worker can address this client's sink — so the
    // id is reserved (or the resume claimed) up front, and the step
    // that lets workers write (attach/commit/register) happens only
    // after the handshake reply is out.
    let mut out = stream;
    let resume_attempted = resume.is_some();
    if let Some(req) = resume {
        if let Ok(pending) = gateway.begin_resume(req.token, req.wm) {
            let (client, incarnation) = (pending.client(), pending.incarnation());
            let welcome = ToClient::Welcome {
                client,
                now_ns: 0,
                session: Some(SessionInfo {
                    token: pending.token(),
                    verdict: pending.verdict(),
                }),
            };
            if let Err(e) = wire::write_frame(&mut out, &wire::encode_to_client(&welcome)) {
                gateway.abort_resume(pending);
                return Err(e);
            }
            gateway.commit_resume(pending, sink);
            out.clear_read_timeout()?;
            spawn_reader(gateway.clone(), reader, client, Some(incarnation));
            return Ok(());
        }
        // Token refused: fall through to a fresh session.
    }
    let client = gateway.reserve_client();
    let session = if v2 {
        let token = gateway.open_session(client, &subjects, Some(policy));
        Some(SessionInfo {
            token,
            verdict: if resume_attempted {
                ResumeVerdict::Expired
            } else {
                ResumeVerdict::Fresh
            },
        })
    } else {
        None
    };
    if let Err(e) = wire::write_frame(
        &mut out,
        &wire::encode_to_client(&ToClient::Welcome {
            client,
            now_ns: 0,
            session,
        }),
    ) {
        if v2 {
            // The token never reached the client; spend it.
            gateway.close_session(client);
        }
        return Err(e);
    }
    if v2 {
        gateway.attach_session(client, sink);
    } else {
        let spec = ClientSinkSpec::Shared(Arc::new(Mutex::new(sink)));
        gateway.register_client(client, &subjects, &spec, Some(policy));
    }
    out.clear_read_timeout()?;
    spawn_reader(
        gateway.clone(),
        reader,
        client,
        if v2 { Some(0) } else { None },
    );
    Ok(())
}

/// Watch one admitted connection for its close: `Bye` ends the client
/// cleanly (lanes flush, session token spent), EOF or an error parks a
/// session's lanes for resume — a sessionless (v1) client just ends.
fn spawn_reader<R: io::Read + Send + 'static>(
    gateway: Gateway,
    mut reader: R,
    client: u32,
    session_incarnation: Option<u32>,
) {
    let _ = thread::Builder::new()
        .name(format!("gw-client-{client}"))
        .spawn(move || loop {
            match wire::read_frame(&mut reader) {
                Ok(Some(frame)) => {
                    if matches!(wire::decode_to_gateway(&frame), Ok(ToGateway::Bye)) {
                        gateway.close_session(client);
                        return;
                    }
                    // Anything else post-handshake is ignored.
                }
                Ok(None) | Err(_) => {
                    // Severed (or half-closed without Bye): park the
                    // session if there is one, end the lane otherwise.
                    match session_incarnation {
                        Some(inc) => gateway.detach_session(client, inc),
                        None => gateway.close_session(client),
                    }
                    return;
                }
            }
        });
}

/// Read and decode the next client → gateway frame.
fn next_msg<R: io::Read>(r: &mut R) -> io::Result<Option<ToGateway>> {
    let Some(frame) = wire::read_frame(r)? else {
        return Ok(None);
    };
    decode_msg(&frame).map(Some)
}

/// Decode one client → gateway frame.
fn decode_msg(frame: &[u8]) -> io::Result<ToGateway> {
    wire::decode_to_gateway(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
}

/// The client side of either stream family, as one trait object.
trait ClientStream: io::Read + Write + Send {
    /// Half-close: no more writes; reads still drain what the gateway
    /// has in flight.
    fn shutdown_write(&mut self) -> io::Result<()>;
    /// Bound blocking reads (`None` blocks forever).
    fn set_read_timeout_opt(&self, dur: Option<StdDuration>) -> io::Result<()>;
}

impl ClientStream for TcpStream {
    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }
    fn set_read_timeout_opt(&self, dur: Option<StdDuration>) -> io::Result<()> {
        self.set_read_timeout(dur)
    }
}

#[cfg(unix)]
impl ClientStream for UnixStream {
    fn shutdown_write(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Write)
    }
    fn set_read_timeout_opt(&self, dur: Option<StdDuration>) -> io::Result<()> {
        self.set_read_timeout(dur)
    }
}

/// A minimal blocking client for tests and demos.
pub struct GatewayClient {
    stream: Box<dyn ClientStream>,
    /// Client id assigned by the gateway's `Welcome`.
    pub client: u32,
    /// Session granted by the gateway (`None` against a v1 gateway).
    pub session: Option<SessionInfo>,
    /// Per-class count of data frames received — what a resume `Hello`
    /// reports back so the gateway can replay exactly the in-flight
    /// suffix.
    wm: ClassWatermarks,
}

impl GatewayClient {
    /// Connect over TCP, subscribe to `subjects`, await `Welcome`.
    pub fn connect(addr: SocketAddr, subjects: &[Subject]) -> io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Box::new(stream), subjects, None)
    }

    /// Connect over TCP presenting a resume request (token + the
    /// watermarks of a previous [`GatewayClient::resume_req`]).
    pub fn connect_resume(
        addr: SocketAddr,
        subjects: &[Subject],
        resume: ResumeReq,
    ) -> io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::handshake(Box::new(stream), subjects, Some(resume))
    }

    /// Connect over a Unix-domain socket file, subscribe to
    /// `subjects`, await `Welcome`.
    #[cfg(unix)]
    pub fn connect_unix(
        path: impl AsRef<std::path::Path>,
        subjects: &[Subject],
    ) -> io::Result<GatewayClient> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Box::new(stream), subjects, None)
    }

    /// Connect over a Unix-domain socket presenting a resume request.
    #[cfg(unix)]
    pub fn connect_unix_resume(
        path: impl AsRef<std::path::Path>,
        subjects: &[Subject],
        resume: ResumeReq,
    ) -> io::Result<GatewayClient> {
        let stream = UnixStream::connect(path)?;
        Self::handshake(Box::new(stream), subjects, Some(resume))
    }

    fn handshake(
        mut stream: Box<dyn ClientStream>,
        subjects: &[Subject],
        resume: Option<ResumeReq>,
    ) -> io::Result<GatewayClient> {
        wire::write_frame(
            &mut stream,
            &wire::encode_to_gateway(&ToGateway::Hello {
                subs: subjects.len() as u16,
                resume,
            }),
        )?;
        for s in subjects {
            wire::write_frame(
                &mut stream,
                &wire::encode_to_gateway(&ToGateway::Subscribe { uid: s.uid() }),
            )?;
        }
        let frame = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no Welcome"))?;
        let (client, session) = match wire::decode_to_client(&frame) {
            Ok(ToClient::Welcome {
                client, session, ..
            }) => (client, session),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Welcome, got {other:?}"),
                ))
            }
        };
        // A resumed session keeps its watermarks (the replay continues
        // the old count); any fresh session starts from zero.
        let wm = match (&resume, &session) {
            (Some(req), Some(info))
                if matches!(info.verdict, ResumeVerdict::Resumed | ResumeVerdict::Gap) =>
            {
                req.wm
            }
            _ => ClassWatermarks::default(),
        };
        Ok(GatewayClient {
            stream,
            client,
            session,
            wm,
        })
    }

    /// Receive the next gateway → client message (`None` on clean EOF),
    /// keeping the delivery watermarks current: every data frame bumps
    /// its class, and a `Gap` notice accounts for frames the gateway
    /// reported it will never resend.
    pub fn recv(&mut self) -> io::Result<Option<ToClient>> {
        let Some(frame) = wire::read_frame(&mut self.stream)? else {
            return Ok(None);
        };
        let msg = wire::decode_to_client(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        match &msg {
            ToClient::Event(ev) => self.wm.bump(ev.class),
            ToClient::Batch { .. } | ToClient::Frag(_) => self.wm.bump(ChannelClass::Nrt),
            ToClient::Gap { class, count } => match class {
                ChannelClass::Hrt => self.wm.hrt += u64::from(*count),
                ChannelClass::Srt => self.wm.srt += u64::from(*count),
                ChannelClass::Nrt => self.wm.nrt += u64::from(*count),
            },
            _ => {}
        }
        Ok(Some(msg))
    }

    /// The per-class data-frame counts received so far.
    pub fn watermarks(&self) -> ClassWatermarks {
        self.wm
    }

    /// What a reconnect should present to resume this session — the
    /// token plus the current watermarks. `None` without a session.
    pub fn resume_req(&self) -> Option<ResumeReq> {
        self.session.as_ref().map(|s| ResumeReq {
            token: s.token,
            wm: self.wm,
        })
    }

    /// Bound how long [`GatewayClient::recv`] blocks (`None` blocks
    /// forever). A timed-out read returns an error of kind
    /// `WouldBlock`/`TimedOut` — the reconnect loop's half-open
    /// detection.
    pub fn set_read_timeout(&self, dur: Option<StdDuration>) -> io::Result<()> {
        self.stream.set_read_timeout_opt(dur)
    }

    /// Leave cleanly. Sends `Bye` (checked, not fire-and-forget), then
    /// half-closes the write side — so the gateway's reader sees an
    /// explicit goodbye followed by a clean write-side EOF, never a
    /// race between the farewell and the teardown — and finally drains
    /// (bounded) whatever egress frames were still in flight until the
    /// gateway closes the stream.
    pub fn bye(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &wire::encode_to_gateway(&ToGateway::Bye))?;
        self.stream.flush()?;
        self.stream.shutdown_write()?;
        self.stream.set_read_timeout_opt(Some(BYE_DRAIN_TIMEOUT))?;
        for _ in 0..BYE_DRAIN_FRAMES {
            match wire::read_frame(&mut self.stream) {
                Ok(Some(_)) => continue, // in-flight egress drains
                Ok(None) => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // The gateway is slow closing; our side is done.
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, Reason};

    /// A writer that accepts at most `caps[i]` bytes on its i-th call
    /// (0 = time out), unlimited once the script runs out; records
    /// every byte it accepted.
    struct Throttle {
        caps: Vec<usize>,
        call: usize,
        bytes: Vec<u8>,
    }

    impl Throttle {
        fn new(caps: &[usize]) -> Self {
            Throttle {
                caps: caps.to_vec(),
                call: 0,
                bytes: Vec::new(),
            }
        }
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let cap = self.caps.get(self.call).copied().unwrap_or(usize::MAX);
            self.call += 1;
            if cap == 0 {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "throttled"));
            }
            let n = buf.len().min(cap);
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn frames(bytes: &[u8]) -> Vec<Vec<u8>> {
        let mut r = bytes;
        let mut out = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            out.push(f);
        }
        out
    }

    /// A timeout mid-frame must not desync the stream: the committed
    /// frame's tail goes out on the next offer, before the new frame,
    /// and no byte is ever sent twice.
    #[test]
    fn partial_write_resumes_without_duplicating_bytes() {
        let a = wire::encode_to_client(&ToClient::Disconnect {
            reason: Reason::Unknown(9),
        });
        let b = wire::encode_to_client(&ToClient::Welcome {
            client: 7,
            now_ns: 1,
            session: None,
        });
        // Two bytes of A's length prefix go out, then the timeout hits.
        let mut sink = StreamSink::new(Throttle::new(&[2, 0]));
        assert_eq!(sink.offer(&a), SinkStatus::Accepted);
        assert_eq!(sink.offer(&b), SinkStatus::Accepted);
        assert_eq!(frames(&sink.stream.bytes), vec![a, b]);
    }

    /// A timeout before any byte of the frame is attempted reports
    /// Busy, and the lane's verbatim retry produces exactly one frame.
    #[test]
    fn timeout_before_first_byte_is_busy_and_retry_safe() {
        let a = wire::encode_to_client(&ToClient::Disconnect {
            reason: Reason::Slow,
        });
        let mut sink = StreamSink::new(Throttle::new(&[0]));
        assert_eq!(sink.offer(&a), SinkStatus::Busy);
        assert_eq!(sink.offer(&a), SinkStatus::Accepted);
        assert_eq!(frames(&sink.stream.bytes), vec![a]);
    }

    /// While a committed frame's tail is still pending, further offers
    /// are Busy (retryable) — never interleaved into the stream.
    #[test]
    fn busy_while_committed_tail_is_pending() {
        let a = wire::encode_to_client(&ToClient::Disconnect {
            reason: Reason::Stale,
        });
        let b = wire::encode_to_client(&ToClient::Shed {
            class: rtec_core::ChannelClass::Srt,
            reason: Reason::Stale,
            count: 3,
        });
        // A is cut after 3 bytes; the next two write attempts block.
        let mut sink = StreamSink::new(Throttle::new(&[3, 0, 0]));
        assert_eq!(sink.offer(&a), SinkStatus::Accepted);
        assert_eq!(sink.offer(&b), SinkStatus::Busy);
        assert_eq!(sink.offer(&b), SinkStatus::Accepted);
        assert_eq!(frames(&sink.stream.bytes), vec![a, b]);
    }

    /// A hard error, or an impossible frame, reports the sink gone.
    #[test]
    fn dead_stream_and_oversized_frames_are_gone() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let a = wire::encode_to_client(&ToClient::Disconnect {
            reason: Reason::Shutdown,
        });
        let mut sink = StreamSink::new(Dead);
        assert_eq!(sink.offer(&a), SinkStatus::Gone);
        let mut sink = StreamSink::new(Throttle::new(&[]));
        assert_eq!(
            sink.offer(&vec![0u8; wire::MAX_FRAME_LEN + 1]),
            SinkStatus::Gone
        );
    }
}
