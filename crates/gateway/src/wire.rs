//! The gateway ⇄ client message protocol and its versioned wire codec.
//!
//! External subscribers do not speak the broker protocol
//! (`rtec_live::wire`, magic `"RL"`): they see events *after* channel
//! processing, so their protocol carries delivery metadata (class,
//! wire-completion time, release time) instead of raw CAN frames. The
//! codec follows the same conventions as the broker one — fixed
//! header, little-endian bodies, decoding that never panics — with a
//! different magic so a datagram routed at the wrong boundary fails
//! loudly instead of aliasing.
//!
//! Layout of every message:
//!
//! ```text
//! bytes 0..2   magic "RG"
//! byte  2      protocol version (currently 2)
//! byte  3      message kind
//! bytes 4..    kind-specific body
//! ```
//!
//! Over a stream transport (TCP / Unix socket) each message is framed
//! by a little-endian `u32` length prefix ([`write_frame`] /
//! [`read_frame`]).
//!
//! # Version tolerance
//!
//! Additive fields go at the *tail* of a body. A decoder checks bodies
//! of its own version strictly, decodes older versions with the older
//! (shorter) layout, and tolerates trailing bytes from newer versions
//! — so a v1 client keeps working against a v2 gateway (it simply
//! never resumes), and a v2 client's `Hello` decodes on a v1 gateway
//! as a plain session open. Version 0 does not exist and is rejected.
//!
//! # Version 2: session resume
//!
//! Version 2 extends the handshake for crash-tolerant sessions:
//! `Hello` gains a session token plus per-class delivery watermarks
//! (how many frames of each class the client has received — the
//! client-side truth the gateway filters replay against), `Welcome`
//! gains the minted token and a [`ResumeVerdict`], and the new
//! [`ToClient::Gap`] notice reports NRT frames that fell out of the
//! bounded replay buffer while the client was away (§2.2.3: NRT may
//! gap, it must not lie).

use rtec_core::ChannelClass;
use std::io::{self, Read, Write};

/// Magic prefix of every gateway-protocol message.
pub const MAGIC: [u8; 2] = *b"RG";
/// Current protocol version (byte 2 of every message).
pub const WIRE_VERSION: u8 = 2;
/// Oldest protocol version this decoder still accepts.
pub const MIN_VERSION: u8 = 1;
/// Hard cap on a framed message (length prefix included payload), so a
/// corrupt length prefix cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 16;
/// Largest event payload (or fragment chunk) a single message may
/// carry: with the fixed header and per-message fields, anything up to
/// this bound stays under both [`MAX_FRAME_LEN`] and the `u16` payload
/// length prefix. Encoders must fragment or reject larger payloads —
/// [`encode_to_client`] panics rather than truncate.
pub const MAX_PAYLOAD: usize = MAX_FRAME_LEN - 64;

/// Why events were shed or a session was closed, as a closed enum: the
/// wire carries one byte, and an unassigned byte from a newer peer
/// lands in [`Reason::Unknown`] instead of silently aliasing a known
/// reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// The client fell behind its bounded queue.
    Slow,
    /// An SRT event outlived its validity window (§2.2.2).
    Stale,
    /// The gateway is shutting down.
    Shutdown,
    /// A reason byte this decoder does not know (a newer peer).
    Unknown(u8),
}

impl Reason {
    /// The wire byte for this reason.
    pub fn code(self) -> u8 {
        match self {
            Reason::Slow => 1,
            Reason::Stale => 2,
            Reason::Shutdown => 3,
            Reason::Unknown(c) => c,
        }
    }

    /// Decode a wire byte; unassigned values become
    /// [`Reason::Unknown`], never an error.
    pub fn from_code(code: u8) -> Reason {
        match code {
            1 => Reason::Slow,
            2 => Reason::Stale,
            3 => Reason::Shutdown,
            c => Reason::Unknown(c),
        }
    }
}

/// The gateway's answer to a resume attempt, carried in the v2
/// `Welcome` tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeVerdict {
    /// A new session was opened (no token offered, or v1 peer).
    Fresh,
    /// The session resumed; every missing HRT frame is replayed
    /// exactly once (§3.2 off-bus).
    Resumed,
    /// The token was unknown or its bus-time TTL elapsed; a fresh
    /// session replaces it.
    Expired,
    /// The session resumed but part of the backlog fell out of the
    /// bounded replay buffer; `Gap`/`Shed` notices follow.
    Gap,
    /// A verdict byte this decoder does not know (a newer peer).
    Unknown(u8),
}

impl ResumeVerdict {
    /// The wire byte for this verdict.
    pub fn code(self) -> u8 {
        match self {
            ResumeVerdict::Fresh => 0,
            ResumeVerdict::Resumed => 1,
            ResumeVerdict::Expired => 2,
            ResumeVerdict::Gap => 3,
            ResumeVerdict::Unknown(c) => c,
        }
    }

    /// Decode a wire byte; unassigned values become
    /// [`ResumeVerdict::Unknown`], never an error.
    pub fn from_code(code: u8) -> ResumeVerdict {
        match code {
            0 => ResumeVerdict::Fresh,
            1 => ResumeVerdict::Resumed,
            2 => ResumeVerdict::Expired,
            3 => ResumeVerdict::Gap,
            c => ResumeVerdict::Unknown(c),
        }
    }
}

/// Per-class delivery watermarks: how many gateway → client frames of
/// each class the client has received on its session so far. The
/// shared stream totally orders a session's frames, so a count per
/// class identifies exactly which suffix of the sent sequence was
/// still in flight when the link died.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassWatermarks {
    /// HRT `Event` frames received.
    pub hrt: u64,
    /// SRT `Event` frames received.
    pub srt: u64,
    /// NRT `Event`/`Batch`/`Frag` frames received.
    pub nrt: u64,
}

impl ClassWatermarks {
    /// The watermark for one class.
    pub fn of(&self, class: ChannelClass) -> u64 {
        match class {
            ChannelClass::Hrt => self.hrt,
            ChannelClass::Srt => self.srt,
            ChannelClass::Nrt => self.nrt,
        }
    }

    /// Bump the watermark for one class.
    pub fn bump(&mut self, class: ChannelClass) {
        match class {
            ChannelClass::Hrt => self.hrt += 1,
            ChannelClass::Srt => self.srt += 1,
            ChannelClass::Nrt => self.nrt += 1,
        }
    }
}

/// The resume request a v2 `Hello` may carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeReq {
    /// Session token from the previous `Welcome` (never 0).
    pub token: u64,
    /// What the client received before the link died.
    pub wm: ClassWatermarks,
}

/// The session description a v2 `Welcome` carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionInfo {
    /// Token to present in a future resume (never 0).
    pub token: u64,
    /// How the gateway answered the handshake.
    pub verdict: ResumeVerdict,
}

/// Messages a client sends to the gateway (the subscription handshake).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToGateway {
    /// Open (or resume) a session: `subs` [`ToGateway::Subscribe`]
    /// messages follow.
    Hello {
        /// Number of subscription messages that follow.
        subs: u16,
        /// v2 tail: present to resume an earlier session. A v1 peer's
        /// `Hello` decodes with `None`.
        resume: Option<ResumeReq>,
    },
    /// Subscribe to one subject by its 64-bit uid.
    Subscribe {
        /// The subject uid.
        uid: u64,
    },
    /// Close the session.
    Bye,
}

/// A single re-published event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventMsg {
    /// Timeliness class of the channel the event arrived on.
    pub class: ChannelClass,
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the frame completed on the wire.
    pub wire_ns: u64,
    /// Bus time the event was released to subscribers (for HRT this is
    /// the calendar slot deadline — §3.2's deferred delivery).
    pub release_ns: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// One event inside a [`ToClient::Batch`] (always NRT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchEntry {
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the frame completed on the wire.
    pub wire_ns: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// One fragment of a large NRT event streamed in chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragMsg {
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the (reassembled) event completed on the wire.
    pub wire_ns: u64,
    /// Byte offset of this chunk in the full payload.
    pub offset: u32,
    /// Total payload length in bytes.
    pub total: u32,
    /// The chunk.
    pub chunk: Vec<u8>,
}

/// Messages the gateway sends to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToClient {
    /// Handshake reply: the session is open (or resumed).
    Welcome {
        /// Gateway-assigned client id.
        client: u32,
        /// Gateway bus time at session open.
        now_ns: u64,
        /// v2 tail: the session token and resume verdict. A v1 peer's
        /// `Welcome` decodes with `None`.
        session: Option<SessionInfo>,
    },
    /// A single HRT/SRT/NRT event.
    Event(EventMsg),
    /// Several small NRT events coalesced into one message.
    Batch {
        /// The batched events, oldest first.
        entries: Vec<BatchEntry>,
    },
    /// One chunk of a fragment-streamed NRT bulk event.
    Frag(FragMsg),
    /// Events were shed from this client's queue (backpressure or
    /// staleness); the client observes the gap instead of silence.
    Shed {
        /// Class of the shed events.
        class: ChannelClass,
        /// Why.
        reason: Reason,
        /// How many events this notice covers.
        count: u32,
    },
    /// NRT frames fell out of the bounded replay buffer across a
    /// reconnect and cannot be replayed (§2.2.3 — the gap is reported,
    /// never papered over). v2-only; a session that never resumes
    /// never sees it.
    Gap {
        /// Class of the lost frames (always NRT today).
        class: ChannelClass,
        /// How many frames are missing.
        count: u32,
    },
    /// The gateway is closing this session.
    Disconnect {
        /// Why.
        reason: Reason,
    },
}

/// A buffer failed to decode as a gateway-protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated(usize),
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Version byte is below the oldest supported version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Body length disagrees with the kind's layout.
    BadLength {
        /// Kind whose body was malformed.
        kind: u8,
        /// Bytes present after the header.
        got: usize,
    },
    /// A class byte is not one of the three timeliness classes.
    BadClass(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated(n) => write!(f, "message truncated: {n} bytes"),
            WireError::BadMagic => write!(f, "bad magic (not a gateway-protocol message)"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (oldest is {MIN_VERSION})"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadLength { kind, got } => {
                write!(f, "kind {kind}: body of {got} bytes has the wrong length")
            }
            WireError::BadClass(c) => write!(f, "unknown timeliness class {c}"),
        }
    }
}

impl std::error::Error for WireError {}

// Message kind bytes. ToGateway and ToClient share one numbering space
// so a misrouted message fails loudly instead of aliasing.
const K_HELLO: u8 = 1;
const K_SUBSCRIBE: u8 = 2;
const K_BYE: u8 = 3;
const K_WELCOME: u8 = 16;
const K_EVENT: u8 = 17;
const K_BATCH: u8 = 18;
const K_FRAG: u8 = 19;
const K_SHED: u8 = 20;
const K_DISCONNECT: u8 = 21;
const K_GAP: u8 = 22;

/// Encode a timeliness class as its wire byte.
const fn class_code(class: ChannelClass) -> u8 {
    match class {
        ChannelClass::Hrt => 0,
        ChannelClass::Srt => 1,
        ChannelClass::Nrt => 2,
    }
}

fn class_from(code: u8) -> Result<ChannelClass, WireError> {
    match code {
        0 => Ok(ChannelClass::Hrt),
        1 => Ok(ChannelClass::Srt),
        2 => Ok(ChannelClass::Nrt),
        c => Err(WireError::BadClass(c)),
    }
}

fn header(kind: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
}

/// Encode a client → gateway message.
pub fn encode_to_gateway(msg: &ToGateway) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    match msg {
        ToGateway::Hello { subs, resume } => {
            header(K_HELLO, &mut out);
            out.extend_from_slice(&subs.to_le_bytes());
            // v2 tail: token 0 means "no session to resume" — a v1
            // decoder never reads past the subs count, so the tail is
            // always written and always compatible.
            let (token, wm) = match resume {
                Some(r) => (r.token, r.wm),
                None => (0, ClassWatermarks::default()),
            };
            out.extend_from_slice(&token.to_le_bytes());
            out.extend_from_slice(&wm.hrt.to_le_bytes());
            out.extend_from_slice(&wm.srt.to_le_bytes());
            out.extend_from_slice(&wm.nrt.to_le_bytes());
        }
        ToGateway::Subscribe { uid } => {
            header(K_SUBSCRIBE, &mut out);
            out.extend_from_slice(&uid.to_le_bytes());
        }
        ToGateway::Bye => header(K_BYE, &mut out),
    }
    out
}

/// Encode a gateway → client message.
pub fn encode_to_client(msg: &ToClient) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    match msg {
        ToClient::Welcome {
            client,
            now_ns,
            session,
        } => {
            header(K_WELCOME, &mut out);
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&now_ns.to_le_bytes());
            // v2 tail: token 0 means "no session" (in-process client).
            let (token, verdict) = match session {
                Some(s) => (s.token, s.verdict),
                None => (0, ResumeVerdict::Fresh),
            };
            out.extend_from_slice(&token.to_le_bytes());
            out.push(verdict.code());
        }
        ToClient::Event(ev) => {
            header(K_EVENT, &mut out);
            out.push(class_code(ev.class));
            out.push(ev.origin);
            out.extend_from_slice(&ev.uid.to_le_bytes());
            out.extend_from_slice(&ev.seq.to_le_bytes());
            out.extend_from_slice(&ev.wire_ns.to_le_bytes());
            out.extend_from_slice(&ev.release_ns.to_le_bytes());
            push_payload(&ev.payload, &mut out);
        }
        ToClient::Batch { entries } => {
            header(K_BATCH, &mut out);
            out.push(entries.len().min(255) as u8);
            for e in entries.iter().take(255) {
                out.push(e.origin);
                out.extend_from_slice(&e.uid.to_le_bytes());
                out.extend_from_slice(&e.seq.to_le_bytes());
                out.extend_from_slice(&e.wire_ns.to_le_bytes());
                push_payload(&e.payload, &mut out);
            }
        }
        ToClient::Frag(fr) => {
            header(K_FRAG, &mut out);
            out.push(fr.origin);
            out.extend_from_slice(&fr.uid.to_le_bytes());
            out.extend_from_slice(&fr.seq.to_le_bytes());
            out.extend_from_slice(&fr.wire_ns.to_le_bytes());
            out.extend_from_slice(&fr.offset.to_le_bytes());
            out.extend_from_slice(&fr.total.to_le_bytes());
            push_payload(&fr.chunk, &mut out);
        }
        ToClient::Shed {
            class,
            reason,
            count,
        } => {
            header(K_SHED, &mut out);
            out.push(class_code(*class));
            out.push(reason.code());
            out.extend_from_slice(&count.to_le_bytes());
        }
        ToClient::Gap { class, count } => {
            header(K_GAP, &mut out);
            out.push(class_code(*class));
            out.extend_from_slice(&count.to_le_bytes());
        }
        ToClient::Disconnect { reason } => {
            header(K_DISCONNECT, &mut out);
            out.push(reason.code());
        }
    }
    out
}

/// Append a `u16`-length-prefixed byte string.
///
/// Truncating here would deliver a silently corrupted payload, so an
/// oversized one is a caller bug and panics loudly instead — the
/// gateway fragments NRT bulk and drops un-encodable HRT/SRT events
/// *before* encoding (see `encode_entries` in `crate::gateway`).
fn push_payload(bytes: &[u8], out: &mut Vec<u8>) {
    assert!(
        bytes.len() <= MAX_PAYLOAD,
        "payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD}); fragment or reject it upstream",
        bytes.len()
    );
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Header check shared by both decoders: returns the kind, the body,
/// and the sender's version byte.
fn check_header(buf: &[u8]) -> Result<(u8, &[u8], u8), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated(buf.len()));
    }
    if buf[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[2] < MIN_VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    Ok((buf[3], &buf[4..], buf[2]))
}

/// Just the protocol version byte of a (framed) message, if the buffer
/// is long enough to carry one. Lets a transport pick the v1 or v2
/// handshake path without a full decode.
pub fn frame_version(buf: &[u8]) -> Option<u8> {
    (buf.len() >= 4 && buf[..2] == MAGIC).then(|| buf[2])
}

/// Session-accounting peek: if `frame` is an encoded *data* frame
/// (`Event`/`Batch`/`Frag` — the kinds a client's per-class watermark
/// counts), return `(class, uid, release_ns)` without a full decode.
/// Control frames (`Welcome`/`Shed`/`Gap`/`Disconnect`) and anything
/// unrecognizable return `None`. `Batch`/`Frag` frames are NRT by
/// construction; their uid/release fields are reported as 0 because
/// only SRT staleness filtering consumes them.
pub fn data_frame_meta(frame: &[u8]) -> Option<(ChannelClass, u64, u64)> {
    if frame.len() < 4 || frame[..2] != MAGIC {
        return None;
    }
    match frame[3] {
        K_EVENT if frame.len() >= 34 => {
            let class = class_from(frame[4]).ok()?;
            Some((class, le_u64(&frame[6..]), le_u64(&frame[26..])))
        }
        K_BATCH | K_FRAG => Some((ChannelClass::Nrt, 0, 0)),
        _ => None,
    }
}

/// `body` must be exactly `want` bytes — or at least `want` when the
/// sender speaks a newer version than ours (trailing extension bytes
/// tolerated).
fn fixed(kind: u8, body: &[u8], want: usize, tolerant: bool) -> Result<(), WireError> {
    let ok = if tolerant {
        body.len() >= want
    } else {
        body.len() == want
    };
    if ok {
        Ok(())
    } else {
        Err(WireError::BadLength {
            kind,
            got: body.len(),
        })
    }
}

/// Length check for a body whose layout grew in v2: an exactly-v1 body
/// uses the v1 length, anything newer uses the v2 length (with
/// trailing tolerance above our own version).
fn fixed_grown(
    kind: u8,
    body: &[u8],
    version: u8,
    v1_want: usize,
    v2_want: usize,
) -> Result<(), WireError> {
    if version == 1 {
        fixed(kind, body, v1_want, false)
    } else {
        fixed(kind, body, v2_want, version > WIRE_VERSION)
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Read a `u16`-length-prefixed byte string at `at`; returns the bytes
/// and the offset just past them.
fn take_payload(kind: u8, body: &[u8], at: usize) -> Result<(Vec<u8>, usize), WireError> {
    let err = WireError::BadLength {
        kind,
        got: body.len(),
    };
    if body.len() < at + 2 {
        return Err(err);
    }
    let len = usize::from(le_u16(&body[at..]));
    let end = at + 2 + len;
    if body.len() < end {
        return Err(err);
    }
    Ok((body[at + 2..end].to_vec(), end))
}

/// Decode a client → gateway message.
pub fn decode_to_gateway(buf: &[u8]) -> Result<ToGateway, WireError> {
    let (kind, body, version) = check_header(buf)?;
    let tolerant = version > WIRE_VERSION;
    match kind {
        K_HELLO => {
            fixed_grown(kind, body, version, 2, 34)?;
            let subs = le_u16(body);
            let resume = if version >= 2 {
                let token = le_u64(&body[2..]);
                (token != 0).then(|| ResumeReq {
                    token,
                    wm: ClassWatermarks {
                        hrt: le_u64(&body[10..]),
                        srt: le_u64(&body[18..]),
                        nrt: le_u64(&body[26..]),
                    },
                })
            } else {
                None
            };
            Ok(ToGateway::Hello { subs, resume })
        }
        K_SUBSCRIBE => {
            fixed(kind, body, 8, tolerant)?;
            Ok(ToGateway::Subscribe { uid: le_u64(body) })
        }
        K_BYE => {
            fixed(kind, body, 0, tolerant)?;
            Ok(ToGateway::Bye)
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Decode a gateway → client message.
pub fn decode_to_client(buf: &[u8]) -> Result<ToClient, WireError> {
    let (kind, body, version) = check_header(buf)?;
    let tolerant = version > WIRE_VERSION;
    match kind {
        K_WELCOME => {
            fixed_grown(kind, body, version, 12, 21)?;
            let session = if version >= 2 {
                let token = le_u64(&body[12..]);
                (token != 0).then(|| SessionInfo {
                    token,
                    verdict: ResumeVerdict::from_code(body[20]),
                })
            } else {
                None
            };
            Ok(ToClient::Welcome {
                client: le_u32(body),
                now_ns: le_u64(&body[4..]),
                session,
            })
        }
        K_EVENT => {
            // class, origin, uid, seq, wire_ns, release_ns, payload.
            fixed(kind, body, 32, true)?;
            let (payload, end) = take_payload(kind, body, 30)?;
            if !tolerant && end != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Event(EventMsg {
                class: class_from(body[0])?,
                origin: body[1],
                uid: le_u64(&body[2..]),
                seq: le_u32(&body[10..]),
                wire_ns: le_u64(&body[14..]),
                release_ns: le_u64(&body[22..]),
                payload,
            }))
        }
        K_BATCH => {
            fixed(kind, body, 1, true)?;
            let count = usize::from(body[0]);
            let mut entries = Vec::with_capacity(count);
            let mut at = 1;
            for _ in 0..count {
                // origin, uid, seq, wire_ns, payload.
                fixed(kind, body, at + 21, true)?;
                let origin = body[at];
                let uid = le_u64(&body[at + 1..]);
                let seq = le_u32(&body[at + 9..]);
                let wire_ns = le_u64(&body[at + 13..]);
                let (payload, end) = take_payload(kind, body, at + 21)?;
                entries.push(BatchEntry {
                    origin,
                    uid,
                    seq,
                    wire_ns,
                    payload,
                });
                at = end;
            }
            if !tolerant && at != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Batch { entries })
        }
        K_FRAG => {
            // origin, uid, seq, wire_ns, offset, total, chunk.
            fixed(kind, body, 31, true)?;
            let (chunk, end) = take_payload(kind, body, 29)?;
            if !tolerant && end != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Frag(FragMsg {
                origin: body[0],
                uid: le_u64(&body[1..]),
                seq: le_u32(&body[9..]),
                wire_ns: le_u64(&body[13..]),
                offset: le_u32(&body[21..]),
                total: le_u32(&body[25..]),
                chunk,
            }))
        }
        K_SHED => {
            fixed(kind, body, 6, tolerant)?;
            Ok(ToClient::Shed {
                class: class_from(body[0])?,
                reason: Reason::from_code(body[1]),
                count: le_u32(&body[2..]),
            })
        }
        K_GAP => {
            fixed(kind, body, 5, tolerant)?;
            Ok(ToClient::Gap {
                class: class_from(body[0])?,
                count: le_u32(&body[1..]),
            })
        }
        K_DISCONNECT => {
            fixed(kind, body, 1, tolerant)?;
            Ok(ToClient::Disconnect {
                reason: Reason::from_code(body[0]),
            })
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Write one length-prefixed message to a stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &[u8]) -> io::Result<()> {
    if msg.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "message exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&(msg.len() as u32).to_le_bytes())?;
    w.write_all(msg)
}

/// Read one length-prefixed message from a stream. `Ok(None)` means
/// the peer closed the stream cleanly at a message boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = le_u32(&len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let msg = encode_to_client(&ToClient::Disconnect {
            reason: Reason::Shutdown,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &msg).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&msg[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&msg[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        let mut bomb = Vec::new();
        bomb.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &bomb[..]).is_err());
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME_LEN + 1]).is_err());
    }

    fn event_with(payload: Vec<u8>) -> ToClient {
        ToClient::Event(EventMsg {
            class: ChannelClass::Hrt,
            origin: 0,
            uid: 1,
            seq: 2,
            wire_ns: 3,
            release_ns: 4,
            payload,
        })
    }

    /// A payload at the documented bound encodes to a single frame the
    /// stream writer accepts, and round-trips intact.
    #[test]
    fn max_payload_event_fits_one_frame() {
        let msg = event_with(vec![0x5A; MAX_PAYLOAD]);
        let bytes = encode_to_client(&msg);
        assert!(bytes.len() <= MAX_FRAME_LEN);
        let mut buf = Vec::new();
        write_frame(&mut buf, &bytes).unwrap();
        assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// One byte over the bound panics loudly instead of silently
    /// truncating the payload.
    #[test]
    #[should_panic(expected = "MAX_PAYLOAD")]
    fn oversized_payload_panics_instead_of_truncating() {
        let _ = encode_to_client(&event_with(vec![0x5A; MAX_PAYLOAD + 1]));
    }

    #[test]
    fn misrouted_broker_datagram_fails_on_magic() {
        // "RL..." is the broker protocol, not ours.
        assert_eq!(
            decode_to_client(&[b'R', b'L', 1, 17, 0, 0]),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn version_zero_is_rejected_newer_versions_tolerate_tail() {
        let mut bytes = encode_to_gateway(&ToGateway::Subscribe { uid: 7 });
        bytes[2] = 0;
        assert_eq!(decode_to_gateway(&bytes), Err(WireError::BadVersion(0)));
        bytes[2] = WIRE_VERSION + 1;
        bytes.extend_from_slice(&[0xaa; 5]);
        assert_eq!(
            decode_to_gateway(&bytes),
            Ok(ToGateway::Subscribe { uid: 7 })
        );
    }

    /// A v1 `Hello`/`Welcome` (short body, version byte 1) decodes on
    /// the v2 codec with the resume tail absent — the legacy layouts
    /// stay strict, so a truncated v2 body cannot masquerade as v1.
    #[test]
    fn v1_handshake_bodies_decode_without_resume() {
        let hello_v1 = [b'R', b'G', 1, 1, 3, 0];
        assert_eq!(
            decode_to_gateway(&hello_v1),
            Ok(ToGateway::Hello {
                subs: 3,
                resume: None
            })
        );
        let mut welcome_v1 = vec![b'R', b'G', 1, 16];
        welcome_v1.extend_from_slice(&9u32.to_le_bytes());
        welcome_v1.extend_from_slice(&77u64.to_le_bytes());
        assert_eq!(
            decode_to_client(&welcome_v1),
            Ok(ToClient::Welcome {
                client: 9,
                now_ns: 77,
                session: None
            })
        );
        // A version-2 body of v1 length is malformed, not legacy.
        let mut stamped = hello_v1;
        stamped[2] = 2;
        assert_eq!(
            decode_to_gateway(&stamped),
            Err(WireError::BadLength { kind: 1, got: 2 })
        );
    }

    /// The v2 resume tail round-trips, and token 0 means "no session"
    /// on both sides of the handshake.
    #[test]
    fn resume_tail_round_trips_and_zero_token_is_none() {
        let hello = ToGateway::Hello {
            subs: 2,
            resume: Some(ResumeReq {
                token: 0xDEAD_BEEF,
                wm: ClassWatermarks {
                    hrt: 10,
                    srt: 20,
                    nrt: 30,
                },
            }),
        };
        assert_eq!(decode_to_gateway(&encode_to_gateway(&hello)), Ok(hello));
        let fresh = ToGateway::Hello {
            subs: 2,
            resume: None,
        };
        assert_eq!(decode_to_gateway(&encode_to_gateway(&fresh)), Ok(fresh));

        let welcome = ToClient::Welcome {
            client: 4,
            now_ns: 5,
            session: Some(SessionInfo {
                token: 6,
                verdict: ResumeVerdict::Gap,
            }),
        };
        assert_eq!(decode_to_client(&encode_to_client(&welcome)), Ok(welcome));
    }

    /// Unassigned reason / verdict bytes land in the Unknown variants
    /// instead of aliasing a known meaning or failing the decode.
    #[test]
    fn unknown_reason_and_verdict_bytes_are_preserved() {
        let shed = ToClient::Shed {
            class: ChannelClass::Nrt,
            reason: Reason::Unknown(99),
            count: 1,
        };
        assert_eq!(decode_to_client(&encode_to_client(&shed)), Ok(shed));
        assert_eq!(Reason::from_code(250), Reason::Unknown(250));
        assert_eq!(ResumeVerdict::from_code(250), ResumeVerdict::Unknown(250));
        assert_eq!(Reason::from_code(Reason::Slow.code()), Reason::Slow);
    }

    /// `data_frame_meta` classifies exactly the frames a watermark
    /// counts: events by their class byte, batches and fragments as
    /// NRT, control frames not at all.
    #[test]
    fn data_frame_meta_matches_watermark_counting() {
        let ev = encode_to_client(&ToClient::Event(EventMsg {
            class: ChannelClass::Srt,
            origin: 1,
            uid: 42,
            seq: 0,
            wire_ns: 7,
            release_ns: 99,
            payload: vec![1, 2],
        }));
        assert_eq!(data_frame_meta(&ev), Some((ChannelClass::Srt, 42, 99)));
        let batch = encode_to_client(&ToClient::Batch { entries: vec![] });
        assert_eq!(data_frame_meta(&batch), Some((ChannelClass::Nrt, 0, 0)));
        let frag = encode_to_client(&ToClient::Frag(FragMsg {
            origin: 0,
            uid: 1,
            seq: 0,
            wire_ns: 0,
            offset: 0,
            total: 4,
            chunk: vec![0; 4],
        }));
        assert_eq!(data_frame_meta(&frag), Some((ChannelClass::Nrt, 0, 0)));
        for control in [
            encode_to_client(&ToClient::Welcome {
                client: 1,
                now_ns: 2,
                session: None,
            }),
            encode_to_client(&ToClient::Shed {
                class: ChannelClass::Nrt,
                reason: Reason::Slow,
                count: 1,
            }),
            encode_to_client(&ToClient::Gap {
                class: ChannelClass::Nrt,
                count: 1,
            }),
            encode_to_client(&ToClient::Disconnect {
                reason: Reason::Shutdown,
            }),
        ] {
            assert_eq!(data_frame_meta(&control), None);
        }
    }

    /// The Gap notice round-trips.
    #[test]
    fn gap_notice_round_trips() {
        let gap = ToClient::Gap {
            class: ChannelClass::Nrt,
            count: 17,
        };
        assert_eq!(decode_to_client(&encode_to_client(&gap)), Ok(gap));
    }
}
