//! The gateway ⇄ client message protocol and its versioned wire codec.
//!
//! External subscribers do not speak the broker protocol
//! (`rtec_live::wire`, magic `"RL"`): they see events *after* channel
//! processing, so their protocol carries delivery metadata (class,
//! wire-completion time, release time) instead of raw CAN frames. The
//! codec follows the same conventions as the broker one — fixed
//! header, little-endian bodies, decoding that never panics — with a
//! different magic so a datagram routed at the wrong boundary fails
//! loudly instead of aliasing.
//!
//! Layout of every message:
//!
//! ```text
//! bytes 0..2   magic "RG"
//! byte  2      protocol version (currently 1)
//! byte  3      message kind
//! bytes 4..    kind-specific body
//! ```
//!
//! Over a stream transport (TCP / Unix socket) each message is framed
//! by a little-endian `u32` length prefix ([`write_frame`] /
//! [`read_frame`]).
//!
//! # Version tolerance
//!
//! Version 1 bodies are strictly length-checked. A message stamped
//! with a *higher* version byte is decoded with version 1's layout but
//! may carry extra trailing bytes — the additive-fields-at-the-tail
//! compatibility scheme — so a newer gateway can extend messages
//! without cutting off older clients. Version 0 does not exist and is
//! rejected.

use rtec_core::ChannelClass;
use std::io::{self, Read, Write};

/// Magic prefix of every gateway-protocol message.
pub const MAGIC: [u8; 2] = *b"RG";
/// Current protocol version (byte 2 of every message).
pub const WIRE_VERSION: u8 = 1;
/// Hard cap on a framed message (length prefix included payload), so a
/// corrupt length prefix cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 16;
/// Largest event payload (or fragment chunk) a single message may
/// carry: with the fixed header and per-message fields, anything up to
/// this bound stays under both [`MAX_FRAME_LEN`] and the `u16` payload
/// length prefix. Encoders must fragment or reject larger payloads —
/// [`encode_to_client`] panics rather than truncate.
pub const MAX_PAYLOAD: usize = MAX_FRAME_LEN - 64;

/// Disconnect / shed reason: the client fell behind its bounded queue.
pub const REASON_SLOW: u8 = 1;
/// Shed reason: an SRT event outlived its validity window.
pub const REASON_STALE: u8 = 2;
/// Disconnect reason: the gateway is shutting down.
pub const REASON_SHUTDOWN: u8 = 3;

/// Messages a client sends to the gateway (the subscription handshake).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToGateway {
    /// Open a session: `subs` [`ToGateway::Subscribe`] messages follow.
    Hello {
        /// Number of subscription messages that follow.
        subs: u16,
    },
    /// Subscribe to one subject by its 64-bit uid.
    Subscribe {
        /// The subject uid.
        uid: u64,
    },
    /// Close the session.
    Bye,
}

/// A single re-published event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventMsg {
    /// Timeliness class of the channel the event arrived on.
    pub class: ChannelClass,
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the frame completed on the wire.
    pub wire_ns: u64,
    /// Bus time the event was released to subscribers (for HRT this is
    /// the calendar slot deadline — §3.2's deferred delivery).
    pub release_ns: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// One event inside a [`ToClient::Batch`] (always NRT).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchEntry {
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the frame completed on the wire.
    pub wire_ns: u64,
    /// Event payload.
    pub payload: Vec<u8>,
}

/// One fragment of a large NRT event streamed in chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragMsg {
    /// Publishing node id (255 when unknown).
    pub origin: u8,
    /// Subject uid.
    pub uid: u64,
    /// Per-subject delivery sequence number at the gateway.
    pub seq: u32,
    /// Bus time the (reassembled) event completed on the wire.
    pub wire_ns: u64,
    /// Byte offset of this chunk in the full payload.
    pub offset: u32,
    /// Total payload length in bytes.
    pub total: u32,
    /// The chunk.
    pub chunk: Vec<u8>,
}

/// Messages the gateway sends to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToClient {
    /// Handshake reply: the session is open.
    Welcome {
        /// Gateway-assigned client id.
        client: u32,
        /// Gateway bus time at session open.
        now_ns: u64,
    },
    /// A single HRT/SRT/NRT event.
    Event(EventMsg),
    /// Several small NRT events coalesced into one message.
    Batch {
        /// The batched events, oldest first.
        entries: Vec<BatchEntry>,
    },
    /// One chunk of a fragment-streamed NRT bulk event.
    Frag(FragMsg),
    /// Events were shed from this client's queue (backpressure or
    /// staleness); the client observes the gap instead of silence.
    Shed {
        /// Class of the shed events.
        class: ChannelClass,
        /// Why ([`REASON_SLOW`] / [`REASON_STALE`]).
        reason: u8,
        /// How many events this notice covers.
        count: u32,
    },
    /// The gateway is closing this session.
    Disconnect {
        /// Why ([`REASON_SLOW`] / [`REASON_SHUTDOWN`]).
        reason: u8,
    },
}

/// A buffer failed to decode as a gateway-protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header needs.
    Truncated(usize),
    /// First two bytes are not [`MAGIC`].
    BadMagic,
    /// Version byte is below the oldest supported version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Body length disagrees with the kind's layout.
    BadLength {
        /// Kind whose body was malformed.
        kind: u8,
        /// Bytes present after the header.
        got: usize,
    },
    /// A class byte is not one of the three timeliness classes.
    BadClass(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated(n) => write!(f, "message truncated: {n} bytes"),
            WireError::BadMagic => write!(f, "bad magic (not a gateway-protocol message)"),
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (oldest is {WIRE_VERSION})"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadLength { kind, got } => {
                write!(f, "kind {kind}: body of {got} bytes has the wrong length")
            }
            WireError::BadClass(c) => write!(f, "unknown timeliness class {c}"),
        }
    }
}

impl std::error::Error for WireError {}

// Message kind bytes. ToGateway and ToClient share one numbering space
// so a misrouted message fails loudly instead of aliasing.
const K_HELLO: u8 = 1;
const K_SUBSCRIBE: u8 = 2;
const K_BYE: u8 = 3;
const K_WELCOME: u8 = 16;
const K_EVENT: u8 = 17;
const K_BATCH: u8 = 18;
const K_FRAG: u8 = 19;
const K_SHED: u8 = 20;
const K_DISCONNECT: u8 = 21;

/// Encode a timeliness class as its wire byte.
const fn class_code(class: ChannelClass) -> u8 {
    match class {
        ChannelClass::Hrt => 0,
        ChannelClass::Srt => 1,
        ChannelClass::Nrt => 2,
    }
}

fn class_from(code: u8) -> Result<ChannelClass, WireError> {
    match code {
        0 => Ok(ChannelClass::Hrt),
        1 => Ok(ChannelClass::Srt),
        2 => Ok(ChannelClass::Nrt),
        c => Err(WireError::BadClass(c)),
    }
}

fn header(kind: u8, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
}

/// Encode a client → gateway message.
pub fn encode_to_gateway(msg: &ToGateway) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match msg {
        ToGateway::Hello { subs } => {
            header(K_HELLO, &mut out);
            out.extend_from_slice(&subs.to_le_bytes());
        }
        ToGateway::Subscribe { uid } => {
            header(K_SUBSCRIBE, &mut out);
            out.extend_from_slice(&uid.to_le_bytes());
        }
        ToGateway::Bye => header(K_BYE, &mut out),
    }
    out
}

/// Encode a gateway → client message.
pub fn encode_to_client(msg: &ToClient) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    match msg {
        ToClient::Welcome { client, now_ns } => {
            header(K_WELCOME, &mut out);
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&now_ns.to_le_bytes());
        }
        ToClient::Event(ev) => {
            header(K_EVENT, &mut out);
            out.push(class_code(ev.class));
            out.push(ev.origin);
            out.extend_from_slice(&ev.uid.to_le_bytes());
            out.extend_from_slice(&ev.seq.to_le_bytes());
            out.extend_from_slice(&ev.wire_ns.to_le_bytes());
            out.extend_from_slice(&ev.release_ns.to_le_bytes());
            push_payload(&ev.payload, &mut out);
        }
        ToClient::Batch { entries } => {
            header(K_BATCH, &mut out);
            out.push(entries.len().min(255) as u8);
            for e in entries.iter().take(255) {
                out.push(e.origin);
                out.extend_from_slice(&e.uid.to_le_bytes());
                out.extend_from_slice(&e.seq.to_le_bytes());
                out.extend_from_slice(&e.wire_ns.to_le_bytes());
                push_payload(&e.payload, &mut out);
            }
        }
        ToClient::Frag(fr) => {
            header(K_FRAG, &mut out);
            out.push(fr.origin);
            out.extend_from_slice(&fr.uid.to_le_bytes());
            out.extend_from_slice(&fr.seq.to_le_bytes());
            out.extend_from_slice(&fr.wire_ns.to_le_bytes());
            out.extend_from_slice(&fr.offset.to_le_bytes());
            out.extend_from_slice(&fr.total.to_le_bytes());
            push_payload(&fr.chunk, &mut out);
        }
        ToClient::Shed {
            class,
            reason,
            count,
        } => {
            header(K_SHED, &mut out);
            out.push(class_code(*class));
            out.push(*reason);
            out.extend_from_slice(&count.to_le_bytes());
        }
        ToClient::Disconnect { reason } => {
            header(K_DISCONNECT, &mut out);
            out.push(*reason);
        }
    }
    out
}

/// Append a `u16`-length-prefixed byte string.
///
/// Truncating here would deliver a silently corrupted payload, so an
/// oversized one is a caller bug and panics loudly instead — the
/// gateway fragments NRT bulk and drops un-encodable HRT/SRT events
/// *before* encoding (see `encode_entries` in `crate::gateway`).
fn push_payload(bytes: &[u8], out: &mut Vec<u8>) {
    assert!(
        bytes.len() <= MAX_PAYLOAD,
        "payload of {} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD}); fragment or reject it upstream",
        bytes.len()
    );
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Header check shared by both decoders: returns the kind, the body,
/// and whether the sender's version allows trailing extension bytes.
fn check_header(buf: &[u8]) -> Result<(u8, &[u8], bool), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated(buf.len()));
    }
    if buf[..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[2] < WIRE_VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    Ok((buf[3], &buf[4..], buf[2] > WIRE_VERSION))
}

/// `body` must be exactly `want` bytes — or at least `want` when the
/// sender speaks a newer version (trailing extension bytes tolerated).
fn fixed(kind: u8, body: &[u8], want: usize, tolerant: bool) -> Result<(), WireError> {
    let ok = if tolerant {
        body.len() >= want
    } else {
        body.len() == want
    };
    if ok {
        Ok(())
    } else {
        Err(WireError::BadLength {
            kind,
            got: body.len(),
        })
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Read a `u16`-length-prefixed byte string at `at`; returns the bytes
/// and the offset just past them.
fn take_payload(kind: u8, body: &[u8], at: usize) -> Result<(Vec<u8>, usize), WireError> {
    let err = WireError::BadLength {
        kind,
        got: body.len(),
    };
    if body.len() < at + 2 {
        return Err(err);
    }
    let len = usize::from(le_u16(&body[at..]));
    let end = at + 2 + len;
    if body.len() < end {
        return Err(err);
    }
    Ok((body[at + 2..end].to_vec(), end))
}

/// Decode a client → gateway message.
pub fn decode_to_gateway(buf: &[u8]) -> Result<ToGateway, WireError> {
    let (kind, body, tolerant) = check_header(buf)?;
    match kind {
        K_HELLO => {
            fixed(kind, body, 2, tolerant)?;
            Ok(ToGateway::Hello { subs: le_u16(body) })
        }
        K_SUBSCRIBE => {
            fixed(kind, body, 8, tolerant)?;
            Ok(ToGateway::Subscribe { uid: le_u64(body) })
        }
        K_BYE => {
            fixed(kind, body, 0, tolerant)?;
            Ok(ToGateway::Bye)
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Decode a gateway → client message.
pub fn decode_to_client(buf: &[u8]) -> Result<ToClient, WireError> {
    let (kind, body, tolerant) = check_header(buf)?;
    match kind {
        K_WELCOME => {
            fixed(kind, body, 12, tolerant)?;
            Ok(ToClient::Welcome {
                client: le_u32(body),
                now_ns: le_u64(&body[4..]),
            })
        }
        K_EVENT => {
            // class, origin, uid, seq, wire_ns, release_ns, payload.
            fixed(kind, body, 32, true)?;
            let (payload, end) = take_payload(kind, body, 30)?;
            if !tolerant && end != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Event(EventMsg {
                class: class_from(body[0])?,
                origin: body[1],
                uid: le_u64(&body[2..]),
                seq: le_u32(&body[10..]),
                wire_ns: le_u64(&body[14..]),
                release_ns: le_u64(&body[22..]),
                payload,
            }))
        }
        K_BATCH => {
            fixed(kind, body, 1, true)?;
            let count = usize::from(body[0]);
            let mut entries = Vec::with_capacity(count);
            let mut at = 1;
            for _ in 0..count {
                // origin, uid, seq, wire_ns, payload.
                fixed(kind, body, at + 21, true)?;
                let origin = body[at];
                let uid = le_u64(&body[at + 1..]);
                let seq = le_u32(&body[at + 9..]);
                let wire_ns = le_u64(&body[at + 13..]);
                let (payload, end) = take_payload(kind, body, at + 21)?;
                entries.push(BatchEntry {
                    origin,
                    uid,
                    seq,
                    wire_ns,
                    payload,
                });
                at = end;
            }
            if !tolerant && at != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Batch { entries })
        }
        K_FRAG => {
            // origin, uid, seq, wire_ns, offset, total, chunk.
            fixed(kind, body, 31, true)?;
            let (chunk, end) = take_payload(kind, body, 29)?;
            if !tolerant && end != body.len() {
                return Err(WireError::BadLength {
                    kind,
                    got: body.len(),
                });
            }
            Ok(ToClient::Frag(FragMsg {
                origin: body[0],
                uid: le_u64(&body[1..]),
                seq: le_u32(&body[9..]),
                wire_ns: le_u64(&body[13..]),
                offset: le_u32(&body[21..]),
                total: le_u32(&body[25..]),
                chunk,
            }))
        }
        K_SHED => {
            fixed(kind, body, 6, tolerant)?;
            Ok(ToClient::Shed {
                class: class_from(body[0])?,
                reason: body[1],
                count: le_u32(&body[2..]),
            })
        }
        K_DISCONNECT => {
            fixed(kind, body, 1, tolerant)?;
            Ok(ToClient::Disconnect { reason: body[0] })
        }
        k => Err(WireError::BadKind(k)),
    }
}

/// Write one length-prefixed message to a stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &[u8]) -> io::Result<()> {
    if msg.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "message exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&(msg.len() as u32).to_le_bytes())?;
    w.write_all(msg)
}

/// Read one length-prefixed message from a stream. `Ok(None)` means
/// the peer closed the stream cleanly at a message boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = le_u32(&len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let msg = encode_to_client(&ToClient::Disconnect {
            reason: REASON_SHUTDOWN,
        });
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &msg).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&msg[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&msg[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        let mut bomb = Vec::new();
        bomb.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &bomb[..]).is_err());
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME_LEN + 1]).is_err());
    }

    fn event_with(payload: Vec<u8>) -> ToClient {
        ToClient::Event(EventMsg {
            class: ChannelClass::Hrt,
            origin: 0,
            uid: 1,
            seq: 2,
            wire_ns: 3,
            release_ns: 4,
            payload,
        })
    }

    /// A payload at the documented bound encodes to a single frame the
    /// stream writer accepts, and round-trips intact.
    #[test]
    fn max_payload_event_fits_one_frame() {
        let msg = event_with(vec![0x5A; MAX_PAYLOAD]);
        let bytes = encode_to_client(&msg);
        assert!(bytes.len() <= MAX_FRAME_LEN);
        let mut buf = Vec::new();
        write_frame(&mut buf, &bytes).unwrap();
        assert_eq!(decode_to_client(&bytes).unwrap(), msg);
    }

    /// One byte over the bound panics loudly instead of silently
    /// truncating the payload.
    #[test]
    #[should_panic(expected = "MAX_PAYLOAD")]
    fn oversized_payload_panics_instead_of_truncating() {
        let _ = encode_to_client(&event_with(vec![0x5A; MAX_PAYLOAD + 1]));
    }

    #[test]
    fn misrouted_broker_datagram_fails_on_magic() {
        // "RL..." is the broker protocol, not ours.
        assert_eq!(
            decode_to_client(&[b'R', b'L', 1, 17, 0, 0]),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn version_zero_is_rejected_version_two_tolerates_tail() {
        let mut bytes = encode_to_gateway(&ToGateway::Subscribe { uid: 7 });
        bytes[2] = 0;
        assert_eq!(decode_to_gateway(&bytes), Err(WireError::BadVersion(0)));
        bytes[2] = 2;
        bytes.extend_from_slice(&[0xaa; 5]);
        assert_eq!(
            decode_to_gateway(&bytes),
            Ok(ToGateway::Subscribe { uid: 7 })
        );
    }
}
