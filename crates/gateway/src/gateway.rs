//! The gateway runtime: a cluster [`Behavior`] feeding sharded fanout
//! workers.
//!
//! The gateway joins the live cluster as an ordinary node — it speaks
//! the broker protocol through the same `NodeTransport`, subscribes
//! like any middleware instance, and obeys the lock-step turn
//! discipline. What makes it a gateway is what happens *after*
//! delivery: each delivered event is classified, stamped and handed to
//! one of N fanout workers, chosen by [`Subject::shard_of`] — so all
//! events of one subject are serialized through one worker and
//! per-subject FIFO order costs nothing. Each worker owns the egress
//! state of every client lane it serves (subscription table slice,
//! bounded [`EgressQueue`]s, sinks): no cross-worker locks, and a
//! same-seed run replays every queueing and shedding decision exactly.
//!
//! Workers are spawned through the `rtec_live::sync` facade, so the
//! loom model checker and the srclint C1–C6 rules cover this crate the
//! same way they cover the broker and node threads.

use crate::client::{ClientSinkSpec, SinkDigest, SinkHandle, SinkStatus};
use crate::egress::{
    EgressEntry, EgressQueue, FlushItem, FlushVerdict, LaneStats, PushOutcome, SlowConsumerPolicy,
};
use crate::meter::Stopwatch;
use crate::wire::{
    self, BatchEntry, EventMsg, FragMsg, ToClient, REASON_SHUTDOWN, REASON_SLOW, REASON_STALE,
};
use rtec_core::event::Delivery;
use rtec_core::{ChannelClass, ChannelSpec, Subject};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::sync::{mpsc, thread, Arc, Mutex};
use rtec_sim::{SharedTraceSink, SourceId, Time};
use std::collections::{BTreeMap, HashMap};

/// Cap on wall-latency samples kept per shard (bench accounting only).
const LAT_SAMPLE_CAP: usize = 1 << 14;

/// Gateway construction parameters.
pub struct GatewayConfig {
    /// Fanout worker threads (subjects are sharded across them).
    pub workers: usize,
    /// Bound of each (client, shard) egress queue, in entries.
    pub client_queue_cap: usize,
    /// Most NRT events coalesced into one batch message.
    pub nrt_batch_max: usize,
    /// NRT payloads above this many bytes are fragment-streamed.
    pub frag_chunk: usize,
    /// Depth of each worker's ingress channel (bounded; a full channel
    /// backpressures the gateway node, never drops).
    pub ingress_depth: usize,
    /// Policy for clients that register without one of their own.
    pub default_policy: SlowConsumerPolicy,
    /// Trace sink shared with the cluster (see `Cluster::use_sink`) so
    /// gateway records merge into the audited trace.
    pub sink: SharedTraceSink,
    /// Also emit per-occurrence shed/disconnect records (off by
    /// default: a 10k-client bench would flood a bounded trace ring).
    pub trace_verbose: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            client_queue_cap: 64,
            nrt_batch_max: 8,
            frag_chunk: 256,
            ingress_depth: mpsc::DEFAULT_DEPTH,
            default_policy: SlowConsumerPolicy::ShedNrtFirst,
            sink: SharedTraceSink::disabled(),
            trace_verbose: false,
        }
    }
}

/// What the behavior knows about a bound subject.
#[derive(Clone, Copy, Debug)]
struct SubjectMeta {
    class: ChannelClass,
    /// Off-bus staleness budget: an SRT event delivered at `t` is
    /// stale at `t + stale_ns` (the spec's validity window, re-anchored
    /// at delivery because expiration attributes do not survive the
    /// wire).
    stale_ns: Option<u64>,
}

/// One delivered event, classified and stamped for fanout.
struct IngressEvent {
    uid: u64,
    class: ChannelClass,
    origin: u8,
    seq: u32,
    wire_ns: u64,
    delivered_ns: u64,
    expiry_ns: Option<u64>,
    ingress_wall_ns: u64,
    payload: Vec<u8>,
}

/// Worker mailbox messages.
enum GwMsg {
    Register {
        client: u32,
        uids: Vec<u64>,
        sink: SinkHandle,
        policy: SlowConsumerPolicy,
    },
    Event(Box<IngressEvent>),
    Shutdown,
}

/// Per-shard counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events received from the bus node.
    pub ingress: u64,
    /// (event, lane) deliveries attempted.
    pub fanout: u64,
    /// Lanes torn down by a slow-consumer policy.
    pub disconnects: u64,
    /// Entries still queued when the lane ended.
    pub undelivered: u64,
    /// HRT/SRT events dropped because their payload cannot be encoded
    /// in a single wire frame (only NRT fragments — see
    /// [`wire::MAX_PAYLOAD`]).
    pub oversized: u64,
}

/// Outcome of one (client, shard) lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneReport {
    /// Client id.
    pub client: u32,
    /// Shard that served this lane.
    pub shard: usize,
    /// Queue counters.
    pub stats: LaneStats,
    /// Delivery fingerprint, for sinks that keep one.
    pub digest: Option<SinkDigest>,
    /// The lane was torn down (policy disconnect or dead sink).
    pub gone: bool,
}

/// What one worker hands back at shutdown.
struct ShardReport {
    shard: usize,
    stats: ShardStats,
    lanes: Vec<LaneReport>,
    latencies_ns: Vec<u64>,
}

/// Whole-gateway aggregate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Events received from the bus node (summed over shards).
    pub ingress: u64,
    /// (event, lane) deliveries attempted.
    pub fanout: u64,
    /// Messages accepted by client sinks.
    pub delivered_msgs: u64,
    /// HRT events delivered.
    pub delivered_hrt: u64,
    /// SRT events delivered.
    pub delivered_srt: u64,
    /// NRT events/fragments delivered.
    pub delivered_nrt: u64,
    /// NRT entries shed under pressure.
    pub shed_nrt: u64,
    /// SRT entries dropped stale.
    pub shed_srt_stale: u64,
    /// SRT entries shed under pressure.
    pub shed_srt_cap: u64,
    /// Entries coalesced to a newer same-subject event.
    pub coalesced: u64,
    /// NRT batch messages sent.
    pub batches: u64,
    /// Fragment messages sent.
    pub fragments: u64,
    /// Lanes torn down.
    pub disconnects: u64,
    /// Entries discarded at lane end.
    pub undelivered: u64,
    /// Un-encodable HRT/SRT bulk events dropped at ingress.
    pub oversized: u64,
    /// Highest queue occupancy any lane reached (bounded-memory
    /// witness: never exceeds the configured cap).
    pub peak_lane_occupancy: usize,
}

impl GatewayStats {
    /// Every event shed for backpressure or staleness.
    pub fn shed_total(&self) -> u64 {
        self.shed_nrt + self.shed_srt_stale + self.shed_srt_cap
    }
}

/// Everything a finished gateway yields.
#[derive(Clone, Debug, Default)]
pub struct GatewayReport {
    /// Aggregate counters.
    pub stats: GatewayStats,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-lane outcomes, sorted by (client, shard). Lane digests are
    /// the determinism contract: same seed ⇒ byte-identical.
    pub lanes: Vec<LaneReport>,
    /// Client-observed wall latencies (ingress → sink accept), sorted.
    /// Wall-clock, so *not* part of the determinism contract.
    pub latencies_ns: Vec<u64>,
}

struct Inner {
    workers: usize,
    default_policy: SlowConsumerPolicy,
    senders: Mutex<Option<Vec<mpsc::SyncSender<GwMsg>>>>,
    handles: Mutex<Option<Vec<thread::JoinHandle<ShardReport>>>>,
    next_client: Mutex<u32>,
    meta: Mutex<HashMap<u64, SubjectMeta>>,
    sw: Stopwatch,
}

/// Handle to a running gateway (cheap to clone; all clones address the
/// same worker pool).
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<Inner>,
}

impl Gateway {
    /// Spawn the fanout workers and return the gateway handle.
    pub fn new(cfg: GatewayConfig) -> Gateway {
        let workers = cfg.workers.max(1);
        let sw = Stopwatch::start();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = mpsc::bounded(cfg.ingress_depth.max(1));
            let mut state = WorkerState {
                shard,
                cap: cfg.client_queue_cap.max(1),
                batch_max: cfg.nrt_batch_max.max(1),
                // Clamped so every fragment still fits a wire frame.
                frag_chunk: cfg.frag_chunk.clamp(1, wire::MAX_PAYLOAD),
                trace_verbose: cfg.trace_verbose,
                subs: HashMap::new(),
                lanes: HashMap::new(),
                watermark_ns: 0,
                stats: ShardStats::default(),
                latencies_ns: Vec::new(),
                sw,
                trace: cfg.sink.clone(),
                src: cfg.sink.intern(&format!("gateway.shard{shard}")),
            };
            let handle = thread::Builder::new()
                .name(format!("gw-shard-{shard}"))
                .spawn(move || {
                    loop {
                        match rx.recv() {
                            Ok(GwMsg::Register {
                                client,
                                uids,
                                sink,
                                policy,
                            }) => state.register(client, uids, sink, policy),
                            Ok(GwMsg::Event(ev)) => state.on_event(&ev),
                            Ok(GwMsg::Shutdown) | Err(_) => break,
                        }
                    }
                    state.finish()
                })
                .expect("spawn gateway fanout worker");
            senders.push(tx);
            handles.push(handle);
        }
        Gateway {
            inner: Arc::new(Inner {
                workers,
                default_policy: cfg.default_policy,
                senders: Mutex::new(Some(senders)),
                handles: Mutex::new(Some(handles)),
                next_client: Mutex::new(0),
                meta: Mutex::new(HashMap::new()),
                sw,
            }),
        }
    }

    /// Declare a subject the gateway re-publishes, with the channel
    /// attributes it is bound to on the bus (mirror of the cluster's
    /// `subscribe` for the gateway node). Must precede
    /// [`Gateway::behavior`].
    pub fn bind(&self, subject: Subject, spec: &ChannelSpec) {
        let stale_ns = match spec {
            ChannelSpec::Srt(s) => s.default_expiration.map(|d| d.as_ns()),
            _ => None,
        };
        self.inner
            .meta
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                subject.uid(),
                SubjectMeta {
                    class: spec.class(),
                    stale_ns,
                },
            );
    }

    /// Number of fanout workers (shards).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Register a client subscribed to `subjects`; returns its id.
    ///
    /// Equivalent to [`Gateway::reserve_client`] followed by
    /// [`Gateway::register_client`], for callers with no handshake to
    /// order against fanout.
    pub fn add_client(
        &self,
        subjects: &[Subject],
        spec: &ClientSinkSpec,
        policy: Option<SlowConsumerPolicy>,
    ) -> u32 {
        let client = self.reserve_client();
        self.register_client(client, subjects, spec, policy);
        client
    }

    /// Mint a client id without registering any lane — nothing is
    /// delivered to the client yet. Lets a transport finish its
    /// handshake (e.g. write `Welcome` carrying the id) before any
    /// fanout worker can write to the client's sink.
    pub fn reserve_client(&self) -> u32 {
        let mut next = self
            .inner
            .next_client
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let id = *next;
        *next += 1;
        id
    }

    /// Register a reserved client's subscriptions; delivery starts now.
    ///
    /// The subscription set is split by shard; each involved worker
    /// gets a `Register` message and mints the lane's sink from
    /// `spec`. With no `policy` the gateway default applies.
    pub fn register_client(
        &self,
        client: u32,
        subjects: &[Subject],
        spec: &ClientSinkSpec,
        policy: Option<SlowConsumerPolicy>,
    ) {
        let policy = policy.unwrap_or(self.inner.default_policy);
        let mut by_shard: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for s in subjects {
            by_shard
                .entry(s.shard_of(self.inner.workers))
                .or_default()
                .push(s.uid());
        }
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(senders) = senders.as_ref() {
            for (shard, uids) in by_shard {
                let sink = spec.instantiate(client, shard);
                let _ = senders[shard].send(GwMsg::Register {
                    client,
                    uids,
                    sink,
                    policy,
                });
            }
        }
    }

    /// The cluster behavior for the gateway node. Bind every subject
    /// first ([`Gateway::bind`]); deliveries for unbound subjects are
    /// ignored.
    pub fn behavior(&self) -> Box<dyn Behavior> {
        let senders = self
            .inner
            .senders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_default();
        let meta = self
            .inner
            .meta
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Box::new(GatewayBehavior {
            senders,
            meta,
            seqs: HashMap::new(),
            workers: self.inner.workers,
            sw: self.inner.sw,
        })
    }

    /// Shut the workers down (flushing what their sinks will still
    /// take) and collect the report. Idempotent: a second call returns
    /// an empty report.
    pub fn finish(&self) -> GatewayReport {
        if let Some(senders) = self
            .inner
            .senders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            for tx in &senders {
                let _ = tx.send(GwMsg::Shutdown);
            }
        }
        let handles = self
            .inner
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_default();
        let mut shards: Vec<ShardReport> = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok(report) => shards.push(report),
                Err(_) => continue, // a panicked worker contributes nothing
            }
        }
        shards.sort_by_key(|s| s.shard);
        let mut out = GatewayReport::default();
        for sr in shards {
            out.stats.ingress += sr.stats.ingress;
            out.stats.fanout += sr.stats.fanout;
            out.stats.disconnects += sr.stats.disconnects;
            out.stats.undelivered += sr.stats.undelivered;
            out.stats.oversized += sr.stats.oversized;
            out.shards.push(sr.stats);
            out.latencies_ns.extend(sr.latencies_ns);
            for lane in sr.lanes {
                out.stats.delivered_msgs += lane.stats.delivered_msgs;
                out.stats.delivered_hrt += lane.stats.delivered_hrt;
                out.stats.delivered_srt += lane.stats.delivered_srt;
                out.stats.delivered_nrt += lane.stats.delivered_nrt;
                out.stats.shed_nrt += lane.stats.shed_nrt;
                out.stats.shed_srt_stale += lane.stats.shed_srt_stale;
                out.stats.shed_srt_cap += lane.stats.shed_srt_cap;
                out.stats.coalesced += lane.stats.coalesced;
                out.stats.batches += lane.stats.batches;
                out.stats.fragments += lane.stats.fragments;
                out.stats.peak_lane_occupancy = out.stats.peak_lane_occupancy.max(lane.stats.peak);
                out.lanes.push(lane);
            }
        }
        out.lanes.sort_by_key(|l| (l.client, l.shard));
        out.latencies_ns.sort_unstable();
        out
    }
}

/// The gateway node's cluster behavior: classify, stamp, shard.
struct GatewayBehavior {
    senders: Vec<mpsc::SyncSender<GwMsg>>,
    meta: HashMap<u64, SubjectMeta>,
    seqs: HashMap<u64, u32>,
    workers: usize,
    sw: Stopwatch,
}

impl Behavior for GatewayBehavior {
    fn on_delivery(&mut self, _ctx: &mut NodeCtx<'_>, delivery: &Delivery) {
        let uid = delivery.event.subject.uid();
        let Some(meta) = self.meta.get(&uid) else {
            return;
        };
        let seq = {
            let s = self.seqs.entry(uid).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        let delivered_ns = delivery.delivered_at.as_ns();
        let ev = IngressEvent {
            uid,
            class: meta.class,
            origin: delivery.event.attributes.origin.map_or(255, |n| n.0),
            seq,
            wire_ns: delivery.wire_completed_at.as_ns(),
            delivered_ns,
            expiry_ns: meta.stale_ns.map(|s| delivered_ns.saturating_add(s)),
            ingress_wall_ns: self.sw.elapsed_ns(),
            payload: delivery.event.content.clone(),
        };
        let shard = Subject::new(uid).shard_of(self.workers);
        // A full shard channel backpressures the node's turn — the bus
        // stalls in wall time, never in bus time, and nothing drops.
        let _ = self.senders[shard].send(GwMsg::Event(Box::new(ev)));
    }
}

/// One client's egress state on one shard.
struct Lane {
    client: u32,
    queue: EgressQueue,
    sink: SinkHandle,
    policy: SlowConsumerPolicy,
    gone: bool,
}

/// All of one fanout worker's state; owned by its thread.
struct WorkerState {
    shard: usize,
    cap: usize,
    batch_max: usize,
    /// NRT payloads above this many bytes are fragment-streamed
    /// (config value, clamped to [`wire::MAX_PAYLOAD`]).
    frag_chunk: usize,
    trace_verbose: bool,
    subs: HashMap<u64, Vec<u32>>,
    lanes: HashMap<u32, Lane>,
    watermark_ns: u64,
    stats: ShardStats,
    latencies_ns: Vec<u64>,
    sw: Stopwatch,
    trace: SharedTraceSink,
    src: SourceId,
}

impl WorkerState {
    fn register(
        &mut self,
        client: u32,
        uids: Vec<u64>,
        sink: SinkHandle,
        policy: SlowConsumerPolicy,
    ) {
        for uid in uids {
            let subs = self.subs.entry(uid).or_default();
            if !subs.contains(&client) {
                subs.push(client);
            }
        }
        self.lanes.entry(client).or_insert_with(|| Lane {
            client,
            queue: EgressQueue::new(self.cap),
            sink,
            policy,
            gone: false,
        });
    }

    fn on_event(&mut self, ev: &IngressEvent) {
        self.watermark_ns = self.watermark_ns.max(ev.delivered_ns);
        self.stats.ingress += 1;
        let subscribers = match self.subs.get(&ev.uid) {
            Some(v) if !v.is_empty() => v.clone(),
            _ => return,
        };
        let entries = encode_entries(ev, self.frag_chunk);
        if entries.is_empty() {
            // An HRT/SRT payload no single wire frame can carry:
            // encoding it truncated or oversized would corrupt the
            // client stream, so it is dropped here, counted and traced.
            self.stats.oversized += 1;
            self.trace.emit_fields(
                Time::from_ns(ev.delivered_ns),
                self.src,
                "gw_oversize",
                &[
                    ("uid", ev.uid),
                    ("class", class_field(ev.class)),
                    ("len", ev.payload.len() as u64),
                ],
            );
            return;
        }
        self.stats.fanout += subscribers.len() as u64;
        self.trace.emit_fields(
            Time::from_ns(ev.delivered_ns),
            self.src,
            "gw_fanout",
            &[
                ("uid", ev.uid),
                ("class", class_field(ev.class)),
                ("subs", subscribers.len() as u64),
            ],
        );
        for client in subscribers {
            let Some(lane) = self.lanes.get_mut(&client) else {
                continue;
            };
            if lane.gone {
                continue;
            }
            let before = shed_counts(&lane.queue.stats);
            let mut disconnect = false;
            for entry in &entries {
                match lane
                    .queue
                    .push(entry.clone(), lane.policy, self.watermark_ns)
                {
                    PushOutcome::Queued | PushOutcome::Shed => {}
                    PushOutcome::Disconnect => {
                        disconnect = true;
                        break;
                    }
                }
            }
            if disconnect {
                let _ = lane
                    .sink
                    .offer(&wire::encode_to_client(&ToClient::Disconnect {
                        reason: REASON_SLOW,
                    }));
                lane.gone = true;
                lane.queue.stats.peak = lane.queue.stats.peak.max(lane.queue.len());
                self.stats.undelivered += lane.queue.drain_remaining() as u64;
                self.stats.disconnects += 1;
                if self.trace_verbose {
                    self.trace.emit_fields(
                        Time::from_ns(ev.delivered_ns),
                        self.src,
                        "gw_disconnect",
                        &[
                            ("client", u64::from(client)),
                            ("reason", u64::from(REASON_SLOW)),
                        ],
                    );
                }
                continue;
            }
            notify_sheds(
                lane,
                before,
                ev.delivered_ns,
                self.trace_verbose,
                &self.trace,
                self.src,
            );
            flush_lane(
                lane,
                self.watermark_ns,
                self.batch_max,
                &self.sw,
                &mut self.latencies_ns,
            );
            if lane.gone {
                self.stats.undelivered += lane.queue.drain_remaining() as u64;
                self.stats.disconnects += 1;
            }
        }
    }

    fn finish(mut self) -> ShardReport {
        let mut clients: Vec<u32> = self.lanes.keys().copied().collect();
        clients.sort_unstable();
        let mut lanes = Vec::with_capacity(clients.len());
        for client in clients {
            let Some(mut lane) = self.lanes.remove(&client) else {
                continue;
            };
            if !lane.gone {
                // Last call: drain what the sink will still take, then
                // say goodbye.
                flush_lane(
                    &mut lane,
                    u64::MAX,
                    self.batch_max,
                    &self.sw,
                    &mut self.latencies_ns,
                );
                let _ = lane
                    .sink
                    .offer(&wire::encode_to_client(&ToClient::Disconnect {
                        reason: REASON_SHUTDOWN,
                    }));
            }
            self.stats.undelivered += lane.queue.drain_remaining() as u64;
            lanes.push(LaneReport {
                client: lane.client,
                shard: self.shard,
                stats: lane.queue.stats,
                digest: lane.sink.digest(),
                gone: lane.gone,
            });
        }
        let delivered: u64 = lanes.iter().map(|l| l.stats.delivered_msgs).sum();
        let shed: u64 = lanes
            .iter()
            .map(|l| l.stats.shed_nrt + l.stats.shed_srt_stale + l.stats.shed_srt_cap)
            .sum();
        self.trace.emit_fields(
            Time::from_ns(self.watermark_ns),
            self.src,
            "gw_shard",
            &[
                ("shard", self.shard as u64),
                ("ingress", self.stats.ingress),
                ("fanout", self.stats.fanout),
                ("delivered", delivered),
                ("shed", shed),
                ("disconnects", self.stats.disconnects),
            ],
        );
        ShardReport {
            shard: self.shard,
            stats: self.stats,
            lanes,
            latencies_ns: self.latencies_ns,
        }
    }
}

/// `(shed-NRT, cap-shed-SRT, stale-SRT)` snapshot for delta notices.
fn shed_counts(stats: &LaneStats) -> (u64, u64, u64) {
    (stats.shed_nrt, stats.shed_srt_cap, stats.shed_srt_stale)
}

/// Offer best-effort `Shed` notices covering what the last push round
/// dropped, so clients observe the gap instead of silence — one notice
/// per (class, reason), so an SRT pressure shed is never reported as
/// NRT.
fn notify_sheds(
    lane: &mut Lane,
    before: (u64, u64, u64),
    at_ns: u64,
    verbose: bool,
    trace: &SharedTraceSink,
    src: SourceId,
) {
    let (nrt, srt_cap, srt_stale) = shed_counts(&lane.queue.stats);
    for (count, class, reason) in [
        (nrt - before.0, ChannelClass::Nrt, REASON_SLOW),
        (srt_cap - before.1, ChannelClass::Srt, REASON_SLOW),
        (srt_stale - before.2, ChannelClass::Srt, REASON_STALE),
    ] {
        if count == 0 {
            continue;
        }
        let _ = lane.sink.offer(&wire::encode_to_client(&ToClient::Shed {
            class,
            reason,
            count: count.min(u64::from(u32::MAX)) as u32,
        }));
        if verbose {
            trace.emit_fields(
                Time::from_ns(at_ns),
                src,
                "gw_shed",
                &[
                    ("client", u64::from(lane.client)),
                    ("class", class_field(class)),
                    ("reason", u64::from(reason)),
                    ("count", count),
                ],
            );
        }
    }
}

/// Drain a lane into its sink, recording accept latencies.
fn flush_lane(
    lane: &mut Lane,
    watermark: u64,
    batch_max: usize,
    sw: &Stopwatch,
    latencies: &mut Vec<u64>,
) {
    let Lane {
        queue, sink, gone, ..
    } = lane;
    let alive = queue.flush(watermark, batch_max, |item| {
        let (bytes, stamps): (std::borrow::Cow<'_, [u8]>, Vec<u64>) = match &item {
            FlushItem::Single(e) => (
                std::borrow::Cow::Borrowed(e.encoded.as_slice()),
                vec![e.ingress_wall_ns],
            ),
            FlushItem::Batch(es) => {
                let msg = ToClient::Batch {
                    entries: es
                        .iter()
                        .map(|e| BatchEntry {
                            origin: e.origin,
                            uid: e.uid,
                            seq: e.seq,
                            wire_ns: e.wire_ns,
                            payload: e.payload.as_ref().clone(),
                        })
                        .collect(),
                };
                (
                    std::borrow::Cow::Owned(wire::encode_to_client(&msg)),
                    es.iter().map(|e| e.ingress_wall_ns).collect(),
                )
            }
        };
        match sink.offer(&bytes) {
            SinkStatus::Accepted => {
                let now = sw.elapsed_ns();
                for stamp in stamps {
                    if latencies.len() < LAT_SAMPLE_CAP {
                        latencies.push(now.saturating_sub(stamp));
                    }
                }
                FlushVerdict::Taken
            }
            SinkStatus::Busy => FlushVerdict::Blocked,
            SinkStatus::Gone => FlushVerdict::Lost,
        }
    });
    if !alive {
        *gone = true;
    }
}

/// Timeliness class as a trace field value.
fn class_field(class: ChannelClass) -> u64 {
    match class {
        ChannelClass::Hrt => 0,
        ChannelClass::Srt => 1,
        ChannelClass::Nrt => 2,
    }
}

/// Pre-encode an ingress event into the entries every subscribed lane
/// will queue: one `Event` message, or a fragment stream for NRT bulk.
///
/// Never truncates: an NRT payload above `frag_chunk` bytes is split
/// into fragments, and an HRT/SRT payload no single frame can carry
/// ([`wire::MAX_PAYLOAD`]) yields an *empty* vec — the caller drops
/// the event explicitly instead of corrupting the stream.
fn encode_entries(ev: &IngressEvent, frag_chunk: usize) -> Vec<EgressEntry> {
    let base = EgressEntry {
        class: ev.class,
        uid: ev.uid,
        origin: ev.origin,
        seq: ev.seq,
        wire_ns: ev.wire_ns,
        release_ns: ev.delivered_ns,
        expiry_ns: ev.expiry_ns,
        ingress_wall_ns: ev.ingress_wall_ns,
        payload: Arc::new(Vec::new()),
        encoded: Arc::new(Vec::new()),
        frag: false,
    };
    if ev.class != ChannelClass::Nrt && ev.payload.len() > wire::MAX_PAYLOAD {
        return Vec::new();
    }
    if ev.class != ChannelClass::Nrt || ev.payload.len() <= frag_chunk {
        let payload = Arc::new(ev.payload.clone());
        let encoded = Arc::new(wire::encode_to_client(&ToClient::Event(EventMsg {
            class: ev.class,
            origin: ev.origin,
            uid: ev.uid,
            seq: ev.seq,
            wire_ns: ev.wire_ns,
            release_ns: ev.delivered_ns,
            payload: ev.payload.clone(),
        })));
        return vec![EgressEntry {
            payload,
            encoded,
            ..base
        }];
    }
    let total = ev.payload.len() as u32;
    ev.payload
        .chunks(frag_chunk)
        .enumerate()
        .map(|(i, chunk)| {
            let encoded = Arc::new(wire::encode_to_client(&ToClient::Frag(FragMsg {
                origin: ev.origin,
                uid: ev.uid,
                seq: ev.seq,
                wire_ns: ev.wire_ns,
                offset: (i * frag_chunk) as u32,
                total,
                chunk: chunk.to_vec(),
            })));
            EgressEntry {
                payload: Arc::new(chunk.to_vec()),
                encoded,
                frag: true,
                ..base.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSink;
    use crate::client::SinkStatus;

    fn ev(class: ChannelClass, len: usize) -> IngressEvent {
        IngressEvent {
            uid: 1,
            class,
            origin: 0,
            seq: 0,
            wire_ns: 0,
            delivered_ns: 0,
            expiry_ns: None,
            ingress_wall_ns: 0,
            payload: vec![0xAB; len],
        }
    }

    /// The configured fragment threshold is what `encode_entries`
    /// actually chunks by — not a hardcoded constant.
    #[test]
    fn configured_frag_chunk_is_honored() {
        let entries = encode_entries(&ev(ChannelClass::Nrt, 100), 40);
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.frag));
        assert_eq!(entries[0].payload.len(), 40);
        assert_eq!(entries[2].payload.len(), 20);
        let single = encode_entries(&ev(ChannelClass::Nrt, 100), 256);
        assert_eq!(single.len(), 1);
        assert!(!single[0].frag);
    }

    /// An HRT/SRT payload no single frame can carry yields no entries
    /// (the worker drops and counts it); the same payload as NRT bulk
    /// fragments instead. Nothing is ever truncated.
    #[test]
    fn oversized_hrt_is_rejected_not_truncated() {
        let over = wire::MAX_PAYLOAD + 1;
        assert!(encode_entries(&ev(ChannelClass::Hrt, over), 256).is_empty());
        assert!(encode_entries(&ev(ChannelClass::Srt, over), 256).is_empty());
        assert_eq!(
            encode_entries(&ev(ChannelClass::Hrt, wire::MAX_PAYLOAD), 256).len(),
            1
        );
        let frags = encode_entries(&ev(ChannelClass::Nrt, over), 256);
        assert!(frags.len() > 1);
        assert_eq!(
            frags.iter().map(|e| e.payload.len()).sum::<usize>(),
            over,
            "fragments must cover the payload exactly"
        );
    }

    /// Shed notices carry the class of what was actually shed: an SRT
    /// pressure shed is reported as SRT, never lumped in as NRT.
    #[test]
    fn shed_notices_carry_the_shed_class() {
        struct Rec(Arc<Mutex<Vec<ToClient>>>);
        impl ClientSink for Rec {
            fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
                let msg = wire::decode_to_client(bytes).expect("undecodable notice");
                self.0.lock().unwrap_or_else(|e| e.into_inner()).push(msg);
                SinkStatus::Accepted
            }
        }
        let msgs = Arc::new(Mutex::new(Vec::new()));
        let mut lane = Lane {
            client: 0,
            queue: EgressQueue::new(4),
            sink: SinkHandle::Own(Box::new(Rec(Arc::clone(&msgs)))),
            policy: SlowConsumerPolicy::ShedNrtFirst,
            gone: false,
        };
        let before = shed_counts(&lane.queue.stats);
        lane.queue.stats.shed_nrt += 3;
        lane.queue.stats.shed_srt_cap += 2;
        lane.queue.stats.shed_srt_stale += 1;
        let sink = SharedTraceSink::disabled();
        let src = sink.intern("test");
        notify_sheds(&mut lane, before, 0, false, &sink, src);
        let got = msgs.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(
            got,
            vec![
                ToClient::Shed {
                    class: ChannelClass::Nrt,
                    reason: REASON_SLOW,
                    count: 3
                },
                ToClient::Shed {
                    class: ChannelClass::Srt,
                    reason: REASON_SLOW,
                    count: 2
                },
                ToClient::Shed {
                    class: ChannelClass::Srt,
                    reason: REASON_STALE,
                    count: 1
                },
            ]
        );
    }
}
