//! The gateway runtime: a cluster [`Behavior`] feeding sharded fanout
//! workers.
//!
//! The gateway joins the live cluster as an ordinary node — it speaks
//! the broker protocol through the same `NodeTransport`, subscribes
//! like any middleware instance, and obeys the lock-step turn
//! discipline. What makes it a gateway is what happens *after*
//! delivery: each delivered event is classified, stamped and handed to
//! one of N fanout workers, chosen by [`Subject::shard_of`] — so all
//! events of one subject are serialized through one worker and
//! per-subject FIFO order costs nothing. Each worker owns the egress
//! state of every client lane it serves (subscription table slice,
//! bounded [`EgressQueue`]s, sinks): no cross-worker locks, and a
//! same-seed run replays every queueing and shedding decision exactly.
//!
//! # Sessions and crash tolerance
//!
//! A v2 client's session outlives its connection. When a sink dies
//! (severed TCP link, killed client), the lane is *detached in place*:
//! it stays inside its worker, keeps queueing events under its normal
//! policies (so SRT still sheds stale, HRT is never dropped), and the
//! session table remembers it for a bus-time TTL. A resuming client
//! presents its token and per-class receive watermarks; the gateway
//! replays exactly the in-flight suffix from the session's bounded
//! replay ring (see `session.rs` for the per-class rules), reattaches
//! every lane, and flushes what queued while the client was away. A
//! gateway-*node* crash takes none of this down: the worker pool and
//! session table live outside the node behavior, so the supervisor
//! restarts the bus node and external clients resume against the new
//! incarnation.
//!
//! Workers are spawned through the `rtec_live::sync` facade, so the
//! loom model checker and the srclint C1–C6 rules cover this crate the
//! same way they cover the broker and node threads.

use crate::client::{ClientSink, ClientSinkSpec, SinkDigest, SinkHandle, SinkStatus};
use crate::egress::{
    EgressEntry, EgressQueue, FlushItem, FlushVerdict, LaneStats, PushOutcome, SlowConsumerPolicy,
};
use crate::meter::Stopwatch;
use crate::session::{compute_replay, ResumeClaim, SessionCore, SessionSink, SessionStore};
use crate::wire::{self, BatchEntry, ClassWatermarks, EventMsg, FragMsg, Reason, ToClient};
use rtec_core::event::Delivery;
use rtec_core::{ChannelClass, ChannelSpec, Subject};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rtec_live::sync::{mpsc, thread, Arc, Mutex};
use rtec_sim::{SharedTraceSink, SourceId, Time};
use std::collections::{BTreeMap, HashMap};

pub use crate::session::SessionStats;
pub use crate::wire::ResumeVerdict;

/// Cap on wall-latency samples kept per shard (bench accounting only).
const LAT_SAMPLE_CAP: usize = 1 << 14;

/// Bounded `Busy` retries while replaying a resume suffix; a sink that
/// stays busy this long is treated as dead and the resume aborts.
const RESUME_OFFER_RETRIES: usize = 1 << 12;

/// Gateway construction parameters.
pub struct GatewayConfig {
    /// Fanout worker threads (subjects are sharded across them).
    pub workers: usize,
    /// Bound of each (client, shard) egress queue, in entries.
    pub client_queue_cap: usize,
    /// Most NRT events coalesced into one batch message.
    pub nrt_batch_max: usize,
    /// NRT payloads above this many bytes are fragment-streamed.
    pub frag_chunk: usize,
    /// Depth of each worker's ingress channel (bounded; a full channel
    /// backpressures the gateway node, never drops).
    pub ingress_depth: usize,
    /// Policy for clients that register without one of their own.
    pub default_policy: SlowConsumerPolicy,
    /// How long (bus time) a detached session stays resumable.
    pub session_ttl_ns: u64,
    /// Per-class replay ring bound, in frames. Misses beyond it become
    /// explicit `Gap` notices at resume.
    pub resume_ring_cap: usize,
    /// Trace sink shared with the cluster (see `Cluster::use_sink`) so
    /// gateway records merge into the audited trace.
    pub sink: SharedTraceSink,
    /// Also emit per-occurrence shed/disconnect records (off by
    /// default: a 10k-client bench would flood a bounded trace ring).
    pub trace_verbose: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            client_queue_cap: 64,
            nrt_batch_max: 8,
            frag_chunk: 256,
            ingress_depth: mpsc::DEFAULT_DEPTH,
            default_policy: SlowConsumerPolicy::ShedNrtFirst,
            session_ttl_ns: 1_000_000_000,
            resume_ring_cap: 128,
            sink: SharedTraceSink::disabled(),
            trace_verbose: false,
        }
    }
}

/// What the behavior knows about a bound subject.
#[derive(Clone, Copy, Debug)]
struct SubjectMeta {
    class: ChannelClass,
    /// Off-bus staleness budget: an SRT event delivered at `t` is
    /// stale at `t + stale_ns` (the spec's validity window, re-anchored
    /// at delivery because expiration attributes do not survive the
    /// wire).
    stale_ns: Option<u64>,
}

/// One delivered event, classified and stamped for fanout.
struct IngressEvent {
    uid: u64,
    class: ChannelClass,
    origin: u8,
    seq: u32,
    wire_ns: u64,
    delivered_ns: u64,
    expiry_ns: Option<u64>,
    ingress_wall_ns: u64,
    payload: Vec<u8>,
}

/// The client watermarks a resume repairs against: known up front (the
/// wire handshake carries them), or resolved by the designated worker
/// at its FIFO point — after the deregister that precedes it, when the
/// old sink is dead and the counters are frozen — which is what makes
/// a simulated resume deterministic.
pub enum WmSource {
    /// The watermarks as the client reported them.
    Known(ClassWatermarks),
    /// Resolve on the worker thread, at the resume's queue position.
    Deferred(Box<dyn FnOnce() -> ClassWatermarks + Send>),
}

/// Everything the designated shard needs to run one resume.
struct ResumeMsg {
    client: u32,
    incarnation: u32,
    uids: Vec<u64>,
    core: Arc<Mutex<SessionCore>>,
    wm: WmSource,
    /// Bus-time high-water mark captured at the caller — deterministic
    /// when the caller is the gateway behavior thread.
    now_ns: u64,
    shared: Arc<Mutex<Box<dyn ClientSink>>>,
    policy: SlowConsumerPolicy,
    gate: Arc<AtomicBool>,
}

/// Worker mailbox messages.
enum GwMsg {
    Register {
        client: u32,
        uids: Vec<u64>,
        sink: SinkHandle,
        policy: SlowConsumerPolicy,
        /// Connection incarnation this sink belongs to; stale messages
        /// (older incarnation than the lane's) are ignored.
        incarnation: u32,
        /// When set, hold the reattach until the designated shard has
        /// finished replaying — fresh flushes must not overtake the
        /// replayed suffix on the shared stream.
        gate: Option<Arc<AtomicBool>>,
    },
    Deregister {
        client: u32,
        /// `true` parks the lane (detach in place, session resumable);
        /// `false` tears it down for good.
        park: bool,
        incarnation: u32,
    },
    Resume(Box<ResumeMsg>),
    Event(Box<IngressEvent>),
    Shutdown,
}

/// Per-shard counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events received from the bus node.
    pub ingress: u64,
    /// (event, lane) deliveries attempted.
    pub fanout: u64,
    /// Lanes torn down by a slow-consumer policy.
    pub disconnects: u64,
    /// Entries still queued when the lane ended.
    pub undelivered: u64,
    /// HRT/SRT events dropped because their payload cannot be encoded
    /// in a single wire frame (only NRT fragments — see
    /// [`wire::MAX_PAYLOAD`]).
    pub oversized: u64,
}

/// Outcome of one (client, shard) lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneReport {
    /// Client id.
    pub client: u32,
    /// Shard that served this lane.
    pub shard: usize,
    /// Queue counters.
    pub stats: LaneStats,
    /// Delivery fingerprint, for sinks that keep one.
    pub digest: Option<SinkDigest>,
    /// The lane was torn down (policy disconnect or dead sink).
    pub gone: bool,
}

/// What one worker hands back at shutdown.
struct ShardReport {
    shard: usize,
    stats: ShardStats,
    lanes: Vec<LaneReport>,
    latencies_ns: Vec<u64>,
}

/// Whole-gateway aggregate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Events received from the bus node (summed over shards).
    pub ingress: u64,
    /// (event, lane) deliveries attempted.
    pub fanout: u64,
    /// Messages accepted by client sinks.
    pub delivered_msgs: u64,
    /// HRT events delivered.
    pub delivered_hrt: u64,
    /// SRT events delivered.
    pub delivered_srt: u64,
    /// NRT events/fragments delivered.
    pub delivered_nrt: u64,
    /// NRT entries shed under pressure.
    pub shed_nrt: u64,
    /// SRT entries dropped stale.
    pub shed_srt_stale: u64,
    /// SRT entries shed under pressure.
    pub shed_srt_cap: u64,
    /// Entries coalesced to a newer same-subject event.
    pub coalesced: u64,
    /// NRT batch messages sent.
    pub batches: u64,
    /// Fragment messages sent.
    pub fragments: u64,
    /// Lanes torn down.
    pub disconnects: u64,
    /// Entries discarded at lane end.
    pub undelivered: u64,
    /// Un-encodable HRT/SRT bulk events dropped at ingress.
    pub oversized: u64,
    /// Highest queue occupancy any lane reached (bounded-memory
    /// witness: never exceeds the configured cap).
    pub peak_lane_occupancy: usize,
}

impl GatewayStats {
    /// Every event shed for backpressure or staleness.
    pub fn shed_total(&self) -> u64 {
        self.shed_nrt + self.shed_srt_stale + self.shed_srt_cap
    }
}

/// Everything a finished gateway yields.
#[derive(Clone, Debug, Default)]
pub struct GatewayReport {
    /// Aggregate counters.
    pub stats: GatewayStats,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-lane outcomes, sorted by (client, shard). Lane digests are
    /// the determinism contract: same seed ⇒ byte-identical.
    pub lanes: Vec<LaneReport>,
    /// Client-observed wall latencies (ingress → sink accept), sorted.
    /// Wall-clock, so *not* part of the determinism contract.
    pub latencies_ns: Vec<u64>,
    /// Session lifecycle and replay counters.
    pub sessions: SessionStats,
    /// Wall-clock resume durations (replay start → lane reattached).
    /// Wall-clock, so *not* part of the determinism contract.
    pub resume_wall_ns: Vec<u64>,
}

struct Inner {
    workers: usize,
    default_policy: SlowConsumerPolicy,
    senders: Mutex<Option<Vec<mpsc::SyncSender<GwMsg>>>>,
    handles: Mutex<Option<Vec<thread::JoinHandle<ShardReport>>>>,
    next_client: Mutex<u32>,
    meta: Arc<Mutex<HashMap<u64, SubjectMeta>>>,
    sessions: Arc<Mutex<SessionStore>>,
    /// Bus-time high-water mark over all deliveries: the session TTL
    /// clock, advanced by the behavior thread.
    now_wm: Arc<AtomicU64>,
    /// Per-subject egress sequence counters. Shared (not per-behavior)
    /// so sequence numbers keep counting across gateway-node restarts
    /// — a resumed client must never see `seq` go backwards.
    seqs: Arc<Mutex<HashMap<u64, u32>>>,
    sw: Stopwatch,
}

/// Handle to a running gateway (cheap to clone; all clones address the
/// same worker pool).
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<Inner>,
}

/// Subject uids grouped by the shard that owns them.
fn split_shards(uids: &[u64], workers: usize) -> BTreeMap<usize, Vec<u64>> {
    let mut by_shard: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &uid in uids {
        by_shard
            .entry(Subject::new(uid).shard_of(workers))
            .or_default()
            .push(uid);
    }
    by_shard
}

impl Gateway {
    /// Spawn the fanout workers and return the gateway handle.
    pub fn new(cfg: GatewayConfig) -> Gateway {
        let workers = cfg.workers.max(1);
        let sw = Stopwatch::start();
        let now_wm = Arc::new(AtomicU64::new(0));
        let sessions = Arc::new(Mutex::new(SessionStore::new(
            cfg.session_ttl_ns,
            cfg.resume_ring_cap,
            Arc::clone(&now_wm),
        )));
        let meta: Arc<Mutex<HashMap<u64, SubjectMeta>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let (tx, rx) = mpsc::bounded(cfg.ingress_depth.max(1));
            let mut state = WorkerState {
                shard,
                cap: cfg.client_queue_cap.max(1),
                batch_max: cfg.nrt_batch_max.max(1),
                // Clamped so every fragment still fits a wire frame.
                frag_chunk: cfg.frag_chunk.clamp(1, wire::MAX_PAYLOAD),
                trace_verbose: cfg.trace_verbose,
                subs: HashMap::new(),
                lanes: HashMap::new(),
                closed: Vec::new(),
                watermark_ns: 0,
                stats: ShardStats::default(),
                latencies_ns: Vec::new(),
                sessions: Arc::clone(&sessions),
                meta: Arc::clone(&meta),
                sw,
                trace: cfg.sink.clone(),
                src: cfg.sink.intern(&format!("gateway.shard{shard}")),
            };
            let handle = thread::Builder::new()
                .name(format!("gw-shard-{shard}"))
                .spawn(move || {
                    loop {
                        match rx.recv() {
                            Ok(GwMsg::Register {
                                client,
                                uids,
                                sink,
                                policy,
                                incarnation,
                                gate,
                            }) => {
                                if let Some(gate) = gate {
                                    // A resume is replaying on the
                                    // designated shard: hold this
                                    // reattach until the replayed
                                    // suffix is on the stream, so a
                                    // fresh flush cannot overtake it.
                                    while !gate.load(Ordering::SeqCst) {
                                        thread::yield_now();
                                    }
                                }
                                state.register(client, uids, sink, policy, incarnation);
                            }
                            Ok(GwMsg::Deregister {
                                client,
                                park,
                                incarnation,
                            }) => state.deregister(client, park, incarnation),
                            Ok(GwMsg::Resume(msg)) => state.resume(*msg),
                            Ok(GwMsg::Event(ev)) => state.on_event(&ev),
                            Ok(GwMsg::Shutdown) | Err(_) => break,
                        }
                    }
                    state.finish()
                })
                .expect("spawn gateway fanout worker");
            senders.push(tx);
            handles.push(handle);
        }
        Gateway {
            inner: Arc::new(Inner {
                workers,
                default_policy: cfg.default_policy,
                senders: Mutex::new(Some(senders)),
                handles: Mutex::new(Some(handles)),
                next_client: Mutex::new(0),
                meta,
                sessions,
                now_wm,
                seqs: Arc::new(Mutex::new(HashMap::new())),
                sw,
            }),
        }
    }

    /// Declare a subject the gateway re-publishes, with the channel
    /// attributes it is bound to on the bus (mirror of the cluster's
    /// `subscribe` for the gateway node). Must precede
    /// [`Gateway::behavior`].
    pub fn bind(&self, subject: Subject, spec: &ChannelSpec) {
        let stale_ns = match spec {
            ChannelSpec::Srt(s) => s.default_expiration.map(|d| d.as_ns()),
            _ => None,
        };
        self.inner
            .meta
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                subject.uid(),
                SubjectMeta {
                    class: spec.class(),
                    stale_ns,
                },
            );
    }

    /// Number of fanout workers (shards).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Register a client subscribed to `subjects`; returns its id.
    ///
    /// Equivalent to [`Gateway::reserve_client`] followed by
    /// [`Gateway::register_client`], for callers with no handshake to
    /// order against fanout.
    pub fn add_client(
        &self,
        subjects: &[Subject],
        spec: &ClientSinkSpec,
        policy: Option<SlowConsumerPolicy>,
    ) -> u32 {
        let client = self.reserve_client();
        self.register_client(client, subjects, spec, policy);
        client
    }

    /// Mint a client id without registering any lane — nothing is
    /// delivered to the client yet. Lets a transport finish its
    /// handshake (e.g. write `Welcome` carrying the id) before any
    /// fanout worker can write to the client's sink.
    pub fn reserve_client(&self) -> u32 {
        let mut next = self
            .inner
            .next_client
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let id = *next;
        *next += 1;
        id
    }

    /// Register a reserved client's subscriptions; delivery starts now.
    ///
    /// The subscription set is split by shard; each involved worker
    /// gets a `Register` message and mints the lane's sink from
    /// `spec`. With no `policy` the gateway default applies. This is
    /// the sessionless (v1) path: a dead sink tears the lane down.
    pub fn register_client(
        &self,
        client: u32,
        subjects: &[Subject],
        spec: &ClientSinkSpec,
        policy: Option<SlowConsumerPolicy>,
    ) {
        let policy = policy.unwrap_or(self.inner.default_policy);
        let uids: Vec<u64> = subjects.iter().map(|s| s.uid()).collect();
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(senders) = senders.as_ref() {
            for (shard, uids) in split_shards(&uids, self.inner.workers) {
                let sink = spec.instantiate(client, shard);
                let _ = senders[shard].send(GwMsg::Register {
                    client,
                    uids,
                    sink,
                    policy,
                    incarnation: 0,
                    gate: None,
                });
            }
        }
    }

    /// Open a session for a reserved client: the gateway remembers its
    /// subscriptions, policy and delivery watermarks across
    /// disconnects, for the configured TTL. Returns the session token
    /// (never 0). Delivery starts at [`Gateway::attach_session`].
    pub fn open_session(
        &self,
        client: u32,
        subjects: &[Subject],
        policy: Option<SlowConsumerPolicy>,
    ) -> u64 {
        let policy = policy.unwrap_or(self.inner.default_policy);
        let uids: Vec<u64> = subjects.iter().map(|s| s.uid()).collect();
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .open(client, uids, policy)
    }

    /// Attach a sink to an open session; delivery starts now. The sink
    /// is wrapped in the session's frame accounting and shared across
    /// the session's shards.
    pub fn attach_session(&self, client: u32, sink: Box<dyn ClientSink>) {
        let (uids, policy, core, incarnation) = {
            let store = self
                .inner
                .sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let Some(e) = store.entry(client) else {
                return;
            };
            (
                e.subjects.clone(),
                e.policy,
                Arc::clone(&e.core),
                e.incarnation,
            )
        };
        let shared: Arc<Mutex<Box<dyn ClientSink>>> =
            Arc::new(Mutex::new(Box::new(SessionSink::new(core, sink))));
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        let Some(senders) = senders.as_ref() else {
            return;
        };
        for (shard, uids) in split_shards(&uids, self.inner.workers) {
            let _ = senders[shard].send(GwMsg::Register {
                client,
                uids,
                sink: SinkHandle::Shared(Arc::clone(&shared)),
                policy,
                incarnation,
                gate: None,
            });
        }
    }

    /// Validate a resume attempt and claim the session for a new
    /// incarnation, *without* starting the replay — so a transport can
    /// write `Welcome` (carrying the verdict) before any replayed
    /// frame hits the stream. Follow with [`Gateway::commit_resume`]
    /// or [`Gateway::abort_resume`].
    ///
    /// On `Err` the token is spent; the caller falls back to a fresh
    /// session.
    pub fn begin_resume(
        &self,
        token: u64,
        wm: ClassWatermarks,
    ) -> Result<ResumePending, ResumeVerdict> {
        let claim = self
            .inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .claim_resume(token)?;
        // Sound preview: the old sink is dead (or about to be
        // deregistered), so the sent counters it reads are what the
        // replay will repair against.
        let verdict = claim
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .preview(&wm);
        Ok(ResumePending { claim, wm, verdict })
    }

    /// Start the replay and reattach the session's lanes to `sink`.
    pub fn commit_resume(&self, pending: ResumePending, sink: Box<dyn ClientSink>) {
        self.do_resume(pending.claim, WmSource::Known(pending.wm), sink);
    }

    /// The `Welcome` never reached the client: put the session back in
    /// the detached state so the client can retry within the TTL.
    pub fn abort_resume(&self, pending: ResumePending) {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .detach(pending.claim.client);
    }

    /// One-shot resume for in-process sinks: claim, replay, reattach.
    /// Returns `(client, incarnation)` or the refusal verdict.
    pub fn resume_session(
        &self,
        token: u64,
        wm: WmSource,
        sink: Box<dyn ClientSink>,
    ) -> Result<(u32, u32), ResumeVerdict> {
        let claim = self
            .inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .claim_resume(token)?;
        let out = (claim.client, claim.incarnation);
        self.do_resume(claim, wm, sink);
        Ok(out)
    }

    fn do_resume(&self, claim: ResumeClaim, wm: WmSource, sink: Box<dyn ClientSink>) {
        let now_ns = self.inner.now_wm.load(Ordering::SeqCst);
        let shared: Arc<Mutex<Box<dyn ClientSink>>> = Arc::new(Mutex::new(Box::new(
            SessionSink::new(Arc::clone(&claim.core), sink),
        )));
        let mut by_shard = split_shards(&claim.subjects, self.inner.workers);
        if by_shard.is_empty() {
            by_shard.insert(0, Vec::new());
        }
        let designated = *by_shard.keys().next().expect("nonempty shard set");
        let gate = Arc::new(AtomicBool::new(false));
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        let Some(senders) = senders.as_ref() else {
            return;
        };
        // Park every old lane first (FIFO per shard ⇒ the park lands
        // before the reattach), then reattach: the designated shard
        // replays, the rest wait on the gate.
        for &shard in by_shard.keys() {
            let _ = senders[shard].send(GwMsg::Deregister {
                client: claim.client,
                park: true,
                incarnation: claim.incarnation.saturating_sub(1),
            });
        }
        let mut wm = Some(wm);
        for (shard, uids) in by_shard {
            if shard == designated {
                let _ = senders[shard].send(GwMsg::Resume(Box::new(ResumeMsg {
                    client: claim.client,
                    incarnation: claim.incarnation,
                    uids,
                    core: Arc::clone(&claim.core),
                    wm: wm.take().expect("single designated shard"),
                    now_ns,
                    shared: Arc::clone(&shared),
                    policy: claim.policy,
                    gate: Arc::clone(&gate),
                })));
            } else {
                let _ = senders[shard].send(GwMsg::Register {
                    client: claim.client,
                    uids,
                    sink: SinkHandle::Shared(Arc::clone(&shared)),
                    policy: claim.policy,
                    incarnation: claim.incarnation,
                    gate: Some(Arc::clone(&gate)),
                });
            }
        }
    }

    /// A connection died under a live session: park its lanes and keep
    /// the session resumable for the TTL. `incarnation` must be the
    /// one the connection attached or resumed with — a stale detach
    /// (the old reader noticing EOF after a fast reconnect already
    /// resumed) is ignored.
    pub fn detach_session(&self, client: u32, incarnation: u32) {
        let uids = {
            let mut store = self
                .inner
                .sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let Some((uids, inc)) = store
                .entry(client)
                .map(|e| (e.subjects.clone(), e.incarnation))
            else {
                return;
            };
            if inc != incarnation {
                return;
            }
            store.detach(client);
            uids
        };
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        let Some(senders) = senders.as_ref() else {
            return;
        };
        for &shard in split_shards(&uids, self.inner.workers).keys() {
            let _ = senders[shard].send(GwMsg::Deregister {
                client,
                park: true,
                incarnation,
            });
        }
    }

    /// End a client for good (clean `Bye`): flush what its sink will
    /// still take, tear its lanes down, and spend its session token.
    /// Also the teardown path for sessionless (v1) clients.
    pub fn close_session(&self, client: u32) {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .end(client, true);
        let senders = self.inner.senders.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(senders) = senders.as_ref() {
            for tx in senders.iter() {
                let _ = tx.send(GwMsg::Deregister {
                    client,
                    park: false,
                    incarnation: u32::MAX,
                });
            }
        }
    }

    /// Live snapshot of the session counters (the final ones ride on
    /// [`GatewayReport::sessions`]).
    pub fn session_stats(&self) -> SessionStats {
        self.inner
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
    }

    /// The cluster behavior for the gateway node. Bind every subject
    /// first ([`Gateway::bind`]); deliveries for unbound subjects are
    /// ignored.
    ///
    /// May be called once per gateway-*node* incarnation: sequence
    /// counters and the TTL clock are shared across behaviors, so a
    /// supervised restart of the bus node does not disturb client
    /// sessions.
    pub fn behavior(&self) -> Box<dyn Behavior> {
        let senders = self
            .inner
            .senders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_default();
        let meta = self
            .inner
            .meta
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Box::new(GatewayBehavior {
            senders,
            meta,
            seqs: Arc::clone(&self.inner.seqs),
            now_wm: Arc::clone(&self.inner.now_wm),
            workers: self.inner.workers,
            sw: self.inner.sw,
        })
    }

    /// Shut the workers down (flushing what their sinks will still
    /// take) and collect the report. Idempotent: a second call returns
    /// an empty report.
    pub fn finish(&self) -> GatewayReport {
        if let Some(senders) = self
            .inner
            .senders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            for tx in &senders {
                let _ = tx.send(GwMsg::Shutdown);
            }
        }
        let handles = self
            .inner
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_default();
        let mut shards: Vec<ShardReport> = Vec::with_capacity(handles.len());
        for h in handles {
            match h.join() {
                Ok(report) => shards.push(report),
                Err(_) => continue, // a panicked worker contributes nothing
            }
        }
        shards.sort_by_key(|s| s.shard);
        let mut out = GatewayReport::default();
        for sr in shards {
            out.stats.ingress += sr.stats.ingress;
            out.stats.fanout += sr.stats.fanout;
            out.stats.disconnects += sr.stats.disconnects;
            out.stats.undelivered += sr.stats.undelivered;
            out.stats.oversized += sr.stats.oversized;
            out.shards.push(sr.stats);
            out.latencies_ns.extend(sr.latencies_ns);
            for lane in sr.lanes {
                out.stats.delivered_msgs += lane.stats.delivered_msgs;
                out.stats.delivered_hrt += lane.stats.delivered_hrt;
                out.stats.delivered_srt += lane.stats.delivered_srt;
                out.stats.delivered_nrt += lane.stats.delivered_nrt;
                out.stats.shed_nrt += lane.stats.shed_nrt;
                out.stats.shed_srt_stale += lane.stats.shed_srt_stale;
                out.stats.shed_srt_cap += lane.stats.shed_srt_cap;
                out.stats.coalesced += lane.stats.coalesced;
                out.stats.batches += lane.stats.batches;
                out.stats.fragments += lane.stats.fragments;
                out.stats.peak_lane_occupancy = out.stats.peak_lane_occupancy.max(lane.stats.peak);
                out.lanes.push(lane);
            }
        }
        out.lanes.sort_by_key(|l| (l.client, l.shard));
        out.latencies_ns.sort_unstable();
        {
            let store = self
                .inner
                .sessions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            out.sessions = store.stats;
            out.resume_wall_ns = store.resume_wall_ns.clone();
        }
        out
    }
}

/// A resume claim waiting for its transport to finish the handshake.
pub struct ResumePending {
    claim: ResumeClaim,
    wm: ClassWatermarks,
    verdict: ResumeVerdict,
}

impl ResumePending {
    /// The resumed client's id.
    pub fn client(&self) -> u32 {
        self.claim.client
    }

    /// The session token (unchanged across resumes).
    pub fn token(&self) -> u64 {
        self.claim.token
    }

    /// The new connection incarnation.
    pub fn incarnation(&self) -> u32 {
        self.claim.incarnation
    }

    /// The verdict the `Welcome` should carry.
    pub fn verdict(&self) -> ResumeVerdict {
        self.verdict
    }
}

/// The gateway node's cluster behavior: classify, stamp, shard.
struct GatewayBehavior {
    senders: Vec<mpsc::SyncSender<GwMsg>>,
    meta: HashMap<u64, SubjectMeta>,
    seqs: Arc<Mutex<HashMap<u64, u32>>>,
    now_wm: Arc<AtomicU64>,
    workers: usize,
    sw: Stopwatch,
}

impl Behavior for GatewayBehavior {
    fn on_delivery(&mut self, _ctx: &mut NodeCtx<'_>, delivery: &Delivery) {
        let uid = delivery.event.subject.uid();
        let Some(meta) = self.meta.get(&uid) else {
            return;
        };
        let seq = {
            let mut seqs = self.seqs.lock().unwrap_or_else(|e| e.into_inner());
            let s = seqs.entry(uid).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        let delivered_ns = delivery.delivered_at.as_ns();
        // Single writer (the node thread); monotonic by construction.
        if delivered_ns > self.now_wm.load(Ordering::SeqCst) {
            self.now_wm.store(delivered_ns, Ordering::SeqCst);
        }
        let ev = IngressEvent {
            uid,
            class: meta.class,
            origin: delivery.event.attributes.origin.map_or(255, |n| n.0),
            seq,
            wire_ns: delivery.wire_completed_at.as_ns(),
            delivered_ns,
            expiry_ns: meta.stale_ns.map(|s| delivered_ns.saturating_add(s)),
            ingress_wall_ns: self.sw.elapsed_ns(),
            payload: delivery.event.content.clone(),
        };
        let shard = Subject::new(uid).shard_of(self.workers);
        // A full shard channel backpressures the node's turn — the bus
        // stalls in wall time, never in bus time, and nothing drops.
        let _ = self.senders[shard].send(GwMsg::Event(Box::new(ev)));
    }
}

/// One client's egress state on one shard.
struct Lane {
    client: u32,
    queue: EgressQueue,
    /// `None` while detached: the connection died but the session is
    /// resumable, so the queue keeps filling under its policies.
    sink: Option<SinkHandle>,
    policy: SlowConsumerPolicy,
    gone: bool,
    /// Connection incarnation the lane last (re)attached with.
    incarnation: u32,
}

/// All of one fanout worker's state; owned by its thread.
struct WorkerState {
    shard: usize,
    cap: usize,
    batch_max: usize,
    /// NRT payloads above this many bytes are fragment-streamed
    /// (config value, clamped to [`wire::MAX_PAYLOAD`]).
    frag_chunk: usize,
    trace_verbose: bool,
    subs: HashMap<u64, Vec<u32>>,
    lanes: HashMap<u32, Lane>,
    /// Reports of lanes torn down mid-run (clean `Bye`), so their
    /// counters still reach the final report.
    closed: Vec<LaneReport>,
    watermark_ns: u64,
    stats: ShardStats,
    latencies_ns: Vec<u64>,
    sessions: Arc<Mutex<SessionStore>>,
    meta: Arc<Mutex<HashMap<u64, SubjectMeta>>>,
    sw: Stopwatch,
    trace: SharedTraceSink,
    src: SourceId,
}

impl WorkerState {
    fn register(
        &mut self,
        client: u32,
        uids: Vec<u64>,
        sink: SinkHandle,
        policy: SlowConsumerPolicy,
        incarnation: u32,
    ) {
        for uid in uids {
            let subs = self.subs.entry(uid).or_default();
            if !subs.contains(&client) {
                subs.push(client);
            }
        }
        if let Some(lane) = self.lanes.get_mut(&client) {
            if incarnation < lane.incarnation {
                return; // stale reattach from a superseded connection
            }
            lane.incarnation = incarnation;
            lane.policy = policy;
            if lane.gone {
                return;
            }
            lane.sink = Some(sink);
            // Release what queued while the lane was detached.
            self.flush_and_settle(client);
        } else {
            self.lanes.insert(
                client,
                Lane {
                    client,
                    queue: EgressQueue::new(self.cap),
                    sink: Some(sink),
                    policy,
                    gone: false,
                    incarnation,
                },
            );
        }
    }

    fn deregister(&mut self, client: u32, park: bool, incarnation: u32) {
        let Some(lane) = self.lanes.get_mut(&client) else {
            return;
        };
        if incarnation < lane.incarnation {
            return; // a newer incarnation owns this lane now
        }
        if park {
            lane.sink = None;
            return;
        }
        if !lane.gone {
            let Lane { queue, sink, .. } = lane;
            if let Some(s) = sink.as_mut() {
                // Last call: drain what the sink will still take, then
                // say goodbye.
                flush_sink(
                    queue,
                    s,
                    self.watermark_ns,
                    self.batch_max,
                    &self.sw,
                    &mut self.latencies_ns,
                );
                let _ = s.offer(&wire::encode_to_client(&ToClient::Disconnect {
                    reason: Reason::Shutdown,
                }));
            }
        }
        let mut lane = self.lanes.remove(&client).expect("lane just borrowed");
        lane.queue.stats.peak = lane.queue.stats.peak.max(lane.queue.len());
        self.stats.undelivered += lane.queue.drain_remaining() as u64;
        for subs in self.subs.values_mut() {
            subs.retain(|&c| c != client);
        }
        self.closed.push(LaneReport {
            client: lane.client,
            shard: self.shard,
            stats: lane.queue.stats,
            digest: lane.sink.as_ref().and_then(|s| s.digest()),
            gone: lane.gone,
        });
    }

    /// Run one resume on its designated shard: replay the missing
    /// suffix through the shared sink, reattach the local lane, flush
    /// the backlog, then open the gate for the session's other shards.
    fn resume(&mut self, msg: ResumeMsg) {
        let start_wall = self.sw.elapsed_ns();
        let wm = match msg.wm {
            WmSource::Known(wm) => wm,
            WmSource::Deferred(f) => f(),
        };
        let plan = {
            let meta = self.meta.lock().unwrap_or_else(|e| e.into_inner());
            let core = msg.core.lock().unwrap_or_else(|e| e.into_inner());
            compute_replay(
                &core,
                |uid| meta.get(&uid).and_then(|m| m.stale_ns),
                msg.now_ns,
                &wm,
            )
        };
        let offer = |bytes: &[u8]| -> bool {
            let mut tries = 0usize;
            loop {
                let status = msg
                    .shared
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .offer(bytes);
                match status {
                    SinkStatus::Accepted => return true,
                    SinkStatus::Busy if tries < RESUME_OFFER_RETRIES => {
                        tries += 1;
                        thread::yield_now();
                    }
                    _ => return false,
                }
            }
        };
        let mut dead = false;
        for (_, _, bytes) in &plan.notices {
            if !offer(bytes) {
                dead = true;
                break;
            }
        }
        if !dead {
            for frame in &plan.frames {
                if !offer(frame) {
                    dead = true;
                    break;
                }
            }
        }
        for uid in &msg.uids {
            let subs = self.subs.entry(*uid).or_default();
            if !subs.contains(&msg.client) {
                subs.push(msg.client);
            }
        }
        let lane = self.lanes.entry(msg.client).or_insert_with(|| Lane {
            client: msg.client,
            queue: EgressQueue::new(self.cap),
            sink: None,
            policy: msg.policy,
            gone: false,
            incarnation: msg.incarnation,
        });
        lane.incarnation = msg.incarnation;
        lane.policy = msg.policy;
        lane.gone = false;
        lane.sink = if dead {
            None
        } else {
            Some(SinkHandle::Shared(Arc::clone(&msg.shared)))
        };
        if !dead {
            self.flush_and_settle(msg.client);
        }
        let wall_ns = self.sw.elapsed_ns().saturating_sub(start_wall);
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .resume_done(msg.client, &plan, wall_ns, dead);
        let at = Time::from_ns(msg.now_ns.max(self.watermark_ns));
        self.trace.emit_fields(
            at,
            self.src,
            "gw_resume",
            &[
                ("client", u64::from(msg.client)),
                ("verdict", u64::from(plan.verdict.code())),
                ("replayed", plan.replayed.iter().sum::<u64>()),
                ("gaps", plan.gap_frames),
                ("stale", plan.stale_skipped),
            ],
        );
        for (class, count, _) in &plan.notices {
            self.trace.emit_fields(
                at,
                self.src,
                "gw_gap",
                &[
                    ("client", u64::from(msg.client)),
                    ("class", class_field(*class)),
                    ("count", u64::from(*count)),
                ],
            );
        }
        // Always opened, even on abort — the session's other shards
        // must never spin forever.
        msg.gate.store(true, Ordering::SeqCst);
    }

    fn on_event(&mut self, ev: &IngressEvent) {
        self.watermark_ns = self.watermark_ns.max(ev.delivered_ns);
        self.stats.ingress += 1;
        let subscribers = match self.subs.get(&ev.uid) {
            Some(v) if !v.is_empty() => v.clone(),
            _ => return,
        };
        let entries = encode_entries(ev, self.frag_chunk);
        if entries.is_empty() {
            // An HRT/SRT payload no single wire frame can carry:
            // encoding it truncated or oversized would corrupt the
            // client stream, so it is dropped here, counted and traced.
            self.stats.oversized += 1;
            self.trace.emit_fields(
                Time::from_ns(ev.delivered_ns),
                self.src,
                "gw_oversize",
                &[
                    ("uid", ev.uid),
                    ("class", class_field(ev.class)),
                    ("len", ev.payload.len() as u64),
                ],
            );
            return;
        }
        self.stats.fanout += subscribers.len() as u64;
        self.trace.emit_fields(
            Time::from_ns(ev.delivered_ns),
            self.src,
            "gw_fanout",
            &[
                ("uid", ev.uid),
                ("class", class_field(ev.class)),
                ("subs", subscribers.len() as u64),
            ],
        );
        for client in subscribers {
            let disconnect = {
                let Some(lane) = self.lanes.get_mut(&client) else {
                    continue;
                };
                if lane.gone {
                    continue;
                }
                let mut disconnect = false;
                for entry in &entries {
                    match lane
                        .queue
                        .push(entry.clone(), lane.policy, self.watermark_ns)
                    {
                        PushOutcome::Queued | PushOutcome::Shed => {}
                        PushOutcome::Disconnect => {
                            disconnect = true;
                            break;
                        }
                    }
                }
                disconnect
            };
            if disconnect {
                // A policy kill ends the session for good — a consumer
                // too slow while connected would only fall further
                // behind across a resume.
                let lane = self.lanes.get_mut(&client).expect("lane just borrowed");
                if let Some(sink) = lane.sink.as_mut() {
                    let _ = sink.offer(&wire::encode_to_client(&ToClient::Disconnect {
                        reason: Reason::Slow,
                    }));
                }
                lane.gone = true;
                lane.sink = None;
                lane.queue.stats.peak = lane.queue.stats.peak.max(lane.queue.len());
                self.stats.undelivered += lane.queue.drain_remaining() as u64;
                self.stats.disconnects += 1;
                self.sessions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .end(client, false);
                if self.trace_verbose {
                    self.trace.emit_fields(
                        Time::from_ns(ev.delivered_ns),
                        self.src,
                        "gw_disconnect",
                        &[
                            ("client", u64::from(client)),
                            ("reason", u64::from(Reason::Slow.code())),
                        ],
                    );
                }
                continue;
            }
            if let Some(lane) = self.lanes.get_mut(&client) {
                notify_sheds(
                    lane,
                    ev.delivered_ns,
                    self.trace_verbose,
                    &self.trace,
                    self.src,
                );
            }
            self.flush_and_settle(client);
        }
    }

    /// Flush a lane's queue into its sink (if attached) and settle the
    /// outcome: a dead sink parks a resumable session's lane in place,
    /// or tears a sessionless lane down the legacy way.
    fn flush_and_settle(&mut self, client: u32) {
        let alive = {
            let Some(lane) = self.lanes.get_mut(&client) else {
                return;
            };
            if lane.gone {
                return;
            }
            let Lane { queue, sink, .. } = lane;
            let Some(s) = sink.as_mut() else {
                return;
            };
            flush_sink(
                queue,
                s,
                self.watermark_ns,
                self.batch_max,
                &self.sw,
                &mut self.latencies_ns,
            )
        };
        if alive {
            return;
        }
        let park = self
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .detach(client);
        let lane = self.lanes.get_mut(&client).expect("lane just flushed");
        lane.sink = None;
        if !park {
            lane.gone = true;
            lane.queue.stats.peak = lane.queue.stats.peak.max(lane.queue.len());
            self.stats.undelivered += lane.queue.drain_remaining() as u64;
            self.stats.disconnects += 1;
        }
    }

    fn finish(mut self) -> ShardReport {
        let mut clients: Vec<u32> = self.lanes.keys().copied().collect();
        clients.sort_unstable();
        let mut lanes = std::mem::take(&mut self.closed);
        for client in clients {
            let Some(mut lane) = self.lanes.remove(&client) else {
                continue;
            };
            if !lane.gone {
                let Lane { queue, sink, .. } = &mut lane;
                if let Some(s) = sink.as_mut() {
                    // Last call: drain what the sink will still take,
                    // then say goodbye.
                    flush_sink(
                        queue,
                        s,
                        u64::MAX,
                        self.batch_max,
                        &self.sw,
                        &mut self.latencies_ns,
                    );
                    let _ = s.offer(&wire::encode_to_client(&ToClient::Disconnect {
                        reason: Reason::Shutdown,
                    }));
                }
            }
            self.stats.undelivered += lane.queue.drain_remaining() as u64;
            lanes.push(LaneReport {
                client: lane.client,
                shard: self.shard,
                stats: lane.queue.stats,
                digest: lane.sink.as_ref().and_then(|s| s.digest()),
                gone: lane.gone,
            });
        }
        lanes.sort_by_key(|l| (l.client, l.shard));
        let delivered: u64 = lanes.iter().map(|l| l.stats.delivered_msgs).sum();
        let shed: u64 = lanes
            .iter()
            .map(|l| l.stats.shed_nrt + l.stats.shed_srt_stale + l.stats.shed_srt_cap)
            .sum();
        self.trace.emit_fields(
            Time::from_ns(self.watermark_ns),
            self.src,
            "gw_shard",
            &[
                ("shard", self.shard as u64),
                ("ingress", self.stats.ingress),
                ("fanout", self.stats.fanout),
                ("delivered", delivered),
                ("shed", shed),
                ("disconnects", self.stats.disconnects),
            ],
        );
        ShardReport {
            shard: self.shard,
            stats: self.stats,
            lanes,
            latencies_ns: self.latencies_ns,
        }
    }
}

/// `(shed-NRT, cap-shed-SRT, stale-SRT)` snapshot for delta notices.
fn shed_counts(stats: &LaneStats) -> (u64, u64, u64) {
    (stats.shed_nrt, stats.shed_srt_cap, stats.shed_srt_stale)
}

/// Offer best-effort `Shed` notices covering what this lane has shed
/// since the last notice round, so clients observe the gap instead of
/// silence — one notice per (class, reason), so an SRT pressure shed
/// is never reported as NRT. A detached lane sends nothing (its sheds
/// surface through watermark accounting at resume).
fn notify_sheds(
    lane: &mut Lane,
    at_ns: u64,
    verbose: bool,
    trace: &SharedTraceSink,
    src: SourceId,
) {
    let (nrt, srt_cap, srt_stale) = shed_counts(&lane.queue.stats);
    let notified = &mut lane.queue.stats.shed_notified;
    let deltas = [
        (nrt - notified[0], ChannelClass::Nrt, Reason::Slow),
        (srt_cap - notified[1], ChannelClass::Srt, Reason::Slow),
        (srt_stale - notified[2], ChannelClass::Srt, Reason::Stale),
    ];
    let Some(sink) = lane.sink.as_mut() else {
        return;
    };
    let notified_now = [nrt, srt_cap, srt_stale];
    for (count, class, reason) in deltas {
        if count == 0 {
            continue;
        }
        let _ = sink.offer(&wire::encode_to_client(&ToClient::Shed {
            class,
            reason,
            count: count.min(u64::from(u32::MAX)) as u32,
        }));
        if verbose {
            trace.emit_fields(
                Time::from_ns(at_ns),
                src,
                "gw_shed",
                &[
                    ("client", u64::from(lane.client)),
                    ("class", class_field(class)),
                    ("reason", u64::from(reason.code())),
                    ("count", count),
                ],
            );
        }
    }
    lane.queue.stats.shed_notified = notified_now;
}

/// Drain a lane's queue into a sink, recording accept latencies.
/// Returns `false` when the sink reported itself gone (nothing is
/// popped in that case — see [`EgressQueue::flush`]).
fn flush_sink(
    queue: &mut EgressQueue,
    sink: &mut SinkHandle,
    watermark: u64,
    batch_max: usize,
    sw: &Stopwatch,
    latencies: &mut Vec<u64>,
) -> bool {
    queue.flush(watermark, batch_max, |item| {
        let (bytes, stamps): (std::borrow::Cow<'_, [u8]>, Vec<u64>) = match &item {
            FlushItem::Single(e) => (
                std::borrow::Cow::Borrowed(e.encoded.as_slice()),
                vec![e.ingress_wall_ns],
            ),
            FlushItem::Batch(es) => {
                let msg = ToClient::Batch {
                    entries: es
                        .iter()
                        .map(|e| BatchEntry {
                            origin: e.origin,
                            uid: e.uid,
                            seq: e.seq,
                            wire_ns: e.wire_ns,
                            payload: e.payload.as_ref().clone(),
                        })
                        .collect(),
                };
                (
                    std::borrow::Cow::Owned(wire::encode_to_client(&msg)),
                    es.iter().map(|e| e.ingress_wall_ns).collect(),
                )
            }
        };
        match sink.offer(&bytes) {
            SinkStatus::Accepted => {
                let now = sw.elapsed_ns();
                for stamp in stamps {
                    if latencies.len() < LAT_SAMPLE_CAP {
                        latencies.push(now.saturating_sub(stamp));
                    }
                }
                FlushVerdict::Taken
            }
            SinkStatus::Busy => FlushVerdict::Blocked,
            SinkStatus::Gone => FlushVerdict::Lost,
        }
    })
}

/// Timeliness class as a trace field value.
fn class_field(class: ChannelClass) -> u64 {
    match class {
        ChannelClass::Hrt => 0,
        ChannelClass::Srt => 1,
        ChannelClass::Nrt => 2,
    }
}

/// Pre-encode an ingress event into the entries every subscribed lane
/// will queue: one `Event` message, or a fragment stream for NRT bulk.
///
/// Never truncates: an NRT payload above `frag_chunk` bytes is split
/// into fragments, and an HRT/SRT payload no single frame can carry
/// ([`wire::MAX_PAYLOAD`]) yields an *empty* vec — the caller drops
/// the event explicitly instead of corrupting the stream.
fn encode_entries(ev: &IngressEvent, frag_chunk: usize) -> Vec<EgressEntry> {
    let base = EgressEntry {
        class: ev.class,
        uid: ev.uid,
        origin: ev.origin,
        seq: ev.seq,
        wire_ns: ev.wire_ns,
        release_ns: ev.delivered_ns,
        expiry_ns: ev.expiry_ns,
        ingress_wall_ns: ev.ingress_wall_ns,
        payload: Arc::new(Vec::new()),
        encoded: Arc::new(Vec::new()),
        frag: false,
    };
    if ev.class != ChannelClass::Nrt && ev.payload.len() > wire::MAX_PAYLOAD {
        return Vec::new();
    }
    if ev.class != ChannelClass::Nrt || ev.payload.len() <= frag_chunk {
        let payload = Arc::new(ev.payload.clone());
        let encoded = Arc::new(wire::encode_to_client(&ToClient::Event(EventMsg {
            class: ev.class,
            origin: ev.origin,
            uid: ev.uid,
            seq: ev.seq,
            wire_ns: ev.wire_ns,
            release_ns: ev.delivered_ns,
            payload: ev.payload.clone(),
        })));
        return vec![EgressEntry {
            payload,
            encoded,
            ..base
        }];
    }
    let total = ev.payload.len() as u32;
    ev.payload
        .chunks(frag_chunk)
        .enumerate()
        .map(|(i, chunk)| {
            let encoded = Arc::new(wire::encode_to_client(&ToClient::Frag(FragMsg {
                origin: ev.origin,
                uid: ev.uid,
                seq: ev.seq,
                wire_ns: ev.wire_ns,
                offset: (i * frag_chunk) as u32,
                total,
                chunk: chunk.to_vec(),
            })));
            EgressEntry {
                payload: Arc::new(chunk.to_vec()),
                encoded,
                frag: true,
                ..base.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientSink;
    use crate::client::SinkStatus;

    fn ev(class: ChannelClass, len: usize) -> IngressEvent {
        IngressEvent {
            uid: 1,
            class,
            origin: 0,
            seq: 0,
            wire_ns: 0,
            delivered_ns: 0,
            expiry_ns: None,
            ingress_wall_ns: 0,
            payload: vec![0xAB; len],
        }
    }

    /// The configured fragment threshold is what `encode_entries`
    /// actually chunks by — not a hardcoded constant.
    #[test]
    fn configured_frag_chunk_is_honored() {
        let entries = encode_entries(&ev(ChannelClass::Nrt, 100), 40);
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.frag));
        assert_eq!(entries[0].payload.len(), 40);
        assert_eq!(entries[2].payload.len(), 20);
        let single = encode_entries(&ev(ChannelClass::Nrt, 100), 256);
        assert_eq!(single.len(), 1);
        assert!(!single[0].frag);
    }

    /// An HRT/SRT payload no single frame can carry yields no entries
    /// (the worker drops and counts it); the same payload as NRT bulk
    /// fragments instead. Nothing is ever truncated.
    #[test]
    fn oversized_hrt_is_rejected_not_truncated() {
        let over = wire::MAX_PAYLOAD + 1;
        assert!(encode_entries(&ev(ChannelClass::Hrt, over), 256).is_empty());
        assert!(encode_entries(&ev(ChannelClass::Srt, over), 256).is_empty());
        assert_eq!(
            encode_entries(&ev(ChannelClass::Hrt, wire::MAX_PAYLOAD), 256).len(),
            1
        );
        let frags = encode_entries(&ev(ChannelClass::Nrt, over), 256);
        assert!(frags.len() > 1);
        assert_eq!(
            frags.iter().map(|e| e.payload.len()).sum::<usize>(),
            over,
            "fragments must cover the payload exactly"
        );
    }

    /// Shed notices carry the class of what was actually shed: an SRT
    /// pressure shed is reported as SRT, never lumped in as NRT.
    #[test]
    fn shed_notices_carry_the_shed_class() {
        struct Rec(Arc<Mutex<Vec<ToClient>>>);
        impl ClientSink for Rec {
            fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
                let msg = wire::decode_to_client(bytes).expect("undecodable notice");
                self.0.lock().unwrap_or_else(|e| e.into_inner()).push(msg);
                SinkStatus::Accepted
            }
        }
        let msgs = Arc::new(Mutex::new(Vec::new()));
        let mut lane = Lane {
            client: 0,
            queue: EgressQueue::new(4),
            sink: Some(SinkHandle::Own(Box::new(Rec(Arc::clone(&msgs))))),
            policy: SlowConsumerPolicy::ShedNrtFirst,
            gone: false,
            incarnation: 0,
        };
        lane.queue.stats.shed_nrt += 3;
        lane.queue.stats.shed_srt_cap += 2;
        lane.queue.stats.shed_srt_stale += 1;
        let sink = SharedTraceSink::disabled();
        let src = sink.intern("test");
        notify_sheds(&mut lane, 0, false, &sink, src);
        let got = msgs.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(
            got,
            vec![
                ToClient::Shed {
                    class: ChannelClass::Nrt,
                    reason: Reason::Slow,
                    count: 3
                },
                ToClient::Shed {
                    class: ChannelClass::Srt,
                    reason: Reason::Slow,
                    count: 2
                },
                ToClient::Shed {
                    class: ChannelClass::Srt,
                    reason: Reason::Stale,
                    count: 1
                },
            ]
        );
        // A second round with no new sheds is silent.
        notify_sheds(&mut lane, 0, false, &sink, src);
        assert_eq!(msgs.lock().unwrap_or_else(|e| e.into_inner()).len(), 3);
    }
}
