//! Client sinks: where the fanout workers put encoded messages.
//!
//! A sink is the last deterministic point of the egress path — it
//! either *accepts* a message (it left the gateway), reports itself
//! *busy* (the event stays queued and backpressure builds toward the
//! shedding policies), or is *gone*. Two implementations matter:
//! [`SimClientSink`], a seeded in-process client used by the
//! determinism harness and the bench (its acceptance schedule is a
//! pure function of its seed, so same-seed runs produce byte-identical
//! delivery digests), and the socket-backed sink in [`crate::net`].

use rtec_live::sync::{Arc, Mutex};
use rtec_sim::Rng;

/// Outcome of offering one encoded message to a sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkStatus {
    /// The message left the gateway.
    Accepted,
    /// The client cannot take the message right now; it stays queued.
    Busy,
    /// The client is unreachable; the lane should be torn down.
    Gone,
}

/// Delivery fingerprint of a sink: how many messages it accepted and a
/// chained digest over their exact bytes (order-sensitive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SinkDigest {
    /// Messages accepted.
    pub frames: u64,
    /// FNV-1a chain over every accepted message's bytes.
    pub digest: u64,
}

/// Where encoded gateway → client messages go.
pub trait ClientSink: Send {
    /// Offer one encoded message.
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus;
    /// The delivery fingerprint, for sinks that keep one (the seeded
    /// sim sink). Socket sinks return `None`.
    fn digest(&self) -> Option<SinkDigest> {
        None
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// A simulated client with a seeded acceptance schedule.
///
/// Each offer is accepted with probability `accept_permille / 1000`,
/// drawn from the sink's private RNG stream — so a "slow" client
/// refuses a deterministic subset of offers and the shedding machinery
/// is exercised identically on every same-seed run.
pub struct SimClientSink {
    rng: Rng,
    accept_permille: u16,
    acc: SinkDigest,
}

impl SimClientSink {
    /// Build a sink accepting `accept_permille`‰ of offers (1000 =
    /// never busy) with the given RNG seed.
    pub fn new(seed: u64, accept_permille: u16) -> Self {
        SimClientSink {
            rng: Rng::seed_from_u64(seed),
            accept_permille,
            acc: SinkDigest {
                frames: 0,
                digest: FNV_OFFSET,
            },
        }
    }
}

impl ClientSink for SimClientSink {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        let take = self.accept_permille >= 1000
            || self.rng.gen_bool(f64::from(self.accept_permille) / 1000.0);
        if !take {
            return SinkStatus::Busy;
        }
        for &b in bytes {
            self.acc.digest = (self.acc.digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.acc.frames += 1;
        SinkStatus::Accepted
    }

    fn digest(&self) -> Option<SinkDigest> {
        Some(self.acc)
    }
}

/// How a registering client's sink(s) are minted.
///
/// A client's subscriptions may span several fanout shards; each shard
/// owns its lane's state. `PerShard` mints one independent sink per
/// lane (the deterministic choice: no cross-shard lock ordering, one
/// digest per lane); `Shared` hands every lane the same sink behind a
/// mutex (the socket case: one TCP stream, many shards).
pub enum ClientSinkSpec {
    /// One sink per (client, shard) lane, minted by the closure.
    PerShard(Box<dyn Fn(u32, usize) -> Box<dyn ClientSink> + Send + Sync>),
    /// One sink shared by all of the client's lanes.
    Shared(Arc<Mutex<Box<dyn ClientSink>>>),
}

impl ClientSinkSpec {
    /// Per-lane [`SimClientSink`]s: lane seeds are derived from
    /// `seed`, the client id and the shard index, so adding clients or
    /// shards never perturbs another lane's schedule.
    pub fn sim(seed: u64, accept_permille: u16) -> Self {
        ClientSinkSpec::PerShard(Box::new(move |client, shard| {
            Box::new(SimClientSink::new(
                lane_seed(seed, client, shard),
                accept_permille,
            ))
        }))
    }

    /// Mint the sink handle for one (client, shard) lane.
    pub(crate) fn instantiate(&self, client: u32, shard: usize) -> SinkHandle {
        match self {
            ClientSinkSpec::PerShard(mint) => SinkHandle::Own(mint(client, shard)),
            ClientSinkSpec::Shared(sink) => SinkHandle::Shared(Arc::clone(sink)),
        }
    }
}

/// Mix a root seed with lane coordinates (splitmix64 finalizer).
fn lane_seed(seed: u64, client: u32, shard: usize) -> u64 {
    let mut z = seed
        ^ (u64::from(client)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (shard as u64).wrapping_mul(0xd1b5_4a32_d192_ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A worker-held sink: owned per lane, or shared across lanes.
pub(crate) enum SinkHandle {
    Own(Box<dyn ClientSink>),
    Shared(Arc<Mutex<Box<dyn ClientSink>>>),
}

impl SinkHandle {
    pub(crate) fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        match self {
            SinkHandle::Own(s) => s.offer(bytes),
            SinkHandle::Shared(m) => m.lock().unwrap_or_else(|e| e.into_inner()).offer(bytes),
        }
    }

    pub(crate) fn digest(&self) -> Option<SinkDigest> {
        match self {
            SinkHandle::Own(s) => s.digest(),
            SinkHandle::Shared(m) => m.lock().unwrap_or_else(|e| e.into_inner()).digest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_sink_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = SimClientSink::new(seed, 400);
            let mut statuses = Vec::new();
            for i in 0..64u8 {
                statuses.push(s.offer(&[i, i.wrapping_mul(3)]));
            }
            (statuses, s.digest().unwrap())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds, different digests");
    }

    #[test]
    fn full_rate_sink_never_refuses() {
        let mut s = SimClientSink::new(1, 1000);
        for _ in 0..100 {
            assert_eq!(s.offer(b"x"), SinkStatus::Accepted);
        }
        assert_eq!(s.digest().unwrap().frames, 100);
    }

    #[test]
    fn lane_seeds_differ_across_coordinates() {
        assert_ne!(lane_seed(1, 0, 0), lane_seed(1, 0, 1));
        assert_ne!(lane_seed(1, 0, 0), lane_seed(1, 1, 0));
        assert_ne!(lane_seed(1, 0, 0), lane_seed(2, 0, 0));
    }
}
