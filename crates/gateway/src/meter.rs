//! Wall-clock latency measurement, quarantined in its own file.
//!
//! Everything else in this crate is deterministic in bus time; the one
//! thing that is *not* is the client-observed latency the gateway
//! bench reports, which is a property of this machine, not of the
//! model. The srclint `C5` rule bans `Instant::now()` from the
//! concurrent sources precisely so wall time cannot leak into
//! scheduling decisions — this file is its only sanctioned home in the
//! gateway (mirroring `parallel.rs` in `rtec-sim`), and nothing here
//! feeds back into queueing, shedding or ordering.

use std::time::Instant;

/// A shared time origin for cheap monotonic nanosecond stamps.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    origin: Instant,
}

impl Stopwatch {
    /// Start a stopwatch at the current instant.
    pub fn start() -> Self {
        Stopwatch {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (≈ 585 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
