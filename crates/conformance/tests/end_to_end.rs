//! End-to-end conformance: run real simulations with tracing enabled
//! and require the combined linter + auditor verdict to be clean — and
//! require it to *catch* a sabotaged network.

use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;
use rtec_sim::Rng;
use std::cell::RefCell;
use std::rc::Rc;

const HRT: Subject = Subject::new(0xC0F0);
const SRT: Subject = Subject::new(0xC0F1);
const NRT: Subject = Subject::new(0xC0F2);

fn mixed_network(seed: u64) -> Network {
    let mut net = Network::builder()
        .nodes(5)
        .round(Duration::from_ms(10))
        .seed(seed)
        .build();
    {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            HRT,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 2,
                sporadic: false,
            }),
        )
        .unwrap();
        api.subscribe(NodeId(2), HRT, SubscribeSpec::default())
            .unwrap();
        api.announce(NodeId(1), SRT, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.subscribe(NodeId(3), SRT, SubscribeSpec::default())
            .unwrap();
        api.announce(NodeId(4), NRT, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        api.subscribe(NodeId(2), NRT, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
    }
    net.every(Duration::from_ms(10), Duration::from_us(100), |api| {
        let _ = api.publish(NodeId(0), HRT, Event::new(HRT, vec![1; 8]));
    });
    let rng = Rc::new(RefCell::new(Rng::seed_from_u64(seed ^ 0x515)));
    net.every(Duration::from_us(700), Duration::from_us(50), move |api| {
        if rng.borrow_mut().gen_bool(0.8) {
            let _ = api.publish(NodeId(1), SRT, Event::new(SRT, vec![2; 8]));
        }
    });
    net.every(Duration::from_ms(40), Duration::from_ms(1), |api| {
        let _ = api.publish(NodeId(4), NRT, Event::new(NRT, vec![3; 300]));
    });
    net
}

#[test]
fn mixed_workload_simulation_is_conformant() {
    let mut net = mixed_network(7);
    let sink = net.enable_trace();
    net.run_for(Duration::from_secs(2));
    let report = rtec_conformance::check_network(&net, &sink);
    assert!(report.passes(), "{report}");
}

#[test]
fn lint_flags_misconfigured_network() {
    // Announce an SRT channel whose events expire before their deadline:
    // the static linter must refuse the configuration.
    let mut net = Network::builder().nodes(3).seed(1).build();
    net.api()
        .announce(
            NodeId(0),
            SRT,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(20),
                default_expiration: Some(Duration::from_ms(5)),
            }),
        )
        .unwrap();
    let report = rtec_conformance::lint_network(&net);
    assert!(!report.passes());
    assert!(
        report.fired(rtec_conformance::RuleId::SrtHorizonConsistency),
        "{report}"
    );
}

#[test]
fn audit_flags_sabotaged_trace() {
    // Run a clean simulation, then tamper with the recorded trace the
    // way a broken controller would: flip an arbitration outcome.
    let mut net = mixed_network(11);
    let sink = net.enable_trace();
    net.run_for(Duration::from_secs(1));
    let mut events = sink.events();
    let mut tampered = false;
    for ev in events.iter_mut() {
        if ev.kind == "arb" && ev.fields_named("cand").len() >= 2 {
            let worst = ev
                .fields_named("cand")
                .iter()
                .map(|c| c & 0xFFFF_FFFF)
                .max()
                .unwrap();
            for f in ev.fields.iter_mut() {
                if f.0 == "win" {
                    f.1 = worst + 1; // an identifier that did not even contend
                    tampered = true;
                }
            }
            if tampered {
                break;
            }
        }
    }
    assert!(
        tampered,
        "expected at least one multi-contender arbitration"
    );
    let ctx = rtec_conformance::audit_context(&net);
    let report = rtec_conformance::audit(&ctx, &events);
    assert!(
        report.fired(rtec_conformance::RuleId::ArbWinnerOrder),
        "{report}"
    );
}
