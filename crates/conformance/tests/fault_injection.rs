//! Fault-injection suite: every conformance rule gets one test that
//! breaks exactly its invariant and asserts the rule fires — and that a
//! minimally repaired variant does not.

use rtec_analysis::admission::{CalendarPlan, PlannedSlot, SlotRequest};
use rtec_analysis::wctt::{slot_layout, SlotLayout};
use rtec_can::bits::BitTiming;
use rtec_can::NodeId;
use rtec_conformance::{audit, lint, AuditContext, ChannelDecl, LintInput, RuleId};
use rtec_core::channel::{ChannelClass, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::node::{pack_tag, TagKind};
use rtec_sim::{Duration, Time, TraceEvent};
use std::collections::HashMap;

const TIMING: BitTiming = BitTiming::MBIT_1;
const ROUND: Duration = Duration::from_ms(10);

fn base_input() -> LintInput {
    LintInput::new(8, TIMING, ROUND)
}

fn good_layout() -> SlotLayout {
    slot_layout(8, 2, TIMING, Duration::from_us(40))
}

fn good_plan() -> CalendarPlan {
    let requests = [SlotRequest {
        etag: 16,
        publisher: NodeId(0),
        dlc: 8,
        omission_degree: 2,
        period: ROUND,
    }];
    CalendarPlan::plan(ROUND, &requests, TIMING, Duration::from_us(40)).unwrap()
}

fn slot_at(etag: u16, node: u8, start: Duration, layout: SlotLayout) -> PlannedSlot {
    PlannedSlot {
        etag,
        publisher: NodeId(node),
        start,
        layout,
        occurrence: 0,
    }
}

/// Build a 29-bit identifier the way `rtec_can::id` encodes it.
fn mk_id(prio: u8, node: u8, etag: u16) -> u64 {
    (u64::from(prio) << 21) | (u64::from(node) << 14) | u64::from(etag)
}

fn ev(at_ns: u64, kind: &'static str, fields: Vec<(&'static str, u64)>) -> TraceEvent {
    TraceEvent {
        time: Time::from_ns(at_ns),
        source: "test".into(),
        kind,
        detail: String::new(),
        fields,
    }
}

fn tx(at_ns: u64, id: u64, node: u64, tag: u64) -> TraceEvent {
    ev(
        at_ns,
        "tx_start",
        vec![("id", id), ("node", node), ("attempt", 1), ("tag", tag)],
    )
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_overlapping_slots_fire() {
    let mut input = base_input();
    let l = good_layout();
    input.calendar = Some(CalendarPlan {
        round: ROUND,
        slots: vec![
            slot_at(16, 0, Duration::ZERO, l),
            // Starts halfway through the first slot's reservation.
            slot_at(17, 1, Duration::from_ns(l.total().as_ns() / 2), l),
        ],
        timing: TIMING,
        gap: Duration::from_us(40),
    });
    let rep = lint(&input);
    assert!(rep.fired(RuleId::SlotOverlap), "{rep}");
}

#[test]
fn s1_slot_past_round_end_fires() {
    let mut input = base_input();
    let l = good_layout();
    input.calendar = Some(CalendarPlan {
        round: ROUND,
        slots: vec![slot_at(16, 0, ROUND - Duration::from_us(10), l)],
        timing: TIMING,
        gap: Duration::from_us(40),
    });
    assert!(lint(&input).fired(RuleId::SlotOverlap));
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_squeezed_setup_margin_fires() {
    let mut input = base_input();
    let mut l = good_layout();
    l.delta_t_wait = Duration::from_us(10); // < 154 µs ΔT_wait
    input.calendar = Some(CalendarPlan {
        round: ROUND,
        slots: vec![slot_at(16, 0, Duration::ZERO, l)],
        timing: TIMING,
        gap: Duration::from_us(40),
    });
    let rep = lint(&input);
    assert!(rep.fired(RuleId::SlotSetupMargin), "{rep}");
    assert!(!rep.fired(RuleId::SlotOverlap));
}

// ---------------------------------------------------------------- S3

#[test]
fn s3_srt_band_reaching_priority_zero_fires() {
    let mut input = base_input();
    input.priority_slots.p_min = 0; // collides with P_HRT
    assert!(lint(&input).fired(RuleId::PriorityBandPartition));
}

#[test]
fn s3_nrt_channel_in_rt_band_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 20,
        publisher: NodeId(1),
        spec: ChannelSpec::nrt(NrtSpec {
            priority: 5,
            fragmented: false,
        }),
    });
    assert!(lint(&input).fired(RuleId::PriorityBandPartition));
}

// ---------------------------------------------------------------- S4

#[test]
fn s4_infrastructure_etag_collision_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 1, // FOLLOW-UP's etag
        publisher: NodeId(0),
        spec: ChannelSpec::srt(SrtSpec::default()),
    });
    assert!(lint(&input).fired(RuleId::IdCollision));
}

#[test]
fn s4_duplicate_binding_same_node_fires() {
    let mut input = base_input();
    for _ in 0..2 {
        input.channels.push(ChannelDecl {
            etag: 16,
            publisher: NodeId(2),
            spec: ChannelSpec::srt(SrtSpec::default()),
        });
    }
    assert!(lint(&input).fired(RuleId::IdCollision));
}

#[test]
fn s4_phantom_publisher_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 16,
        publisher: NodeId(99), // only 8 nodes configured
        spec: ChannelSpec::srt(SrtSpec::default()),
    });
    assert!(lint(&input).fired(RuleId::IdCollision));
}

// ---------------------------------------------------------------- S5

#[test]
fn s5_zero_priority_slot_fires() {
    let mut input = base_input();
    input.priority_slots.slot = Duration::ZERO;
    assert!(lint(&input).fired(RuleId::SrtHorizonConsistency));
}

#[test]
fn s5_expiration_before_deadline_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 16,
        publisher: NodeId(0),
        spec: ChannelSpec::srt(SrtSpec {
            default_deadline: Duration::from_ms(5),
            default_expiration: Some(Duration::from_ms(1)),
        }),
    });
    let rep = lint(&input);
    assert!(rep.fired(RuleId::SrtHorizonConsistency), "{rep}");
    assert!(!rep.passes());
}

// ---------------------------------------------------------------- S6

#[test]
fn s6_period_not_dividing_round_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 16,
        publisher: NodeId(0),
        spec: ChannelSpec::hrt(HrtSpec {
            period: Duration::from_ms(3), // 10 ms round % 3 ms != 0
            dlc: 8,
            omission_degree: 2,
            sporadic: false,
        }),
    });
    assert!(lint(&input).fired(RuleId::PeriodDividesRound));
}

// ---------------------------------------------------------------- S7

#[test]
fn s7_oversized_dlc_fires() {
    let mut input = base_input();
    input.channels.push(ChannelDecl {
        etag: 16,
        publisher: NodeId(0),
        spec: ChannelSpec::hrt(HrtSpec {
            period: ROUND,
            dlc: 9,
            omission_degree: 0,
            sporadic: false,
        }),
    });
    assert!(lint(&input).fired(RuleId::DlcRange));
}

// ---------------------------------------------------------------- S8

#[test]
fn s8_overcommitted_round_fires() {
    let mut input = base_input();
    let l = good_layout();
    // 15 k=2 slots demand ~10.8 ms of a 10 ms round.
    let slots: Vec<PlannedSlot> = (0..15)
        .map(|i| {
            slot_at(
                16 + i,
                0,
                Duration::from_ns(u64::from(i) * l.total().as_ns()),
                l,
            )
        })
        .collect();
    input.calendar = Some(CalendarPlan {
        round: ROUND,
        slots,
        timing: TIMING,
        gap: Duration::from_us(40),
    });
    assert!(lint(&input).fired(RuleId::ReservedUtilization));
}

// ------------------------------------------------- clean baseline

#[test]
fn clean_configuration_passes_every_static_rule() {
    let mut input = base_input();
    input.calendar = Some(good_plan());
    input.channels.push(ChannelDecl {
        etag: 16,
        publisher: NodeId(0),
        spec: ChannelSpec::hrt(HrtSpec {
            period: ROUND,
            dlc: 8,
            omission_degree: 2,
            sporadic: false,
        }),
    });
    input.channels.push(ChannelDecl {
        etag: 17,
        publisher: NodeId(1),
        spec: ChannelSpec::srt(SrtSpec::default()),
    });
    let rep = lint(&input);
    assert!(rep.passes(), "{rep}");
    assert_eq!(rep.diagnostics.len(), 0, "{rep}");
}

// ---------------------------------------------------------------- T1

#[test]
fn t1_arbitration_winner_not_minimum_fires() {
    let lo = mk_id(3, 1, 16);
    let hi = mk_id(200, 2, 17);
    let trace = vec![ev(
        1_000,
        "arb",
        vec![
            ("cand", (1 << 32) | lo),
            ("cand", (2 << 32) | hi),
            ("win", hi),
        ],
    )];
    let rep = audit(&AuditContext::bare(), &trace);
    assert!(rep.fired(RuleId::ArbWinnerOrder), "{rep}");
    assert!(!rep.fired(RuleId::DuplicateContender));
}

// ---------------------------------------------------------------- T2

#[test]
fn t2_hrt_frame_outside_reserved_slot_fires() {
    let plan = good_plan();
    let slot_end = plan.slots[0].deadline().as_ns();
    let ctx = AuditContext {
        calendar: Some(plan),
        calendar_start: Some(Time::ZERO),
        ..AuditContext::bare()
    };
    // Transmit at P_HRT well after the slot's delivery deadline.
    let trace = vec![tx(
        slot_end + 2_000_000,
        mk_id(0, 0, 16),
        0,
        pack_tag(TagKind::Hrt, 16, 1),
    )];
    let rep = audit(&ctx, &trace);
    assert!(rep.fired(RuleId::HrtSlotWindow), "{rep}");
}

#[test]
fn t2_hrt_frame_inside_slot_passes() {
    let plan = good_plan();
    let lst = plan.slots[0].lst().as_ns();
    let ctx = AuditContext {
        calendar: Some(plan),
        calendar_start: Some(Time::ZERO),
        ..AuditContext::bare()
    };
    let trace = vec![tx(lst, mk_id(0, 0, 16), 0, pack_tag(TagKind::Hrt, 16, 1))];
    let rep = audit(&ctx, &trace);
    assert!(!rep.fired(RuleId::HrtSlotWindow), "{rep}");
}

// ---------------------------------------------------------------- T3

fn deferred_ctx() -> AuditContext {
    let mut hrt_periods = HashMap::new();
    hrt_periods.insert(16u16, ROUND);
    AuditContext {
        hrt_periods,
        hrt_deferred_delivery: true,
        ..AuditContext::bare()
    }
}

fn deliver(at_ns: u64, etag: u64, node: u64, wire_ns: u64) -> TraceEvent {
    ev(
        at_ns,
        "hrt_deliver",
        vec![
            ("etag", etag),
            ("round", 0),
            ("slot", 0),
            ("node", node),
            ("wire", wire_ns),
        ],
    )
}

#[test]
fn t3_delivery_before_wire_completion_fires() {
    let trace = vec![deliver(900_000, 16, 2, 950_000)];
    assert!(audit(&deferred_ctx(), &trace).fired(RuleId::DeferredDeliveryJitter));
}

#[test]
fn t3_off_grid_delivery_cadence_fires() {
    // Deliveries at 1 ms, 11 ms, 14 ms: the last gap (3 ms) is far off
    // the 10 ms period grid.
    let trace = vec![
        deliver(1_000_000, 16, 2, 900_000),
        deliver(11_000_000, 16, 2, 10_900_000),
        deliver(14_000_000, 16, 2, 13_900_000),
    ];
    assert!(audit(&deferred_ctx(), &trace).fired(RuleId::DeferredDeliveryJitter));
}

#[test]
fn t3_period_multiple_gap_passes() {
    // A lost event makes the gap 2 periods — still on the grid.
    let trace = vec![
        deliver(1_000_000, 16, 2, 900_000),
        deliver(21_000_000, 16, 2, 20_900_000),
    ];
    let rep = audit(&deferred_ctx(), &trace);
    assert!(!rep.fired(RuleId::DeferredDeliveryJitter), "{rep}");
}

// ---------------------------------------------------------------- T4

#[test]
fn t4_expired_event_on_wire_fires() {
    let tag = pack_tag(TagKind::Srt, 20, 7);
    let trace = vec![
        ev(
            5_000_000,
            "srt_expire",
            vec![("etag", 20), ("seq", 7), ("node", 3), ("tag", tag)],
        ),
        tx(6_000_000, mk_id(50, 3, 20), 3, tag),
    ];
    assert!(audit(&AuditContext::bare(), &trace).fired(RuleId::ExpiredNeverSent));
}

#[test]
fn t4_same_tag_from_other_node_passes() {
    // SRT sequence numbers are per-node: node 4 legitimately reuses the
    // (etag, seq) pair node 3's expired event carried.
    let tag = pack_tag(TagKind::Srt, 20, 7);
    let trace = vec![
        ev(
            5_000_000,
            "srt_expire",
            vec![("etag", 20), ("seq", 7), ("node", 3), ("tag", tag)],
        ),
        tx(6_000_000, mk_id(50, 4, 20), 4, tag),
    ];
    let rep = audit(&AuditContext::bare(), &trace);
    assert!(!rep.fired(RuleId::ExpiredNeverSent), "{rep}");
}

// ---------------------------------------------------------------- T5

fn frag_enqueue(at_ns: u64, etag: u64, node: u64, frags: u64, bytes: u64) -> TraceEvent {
    ev(
        at_ns,
        "nrt_enqueue",
        vec![
            ("etag", etag),
            ("node", node),
            ("frags", frags),
            ("bytes", bytes),
            ("fragmented", 1),
        ],
    )
}

fn frag_tx_end(at_ns: u64, etag: u16, node: u64, seq: u32) -> TraceEvent {
    ev(
        at_ns,
        "tx_end",
        vec![
            ("id", mk_id(251, node as u8, etag)),
            ("node", node),
            ("tag", pack_tag(TagKind::Nrt, etag, seq)),
            ("all", 1),
        ],
    )
}

#[test]
fn t5_fragment_index_gap_fires() {
    let trace = vec![
        frag_enqueue(0, 30, 4, 3, 20),
        frag_tx_end(1_000_000, 30, 4, 0),
        frag_tx_end(2_000_000, 30, 4, 2), // index 1 skipped
    ];
    assert!(audit(&AuditContext::bare(), &trace).fired(RuleId::FragContiguity));
}

#[test]
fn t5_reassembled_byte_count_mismatch_fires() {
    let trace = vec![
        frag_enqueue(0, 30, 4, 3, 20),
        ev(
            3_000_000,
            "nrt_complete",
            vec![("etag", 30), ("node", 5), ("origin", 4), ("bytes", 19)],
        ),
    ];
    assert!(audit(&AuditContext::bare(), &trace).fired(RuleId::FragContiguity));
}

#[test]
fn t5_contiguous_fragment_stream_passes() {
    let trace = vec![
        frag_enqueue(0, 30, 4, 3, 20),
        frag_tx_end(1_000_000, 30, 4, 0),
        frag_tx_end(2_000_000, 30, 4, 1),
        frag_tx_end(3_000_000, 30, 4, 2),
        ev(
            3_100_000,
            "nrt_complete",
            vec![("etag", 30), ("node", 5), ("origin", 4), ("bytes", 20)],
        ),
    ];
    let rep = audit(&AuditContext::bare(), &trace);
    assert!(!rep.fired(RuleId::FragContiguity), "{rep}");
}

// ---------------------------------------------------------------- T6

#[test]
fn t6_duplicate_identifier_in_arbitration_fires() {
    let id = mk_id(3, 1, 16);
    let trace = vec![ev(
        1_000,
        "arb",
        vec![
            ("cand", (1 << 32) | id),
            ("cand", (5 << 32) | id),
            ("win", id),
        ],
    )];
    let rep = audit(&AuditContext::bare(), &trace);
    assert!(rep.fired(RuleId::DuplicateContender), "{rep}");
    assert!(!rep.fired(RuleId::ArbWinnerOrder));
}

// ---------------------------------------------------------------- T7

#[test]
fn t7_srt_channel_at_hrt_priority_fires() {
    let mut channels = HashMap::new();
    channels.insert(20u16, ChannelClass::Srt);
    let ctx = AuditContext {
        channels,
        ..AuditContext::bare()
    };
    let trace = vec![tx(1_000, mk_id(0, 3, 20), 3, pack_tag(TagKind::Srt, 20, 1))];
    assert!(audit(&ctx, &trace).fired(RuleId::PriorityBandConsistency));
}

#[test]
fn t7_infrastructure_frame_at_priority_zero_fires() {
    // SYNC (etag 0) must never ride at P_HRT.
    let trace = vec![tx(1_000, mk_id(0, 0, 0), 0, pack_tag(TagKind::Sync, 0, 1))];
    assert!(audit(&AuditContext::bare(), &trace).fired(RuleId::PriorityBandConsistency));
}

// ---------------------------------------------------------------- T8

#[test]
fn t8_txnode_spoofing_fires() {
    // Identifier encodes TxNode 3, frame actually sent by node 5.
    let trace = vec![tx(
        1_000,
        mk_id(50, 3, 20),
        5,
        pack_tag(TagKind::Srt, 20, 1),
    )];
    assert!(audit(&AuditContext::bare(), &trace).fired(RuleId::TxNodeMatchesSender));
}

// ------------------------------------------------- clean baseline

#[test]
fn clean_trace_passes_every_rule() {
    let plan = good_plan();
    let lst = plan.slots[0].lst().as_ns();
    let deadline = plan.slots[0].deadline().as_ns();
    let mut channels = HashMap::new();
    channels.insert(16u16, ChannelClass::Hrt);
    let mut hrt_periods = HashMap::new();
    hrt_periods.insert(16u16, ROUND);
    let ctx = AuditContext {
        calendar: Some(plan),
        calendar_start: Some(Time::ZERO),
        channels,
        hrt_periods,
        hrt_deferred_delivery: true,
        tolerance: Duration::ZERO,
    };
    let hrt_id = mk_id(0, 0, 16);
    let tag = pack_tag(TagKind::Hrt, 16, 1);
    let trace = vec![
        ev(lst, "arb", vec![("cand", hrt_id), ("win", hrt_id)]),
        tx(lst, hrt_id, 0, tag),
        deliver(deadline, 16, 2, lst + 130_000),
        deliver(
            deadline + ROUND.as_ns(),
            16,
            2,
            lst + ROUND.as_ns() + 130_000,
        ),
    ];
    let rep = audit(&ctx, &trace);
    assert!(rep.passes(), "{rep}");
    assert_eq!(rep.diagnostics.len(), 0, "{rep}");
}
