//! Concurrency-hygiene source lints (`C1`..`C6`) for the concurrent
//! runtimes: the live broker/node threads and the parallel simulation
//! driver.
//!
//! The loom model-check suites (see `crates/live/tests/loom_model.rs`
//! and `crates/sim/tests/loom_model.rs`) only prove anything about
//! code that routes its synchronization through the `rtec_sim::sync`
//! facade (re-exported as `rtec_live::sync`) — a mutex taken from
//! `std::sync` directly is invisible to the model checker. These lints
//! close that gap statically: they scan the concurrent sources and
//! reject constructs that would escape the facade or undermine the
//! protocols' failure-handling discipline.
//!
//! | rule | rejects                                                      |
//! |------|--------------------------------------------------------------|
//! | `C1` | `std::sync` / `std::thread` outside the facade itself        |
//! | `C2` | unbounded `mpsc::channel(..)` constructors                   |
//! | `C3` | `unwrap()`/`expect()` on `lock()`/`recv()`/`join()` results  |
//! | `C4` | `thread::sleep` outside clock pacing / retry backoff / chaos |
//! | `C5` | `Instant::now()`/`SystemTime::now()` outside clock + sockets |
//! | `C6` | bare `thread::spawn(..)` (runtime threads must be named)     |
//!
//! The pass is textual, not syntactic — deliberately: it must run in
//! CI with no rustc internals and no third-party parser. To keep the
//! signal clean it first *strips* comments and string literals
//! (preserving line numbers) and *skips* `#[cfg(test)]` blocks, where
//! std primitives are fine. Scope is `crates/live/src` and
//! `crates/gateway/src` (the gateway's fanout workers ride the same
//! facade, so its loom coverage has the same blind spots) plus the two
//! concurrent files of `rtec-sim` (`parallel.rs`, `sync.rs`); the rest
//! of the simulation stack is single-threaded by construction (its
//! `trace.rs` ring, for instance, predates the facade and stays out of
//! scope).

use crate::diag::{Report, RuleId};
use std::fs;
use std::io;
use std::path::Path;

/// One source file handed to [`lint_sources`].
#[derive(Clone, Debug)]
pub struct SrcFile {
    /// Display path, used in diagnostics (e.g. `crates/live/src/node.rs`).
    pub path: String,
    /// Full file contents.
    pub text: String,
}

impl SrcFile {
    /// Convenience constructor.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SrcFile {
            path: path.into(),
            text: text.into(),
        }
    }

    /// The file name component of `path`.
    fn file_name(&self) -> &str {
        self.path.rsplit(['/', '\\']).next().unwrap_or(&self.path)
    }
}

/// Replace comments, string literals and char literals with spaces,
/// keeping every line break so diagnostics can cite real line numbers.
///
/// Handles line comments, (nested) block comments, plain and raw
/// strings, and char literals — while leaving lifetimes (`'a`) alone:
/// a `'` only opens a char literal when a matching closing quote
/// appears within a few characters.
fn strip_noncode(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Possible raw string r"..." / r#"..."#.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.resize(out.len() + hashes + 2, b' ');
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < b.len() && b[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                out.resize(out.len() + hashes + 1, b' ');
                                j = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[j] == b'\n' { b'\n' } else { b' ' });
                        j += 1;
                    }
                    i = j;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal iff a closing quote follows within the
                // longest escape form ('\u{10FFFF}' = 10 bytes).
                let lookahead = &b[i + 1..b.len().min(i + 12)];
                let close = if lookahead.first() == Some(&b'\\') {
                    lookahead
                        .iter()
                        .skip(1)
                        .position(|&c| c == b'\'')
                        .map(|p| p + 1)
                } else if lookahead.first() == Some(&b'\'') {
                    None // '' is not a char literal
                } else {
                    (lookahead.get(1) == Some(&b'\'')).then_some(1)
                };
                if let Some(p) = close {
                    out.resize(out.len() + p + 2, b' ');
                    i += p + 2;
                } else {
                    out.push(b[i]); // a lifetime: keep as-is
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("stripping only substitutes ASCII spaces")
}

/// Blank out every `#[cfg(test)] <item>` region (attribute through the
/// matching closing brace), preserving line breaks. Test modules and
/// test-gated items may use std primitives freely — they never run
/// under the model checker.
fn blank_test_blocks(stripped: &str) -> String {
    let mut text = stripped.to_string();
    loop {
        let Some(start) = find_cfg_test(&text) else {
            return text;
        };
        let bytes = text.as_bytes();
        // Find the first `{` after the attribute, then its match.
        let Some(open) = bytes[start..].iter().position(|&c| c == b'{') else {
            return text;
        };
        let open = start + open;
        let mut depth = 0usize;
        let mut end = text.len();
        for (k, &c) in bytes[open..].iter().enumerate() {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let blanked: String = text[start..end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        text.replace_range(start..end, &blanked);
    }
}

/// Locate a `#[cfg(test)]` attribute, tolerating interior whitespace.
fn find_cfg_test(text: &str) -> Option<usize> {
    let compact: Vec<(usize, char)> = text
        .char_indices()
        .filter(|(_, c)| !c.is_whitespace())
        .collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    compact
        .windows(needle.len())
        .find(|w| w.iter().map(|(_, c)| *c).eq(needle.iter().copied()))
        .map(|w| w[0].0)
}

/// A line-scoped textual rule.
struct TextRule {
    id: RuleId,
    /// Any of these substrings firing on a (stripped) line is a hit.
    needles: &'static [&'static str],
    /// File names exempt from this rule.
    allow_files: &'static [&'static str],
    /// A hit is suppressed when this substring is also present (used to
    /// let `C6` accept `Builder` chains that end in `.spawn(`).
    unless_on_line: Option<&'static str>,
    fix: &'static str,
}

const RULES: &[TextRule] = &[
    TextRule {
        id: RuleId::DirectStdSync,
        needles: &["std::sync", "std::thread"],
        allow_files: &["sync.rs"],
        unless_on_line: None,
        fix: "import the primitive from crate::sync instead",
    },
    TextRule {
        id: RuleId::UnboundedChannel,
        needles: &["mpsc::channel(", "channel::<"],
        allow_files: &[],
        unless_on_line: None,
        fix: "use crate::sync::mpsc::bounded(depth) for backpressure",
    },
    TextRule {
        id: RuleId::UnwrappedSyncResult,
        needles: &[
            "lock().unwrap()",
            "lock().expect(",
            "recv().unwrap()",
            "recv().expect(",
            "join().unwrap()",
            "join().expect(",
        ],
        allow_files: &[],
        unless_on_line: None,
        fix: "propagate the error or use unwrap_or_else(|e| e.into_inner())",
    },
    TextRule {
        id: RuleId::StraySleep,
        // `udp.rs` is allowed: its sleeps are the transport retry
        // backoff, which stalls only the failing peer's wall clock.
        // `chaos.rs` is allowed: fault-plan delays are deliberate
        // wall-clock stalls that must not advance bus time.
        // `reconnect.rs` is allowed: its sleeps are the gateway
        // client's reconnect backoff, the same scheme as the UDP
        // transport retry — only the disconnected client waits.
        needles: &["thread::sleep("],
        allow_files: &["clock.rs", "udp.rs", "chaos.rs", "reconnect.rs"],
        unless_on_line: None,
        fix: "pace through clock::Pacer so Pace::Virtual skips the wait",
    },
    TextRule {
        id: RuleId::StrayWallClock,
        // `parallel.rs` is allowed: its wall-clock reads only feed the
        // barrier-stall accounting reported next to bench results —
        // never simulated time, which stays fully virtual. `meter.rs`
        // is the gateway's equivalent quarantine: client-observed
        // latency sampling that never feeds back into scheduling.
        allow_files: &["clock.rs", "udp.rs", "parallel.rs", "meter.rs"],
        needles: &["Instant::now()", "SystemTime::now()"],
        unless_on_line: None,
        fix: "take timestamps from clock::Pacer / the broker's Welcome",
    },
    TextRule {
        id: RuleId::UnnamedThreadSpawn,
        needles: &["thread::spawn("],
        allow_files: &[],
        unless_on_line: Some("Builder"),
        fix: "use crate::sync::thread::Builder::new().name(..).spawn(..)",
    },
];

/// Lint a set of already-loaded sources. Pure — the unit of testing.
pub fn lint_sources(files: &[SrcFile]) -> Report {
    let mut report = Report::new();
    for file in files {
        let code = blank_test_blocks(&strip_noncode(&file.text));
        for rule in RULES {
            if rule.allow_files.contains(&file.file_name()) {
                continue;
            }
            for (lineno, line) in code.lines().enumerate() {
                if rule.unless_on_line.is_some_and(|ok| line.contains(ok)) {
                    continue;
                }
                if let Some(needle) = rule.needles.iter().find(|n| line.contains(**n)) {
                    report.error(
                        rule.id,
                        format!(
                            "{}:{}: `{}` — {}",
                            file.path,
                            lineno + 1,
                            needle.trim_end_matches('('),
                            rule.id.description()
                        ),
                        rule.fix,
                    );
                }
            }
        }
    }
    report
}

/// Lint the concurrent sources under a workspace root: every `.rs`
/// file below `crates/live/src` and `crates/gateway/src`, plus
/// `rtec-sim`'s parallel driver and sync facade, in path order.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for dir in ["crates/live/src", "crates/gateway/src"] {
        collect_rs(&root.join(dir), &mut files)?;
    }
    for extra in ["crates/sim/src/parallel.rs", "crates/sim/src/sync.rs"] {
        let path = root.join(extra);
        files.push(SrcFile {
            path: path.display().to_string(),
            text: fs::read_to_string(&path)?,
        });
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    // Diagnostics cite workspace-relative paths.
    for f in &mut files {
        if let Some(rel) = f.path.strip_prefix(&format!("{}/", root.display())) {
            f.path = rel.to_string();
        }
    }
    Ok(lint_sources(&files))
}

fn collect_rs(dir: &Path, out: &mut Vec<SrcFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(SrcFile {
                path: path.display().to_string(),
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(name: &str, text: &str) -> Report {
        lint_sources(&[SrcFile::new(format!("crates/live/src/{name}"), text)])
    }

    #[test]
    fn c1_fires_on_direct_std_sync() {
        let rep = lint_one("node.rs", "use std::sync::Mutex;\n");
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
        let rep = lint_one("broker.rs", "let h = std::thread::current();\n");
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
    }

    #[test]
    fn c1_allows_the_facade_itself() {
        let rep = lint_one("sync.rs", "pub use std::sync::{Arc, Mutex};\n");
        assert!(rep.passes(), "{rep}");
    }

    #[test]
    fn c2_fires_on_unbounded_channel() {
        let rep = lint_one("transport.rs", "let (tx, rx) = mpsc::channel();\n");
        assert!(rep.fired(RuleId::UnboundedChannel), "{rep}");
        let rep = lint_one("transport.rs", "let p = channel::<Frame>();\n");
        assert!(rep.fired(RuleId::UnboundedChannel), "{rep}");
    }

    #[test]
    fn c3_fires_on_unwrapped_lock_recv_join() {
        for stmt in [
            "let g = self.state.lock().unwrap();",
            "let g = self.state.lock().expect(\"poisoned\");",
            "let msg = rx.recv().unwrap();",
            "let out = handle.join().unwrap();",
        ] {
            let rep = lint_one("cluster.rs", stmt);
            assert!(rep.fired(RuleId::UnwrappedSyncResult), "{stmt}: {rep}");
        }
        // The sanctioned poison-recovery form is fine.
        let rep = lint_one(
            "cluster.rs",
            "let g = m.lock().unwrap_or_else(|e| e.into_inner());\n",
        );
        assert!(rep.passes(), "{rep}");
    }

    #[test]
    fn c4_fires_on_sleep_outside_the_clock() {
        let rep = lint_one("node.rs", "crate::sync::thread::sleep(d);\n");
        assert!(rep.fired(RuleId::StraySleep), "{rep}");
        // The pacing clock, the retry backoff, and the chaos fault
        // plans stall wall time on purpose.
        for allowed in ["clock.rs", "udp.rs", "chaos.rs"] {
            let rep = lint_one(allowed, "crate::sync::thread::sleep(d);\n");
            assert!(!rep.fired(RuleId::StraySleep), "{allowed}: {rep}");
        }
    }

    #[test]
    fn c5_fires_on_wall_clock_outside_clock_and_udp() {
        let rep = lint_one("broker.rs", "let t = Instant::now();\n");
        assert!(rep.fired(RuleId::StrayWallClock), "{rep}");
        for allowed in ["clock.rs", "udp.rs"] {
            let rep = lint_one(allowed, "let t = Instant::now();\n");
            assert!(!rep.fired(RuleId::StrayWallClock), "{allowed}: {rep}");
        }
    }

    fn lint_gateway(name: &str, text: &str) -> Report {
        lint_sources(&[SrcFile::new(format!("crates/gateway/src/{name}"), text)])
    }

    #[test]
    fn gateway_sources_are_held_to_the_same_rules() {
        // The fanout workers live outside crates/live but share the
        // facade; every rule fires on gateway paths identically.
        let rep = lint_gateway("gateway.rs", "use std::sync::Mutex;\n");
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
        let rep = lint_gateway("net.rs", "let h = thread::spawn(|| accept());\n");
        assert!(rep.fired(RuleId::UnnamedThreadSpawn), "{rep}");
        let rep = lint_gateway("client.rs", "let g = m.lock().unwrap();\n");
        assert!(rep.fired(RuleId::UnwrappedSyncResult), "{rep}");
        let rep = lint_gateway("egress.rs", "let t = Instant::now();\n");
        assert!(rep.fired(RuleId::StrayWallClock), "{rep}");
    }

    #[test]
    fn c5_allows_the_gateway_latency_meter() {
        // meter.rs is the gateway's wall-clock quarantine, like
        // parallel.rs in rtec-sim.
        let rep = lint_gateway("meter.rs", "let t = Instant::now();\n");
        assert!(!rep.fired(RuleId::StrayWallClock), "{rep}");
        // The quarantine is C5-only: the other rules still apply.
        let rep = lint_gateway("meter.rs", "use std::sync::Mutex;\n");
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
    }

    #[test]
    fn c6_fires_on_bare_spawn_but_not_builder() {
        let rep = lint_one("cluster.rs", "let h = thread::spawn(move || run());\n");
        assert!(rep.fired(RuleId::UnnamedThreadSpawn), "{rep}");
        let rep = lint_one(
            "cluster.rs",
            "let h = thread::Builder::new().name(n).spawn(move || run());\n",
        );
        assert!(!rep.fired(RuleId::UnnamedThreadSpawn), "{rep}");
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let rep = lint_one(
            "node.rs",
            concat!(
                "// never use std::sync::Mutex here\n",
                "/* std::thread::spawn( would be wrong */\n",
                "let msg = \"mpsc::channel( is banned\";\n",
                "let raw = r#\"lock().unwrap()\"#;\n",
            ),
        );
        assert!(rep.passes(), "{rep}");
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let rep = lint_one(
            "udp.rs",
            concat!(
                "pub fn live() {}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    use std::thread;\n",
                "    fn t() { let h = thread::spawn(|| ()); h.join().unwrap(); }\n",
                "}\n",
            ),
        );
        assert!(rep.passes(), "{rep}");
    }

    #[test]
    fn violations_outside_a_test_block_still_fire() {
        let rep = lint_one(
            "udp.rs",
            concat!(
                "use std::sync::Mutex;\n",
                "#[cfg(test)]\n",
                "mod tests {}\n",
            ),
        );
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
    }

    #[test]
    fn diagnostics_cite_path_line_and_code() {
        let rep = lint_one("node.rs", "fn f() {}\nuse std::sync::Arc;\n");
        let d = &rep.of_rule(RuleId::DirectStdSync)[0];
        assert!(d.message.contains("crates/live/src/node.rs:2"), "{d}");
        assert_eq!(format!("{}", d.rule), "C1");
    }

    #[test]
    fn lifetimes_survive_stripping() {
        // `'a` must not be mistaken for an unterminated char literal
        // that would swallow the rest of the file.
        let rep = lint_one(
            "node.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nuse std::sync::Arc;\n",
        );
        assert!(rep.fired(RuleId::DirectStdSync), "{rep}");
    }

    #[test]
    fn the_real_runtime_is_clean() {
        // The workspace root is two levels above this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let rep = lint_workspace(&root).expect("walk crates/live/src");
        assert!(rep.passes(), "{rep}");
    }
}
