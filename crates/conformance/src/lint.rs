//! Static configuration linting (rules `S1`..`S8`).
//!
//! The linter checks a network configuration *before* any simulation
//! runs: the HRT calendar, the channel declarations and the SRT
//! priority-slot parameters. Every violation becomes a [`Diagnostic`]
//! with a fix hint — the linter never panics on a broken configuration.

use crate::diag::{Report, RuleId};
use rtec_analysis::admission::CalendarPlan;
use rtec_analysis::edf::{time_horizon, PrioritySlotConfig};
use rtec_analysis::wctt::wcct_single;
use rtec_can::bits::BitTiming;
use rtec_can::{NodeId, PRIO_HRT, PRIO_NRT_MAX, PRIO_NRT_MIN, PRIO_SRT_MAX, PRIO_SRT_MIN};
use rtec_core::binding::ETAG_FIRST_DYNAMIC;
use rtec_core::channel::ChannelSpec;
use rtec_sim::Duration;
use std::collections::HashMap;

/// One declared channel binding: which node publishes which etag under
/// which attribute list.
#[derive(Clone, Debug)]
pub struct ChannelDecl {
    /// The bound event tag.
    pub etag: u16,
    /// The publishing node.
    pub publisher: NodeId,
    /// The announced channel attributes.
    pub spec: ChannelSpec,
}

/// Everything the static linter looks at.
#[derive(Clone, Debug)]
pub struct LintInput {
    /// Number of nodes on the bus.
    pub nodes: usize,
    /// Bus bit timing (determines `ΔT_wait` and frame times).
    pub timing: BitTiming,
    /// Calendar round length.
    pub round: Duration,
    /// SRT deadline → priority mapping parameters.
    pub priority_slots: PrioritySlotConfig,
    /// The planned HRT calendar, if one is installed.
    pub calendar: Option<CalendarPlan>,
    /// All declared channel bindings.
    pub channels: Vec<ChannelDecl>,
}

impl LintInput {
    /// A minimal input with no calendar and no channels.
    pub fn new(nodes: usize, timing: BitTiming, round: Duration) -> Self {
        LintInput {
            nodes,
            timing,
            round,
            priority_slots: PrioritySlotConfig::paper_default(),
            calendar: None,
            channels: Vec::new(),
        }
    }
}

/// Run all static rules over `input`.
pub fn lint(input: &LintInput) -> Report {
    let mut rep = Report::new();
    lint_slot_overlap(input, &mut rep);
    lint_slot_setup_margin(input, &mut rep);
    lint_priority_bands(input, &mut rep);
    lint_id_collisions(input, &mut rep);
    lint_srt_horizon(input, &mut rep);
    lint_period_divides_round(input, &mut rep);
    lint_dlc_range(input, &mut rep);
    lint_reserved_utilization(input, &mut rep);
    rep
}

/// S1: slot occupancy intervals `[start, start+total)` must be disjoint
/// and lie inside the round (§3.1).
fn lint_slot_overlap(input: &LintInput, rep: &mut Report) {
    let Some(plan) = &input.calendar else { return };
    let mut spans: Vec<(u64, u64, u16)> = plan
        .slots
        .iter()
        .map(|s| (s.start.as_ns(), s.end().as_ns(), s.etag))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        let (_, prev_end, prev_etag) = w[0];
        let (next_start, _, next_etag) = w[1];
        if next_start < prev_end {
            rep.error(
                RuleId::SlotOverlap,
                format!(
                    "slot for etag {next_etag} starts at {next_start} ns while the slot \
                     for etag {prev_etag} occupies the bus until {prev_end} ns"
                ),
                "re-plan the calendar so reservations (incl. ΔG_min) are disjoint",
            );
        }
    }
    for &(start, end, etag) in &spans {
        if end > plan.round.as_ns() {
            rep.error(
                RuleId::SlotOverlap,
                format!(
                    "slot for etag {etag} ([{start}, {end}) ns) extends past the \
                     {} ns round",
                    plan.round.as_ns()
                ),
                "shorten the reservation or lengthen the round",
            );
        }
    }
}

/// S2: every reservation must leave the `ΔT_wait` setup margin between
/// ready instant and LST — 154 µs at 1 Mbit/s (§3.2).
fn lint_slot_setup_margin(input: &LintInput, rep: &mut Report) {
    let Some(plan) = &input.calendar else { return };
    let need = input.timing.delta_t_wait();
    for (idx, s) in plan.slots.iter().enumerate() {
        let have = s.layout.lst_offset();
        if have < need {
            rep.error(
                RuleId::SlotSetupMargin,
                format!(
                    "slot {idx} (etag {}) reserves only {} ns between ready and LST; \
                     ΔT_wait requires {} ns at this bit rate",
                    s.etag,
                    have.as_ns(),
                    need.as_ns()
                ),
                "widen the slot's ΔT_wait so a blocking lower-priority frame can drain",
            );
        }
    }
}

/// S3: the priority partition `0 = P_HRT < P_SRT < P_NRT` must hold for
/// every configured priority (§3.3).
fn lint_priority_bands(input: &LintInput, rep: &mut Report) {
    let ps = &input.priority_slots;
    if ps.p_min < PRIO_SRT_MIN {
        rep.error(
            RuleId::PriorityBandPartition,
            format!(
                "SRT band starts at priority {} but {PRIO_HRT} is reserved for HRT",
                ps.p_min
            ),
            format!("set p_min >= {PRIO_SRT_MIN}"),
        );
    }
    if ps.p_max > PRIO_SRT_MAX {
        rep.error(
            RuleId::PriorityBandPartition,
            format!(
                "SRT band ends at priority {} inside the NRT band ({PRIO_NRT_MIN}..={PRIO_NRT_MAX})",
                ps.p_max
            ),
            format!("set p_max <= {PRIO_SRT_MAX}"),
        );
    }
    if ps.p_min > ps.p_max {
        rep.error(
            RuleId::PriorityBandPartition,
            format!("empty SRT band: p_min {} > p_max {}", ps.p_min, ps.p_max),
            "order the band bounds",
        );
    }
    for c in &input.channels {
        if let ChannelSpec::Nrt(n) = &c.spec {
            if n.priority < PRIO_NRT_MIN {
                rep.error(
                    RuleId::PriorityBandPartition,
                    format!(
                        "NRT channel etag {} uses priority {} inside the real-time bands",
                        c.etag, n.priority
                    ),
                    format!("use an NRT priority in {PRIO_NRT_MIN}..={PRIO_NRT_MAX}"),
                );
            }
        }
    }
}

/// S4: identifier encodings must be collision-free — no etag reuse
/// across classes, no infrastructure-etag collisions, publishers must be
/// real nodes (§3.5).
fn lint_id_collisions(input: &LintInput, rep: &mut Report) {
    let mut class_by_etag: HashMap<u16, &'static str> = HashMap::new();
    let mut seen: HashMap<(u16, u8), usize> = HashMap::new();
    for c in &input.channels {
        if c.etag < ETAG_FIRST_DYNAMIC {
            rep.error(
                RuleId::IdCollision,
                format!(
                    "channel etag {} collides with the reserved infrastructure etags \
                     0..{ETAG_FIRST_DYNAMIC} (SYNC/FOLLOW-UP/BIND)",
                    c.etag
                ),
                format!("bind application channels at etag >= {ETAG_FIRST_DYNAMIC}"),
            );
        }
        if c.publisher.index() >= input.nodes {
            rep.error(
                RuleId::IdCollision,
                format!(
                    "channel etag {} is published by node {} but only {} node(s) exist",
                    c.etag, c.publisher.0, input.nodes
                ),
                "publish from a configured node",
            );
        }
        let class = match &c.spec {
            ChannelSpec::Hrt(_) => "HRT",
            ChannelSpec::Srt(_) => "SRT",
            ChannelSpec::Nrt(_) => "NRT",
        };
        if let Some(prev) = class_by_etag.insert(c.etag, class) {
            if prev != class {
                rep.error(
                    RuleId::IdCollision,
                    format!(
                        "etag {} is bound as both {prev} and {class}: the encoded \
                         identifiers would mix timeliness classes",
                        c.etag
                    ),
                    "bind each subject to exactly one channel class",
                );
            }
        }
        let count = seen.entry((c.etag, c.publisher.0)).or_insert(0);
        *count += 1;
        if *count == 2 {
            rep.error(
                RuleId::IdCollision,
                format!(
                    "node {} declares etag {} twice: both transmissions would encode \
                     the identical CAN identifier",
                    c.publisher.0, c.etag
                ),
                "bind distinct subjects to distinct etags",
            );
        }
    }
}

/// S5: the SRT priority-slot width `Δt_p` and horizon `ΔH` must be
/// consistent with the declared deadlines and expirations (§3.4).
fn lint_srt_horizon(input: &LintInput, rep: &mut Report) {
    let ps = &input.priority_slots;
    if ps.slot.as_ns() == 0 {
        rep.error(
            RuleId::SrtHorizonConsistency,
            "priority slot width Δt_p is zero: the deadline → priority mapping is undefined",
            "use a positive Δt_p (the paper's example: 160 µs)",
        );
        return;
    }
    let c_max = wcct_single(8, input.timing);
    if ps.slot < c_max {
        rep.warning(
            RuleId::SrtHorizonConsistency,
            format!(
                "Δt_p = {} ns is shorter than one worst-case 8-byte frame ({} ns): \
                 adjacent priority levels are not distinguishable on the wire",
                ps.slot.as_ns(),
                c_max.as_ns()
            ),
            "choose Δt_p >= the worst-case single-frame transfer time",
        );
    }
    let horizon = time_horizon(ps);
    for c in &input.channels {
        let ChannelSpec::Srt(s) = &c.spec else {
            continue;
        };
        if s.default_deadline > horizon {
            rep.warning(
                RuleId::SrtHorizonConsistency,
                format!(
                    "SRT channel etag {} defaults to a {} ns deadline beyond the \
                     ΔH = {} ns priority horizon: its laxity saturates at the lowest \
                     SRT urgency until promotion",
                    c.etag,
                    s.default_deadline.as_ns(),
                    horizon.as_ns()
                ),
                "shorten the deadline or widen ΔH (more levels or larger Δt_p)",
            );
        }
        if let Some(exp) = s.default_expiration {
            if exp < s.default_deadline {
                rep.error(
                    RuleId::SrtHorizonConsistency,
                    format!(
                        "SRT channel etag {} expires events after {} ns, before their \
                         {} ns deadline: every event is dropped as expired",
                        c.etag,
                        exp.as_ns(),
                        s.default_deadline.as_ns()
                    ),
                    "set expiration >= deadline (temporal validity outlives the deadline)",
                );
            }
        }
    }
}

/// S6: each HRT channel's period must divide the calendar round so its
/// reservation pattern repeats exactly once per round (§3.1).
fn lint_period_divides_round(input: &LintInput, rep: &mut Report) {
    for c in &input.channels {
        let ChannelSpec::Hrt(h) = &c.spec else {
            continue;
        };
        if h.period.as_ns() == 0 {
            rep.error(
                RuleId::PeriodDividesRound,
                format!("HRT channel etag {} declares a zero period", c.etag),
                "declare the real inter-arrival period",
            );
            continue;
        }
        if !input.round.as_ns().is_multiple_of(h.period.as_ns()) {
            rep.error(
                RuleId::PeriodDividesRound,
                format!(
                    "HRT channel etag {} has period {} ns which does not divide the \
                     {} ns round: its slots cannot repeat consistently across rounds",
                    c.etag,
                    h.period.as_ns(),
                    input.round.as_ns()
                ),
                "pick a round that is an integer multiple of every HRT period",
            );
        }
    }
}

/// S7: a real-time event must fit a single CAN frame, DLC 0..=8 (§2.2).
fn lint_dlc_range(input: &LintInput, rep: &mut Report) {
    for c in &input.channels {
        let ChannelSpec::Hrt(h) = &c.spec else {
            continue;
        };
        if h.dlc > 8 {
            rep.error(
                RuleId::DlcRange,
                format!(
                    "HRT channel etag {} declares DLC {} but a CAN frame carries at \
                     most 8 data bytes",
                    c.etag, h.dlc
                ),
                "split the event or use a fragmented NRT channel for bulk data",
            );
        }
    }
}

/// S8: the reserved HRT bandwidth must fit the round — and should leave
/// headroom for SRT/NRT traffic (§3.1).
fn lint_reserved_utilization(input: &LintInput, rep: &mut Report) {
    let Some(plan) = &input.calendar else { return };
    let u = plan.reserved_utilization();
    if u > 1.0 {
        rep.error(
            RuleId::ReservedUtilization,
            format!("reserved HRT bandwidth is {:.1}% of the round", u * 100.0),
            "the reservation set is infeasible; remove channels or lengthen periods",
        );
    } else if u > 0.8 {
        rep.warning(
            RuleId::ReservedUtilization,
            format!(
                "reserved HRT bandwidth is {:.1}% of the round: little headroom \
                 remains for SRT/NRT traffic",
                u * 100.0
            ),
            "keep reserved utilization below ~80% unless the workload is HRT-only",
        );
    }
}
