//! Conformance checking for the event-channel protocol: a static
//! configuration linter and a trace-invariant auditor.
//!
//! The paper's guarantees rest on configuration invariants (disjoint
//! slot reservations with a `ΔT_wait` setup margin, the priority
//! partition `0 = P_HRT < P_SRT < P_NRT`, collision-free identifier
//! encodings, consistent `Δt_p`/`ΔH` parameters) and on runtime
//! behaviour (arbitration follows identifier order, HRT frames stay in
//! their slots, deferred delivery removes jitter, expired SRT events are
//! dropped, fragment streams reassemble). This crate checks both:
//!
//! * **[`lint`]** — rules `S1`..`S8` run *before* a simulation, over a
//!   [`LintInput`] describing the calendar, channels and priority
//!   parameters.
//! * **[`audit`]** — rules `T1`..`T8` run *after* a simulation, over
//!   the structured [`rtec_sim::TraceEvent`] stream it recorded.
//! * **[`srclint`]** — rules `C1`..`C6` run over the live runtime's
//!   *source code*, rejecting concurrency-hygiene violations (sync
//!   primitives bypassing the `rtec_live::sync` facade, unbounded
//!   channels, swallowed lock/recv errors). The `rtec-verify` binary
//!   drives this pass in CI.
//!
//! Both return a [`Report`] of [`Diagnostic`]s — rule ID, severity,
//! message and fix hint — and never panic on broken input. The
//! [`check_network`] helper derives both inputs straight from a live
//! [`rtec_core::Network`].

#![forbid(unsafe_code)]

pub mod audit;
pub mod diag;
pub mod lint;
pub mod net;
pub mod srclint;

pub use audit::{audit, handshake_anomalies, AuditContext};
pub use diag::{Diagnostic, Report, RuleId, Severity};
pub use lint::{lint, ChannelDecl, LintInput};
pub use net::{audit_context, audit_network, check_network, lint_input, lint_network};
pub use srclint::{lint_sources, lint_workspace, SrcFile};
