//! Glue between the conformance passes and a live [`Network`]: derive a
//! [`LintInput`] / [`AuditContext`] from the network's own configuration
//! so harnesses can check any simulation with two calls:
//!
//! ```
//! use rtec_core::prelude::*;
//!
//! let mut net = Network::builder()
//!     .nodes(3)
//!     .round(Duration::from_ms(10))
//!     .build();
//! let sink = net.enable_trace();
//! let door = Subject::new(0x200);
//! {
//!     let mut api = net.api();
//!     api.announce(NodeId(0), door, ChannelSpec::srt(SrtSpec::default()))
//!         .unwrap();
//!     api.subscribe(NodeId(1), door, SubscribeSpec::default())
//!         .unwrap();
//!     api.publish(NodeId(0), door, Event::new(door, vec![1, 2]))
//!         .unwrap();
//! }
//! net.run_for(Duration::from_ms(20));
//! let report = rtec_conformance::check_network(&net, &sink);
//! assert!(report.passes(), "{report}");
//! ```

use crate::audit::{audit, AuditContext};
use crate::diag::Report;
use crate::lint::{lint, ChannelDecl, LintInput};
use rtec_core::channel::ChannelSpec;
use rtec_core::Network;
use rtec_sim::{Duration, TraceSink};

/// Clock-skew allowance applied to trace time-window rules when the
/// network simulates drifting oscillators. Perfect clocks get zero.
const DRIFT_TOLERANCE: Duration = Duration::from_us(500);

/// Build the static linter's input from a network's configuration.
pub fn lint_input(net: &Network) -> LintInput {
    let world = net.world();
    let cfg = world.config();
    LintInput {
        nodes: cfg.nodes,
        timing: cfg.bus.timing,
        round: cfg.round,
        priority_slots: cfg.priority_slots,
        calendar: world.calendar().cloned(),
        channels: world
            .publications()
            .into_iter()
            .map(|(etag, publisher, spec)| ChannelDecl {
                etag,
                publisher,
                spec,
            })
            .collect(),
    }
}

/// Statically lint a network's configuration (rules `S1`..`S8`).
pub fn lint_network(net: &Network) -> Report {
    lint(&lint_input(net))
}

/// Build the trace auditor's context from a network's configuration.
pub fn audit_context(net: &Network) -> AuditContext {
    let world = net.world();
    let cfg = world.config();
    let mut ctx = AuditContext {
        calendar: world.calendar().cloned(),
        calendar_start: world.calendar_start(),
        hrt_deferred_delivery: cfg.hrt_deferred_delivery,
        tolerance: if cfg.clocks.is_some() {
            DRIFT_TOLERANCE
        } else {
            Duration::ZERO
        },
        ..AuditContext::default()
    };
    for (etag, _, class) in world.channels() {
        ctx.channels.insert(etag, class);
    }
    for (etag, _, spec) in world.publications() {
        if let ChannelSpec::Hrt(h) = spec {
            if !h.sporadic {
                ctx.hrt_periods.insert(etag, h.period);
            }
        }
    }
    ctx
}

/// Audit a recorded trace against a network's configuration (rules
/// `T1`..`T8`).
pub fn audit_network(net: &Network, sink: &TraceSink) -> Report {
    audit(&audit_context(net), &sink.events())
}

/// Lint the configuration *and* audit the trace; one merged report.
pub fn check_network(net: &Network, sink: &TraceSink) -> Report {
    let mut rep = lint_network(net);
    rep.merge(audit_network(net, sink));
    rep
}
