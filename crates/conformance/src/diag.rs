//! Structured diagnostics shared by the static linter and the trace
//! auditor.
//!
//! Every check is identified by a [`RuleId`] that carries a stable code
//! (`S*` for static configuration rules, `T*` for trace invariants), the
//! paper section it enforces, and a one-line description. Violations are
//! reported as [`Diagnostic`]s collected in a [`Report`] — never as
//! panics, so a linter run over a broken configuration always terminates
//! with a full list of findings.

use rtec_sim::Time;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (e.g. high utilization).
    Warning,
    /// A protocol or configuration invariant is violated.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of one conformance rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuleId {
    // ---- static configuration rules (pre-simulation) ----
    /// HRT slot reservations must not overlap within the round.
    SlotOverlap,
    /// Every slot must leave the `ΔT_wait` setup margin before its LST.
    SlotSetupMargin,
    /// Priority bands must partition as `0 = P_HRT < P_SRT < P_NRT`.
    PriorityBandPartition,
    /// Identifier encodings must be collision-free across nodes.
    IdCollision,
    /// SRT `Δt_p` / `ΔH` parameters must be mutually consistent.
    SrtHorizonConsistency,
    /// HRT periods must divide the calendar round.
    PeriodDividesRound,
    /// Real-time events must fit one CAN frame (DLC 0..=8).
    DlcRange,
    /// Reserved HRT bandwidth must stay below the full round.
    ReservedUtilization,

    // ---- trace invariants (post-simulation) ----
    /// Arbitration winners must be the lowest contending identifier.
    ArbWinnerOrder,
    /// HRT frames must start inside their reserved slot window.
    HrtSlotWindow,
    /// Deferred HRT delivery never precedes wire completion, and the
    /// delivery cadence matches the channel period (jitter removal).
    DeferredDeliveryJitter,
    /// Expired SRT events are dropped, never transmitted afterwards.
    ExpiredNeverSent,
    /// NRT fragment sequences on the wire are contiguous and reassemble
    /// into complete messages.
    FragContiguity,
    /// Two nodes must never contend with the same identifier.
    DuplicateContender,
    /// Every transmitted identifier's priority matches its channel's
    /// timeliness class band.
    PriorityBandConsistency,
    /// The TxNode field of every transmitted identifier names the node
    /// that actually sent the frame.
    TxNodeMatchesSender,
    /// Gateway session resume never duplicates or silently loses an
    /// HRT delivery: every replay gap is explicitly NRT/SRT-class and
    /// every gap notice belongs to an audited resume.
    ResumeSafety,

    // ---- concurrency-hygiene source lints (rtec-live) ----
    /// Sync primitives must come from the `rtec_live::sync` facade, not
    /// `std::sync` / `std::thread` directly.
    DirectStdSync,
    /// Channels on runtime paths must be bounded.
    UnboundedChannel,
    /// Lock/recv/join results must not be `unwrap()`ed away.
    UnwrappedSyncResult,
    /// Wall-clock sleeps belong to the pacing clock, nowhere else.
    StraySleep,
    /// Wall-clock reads belong to the pacing clock and the socket layer.
    StrayWallClock,
    /// Runtime threads must be spawned named, via `thread::Builder`.
    UnnamedThreadSpawn,
}

impl RuleId {
    /// All rules: static configuration, then trace, then source lints.
    pub const ALL: [RuleId; 23] = [
        RuleId::SlotOverlap,
        RuleId::SlotSetupMargin,
        RuleId::PriorityBandPartition,
        RuleId::IdCollision,
        RuleId::SrtHorizonConsistency,
        RuleId::PeriodDividesRound,
        RuleId::DlcRange,
        RuleId::ReservedUtilization,
        RuleId::ArbWinnerOrder,
        RuleId::HrtSlotWindow,
        RuleId::DeferredDeliveryJitter,
        RuleId::ExpiredNeverSent,
        RuleId::FragContiguity,
        RuleId::DuplicateContender,
        RuleId::PriorityBandConsistency,
        RuleId::TxNodeMatchesSender,
        RuleId::ResumeSafety,
        RuleId::DirectStdSync,
        RuleId::UnboundedChannel,
        RuleId::UnwrappedSyncResult,
        RuleId::StraySleep,
        RuleId::StrayWallClock,
        RuleId::UnnamedThreadSpawn,
    ];

    /// Stable short code (`S1`..`S8`, `T1`..`T9`, `C1`..`C6`).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::SlotOverlap => "S1",
            RuleId::SlotSetupMargin => "S2",
            RuleId::PriorityBandPartition => "S3",
            RuleId::IdCollision => "S4",
            RuleId::SrtHorizonConsistency => "S5",
            RuleId::PeriodDividesRound => "S6",
            RuleId::DlcRange => "S7",
            RuleId::ReservedUtilization => "S8",
            RuleId::ArbWinnerOrder => "T1",
            RuleId::HrtSlotWindow => "T2",
            RuleId::DeferredDeliveryJitter => "T3",
            RuleId::ExpiredNeverSent => "T4",
            RuleId::FragContiguity => "T5",
            RuleId::DuplicateContender => "T6",
            RuleId::PriorityBandConsistency => "T7",
            RuleId::TxNodeMatchesSender => "T8",
            RuleId::ResumeSafety => "T9",
            RuleId::DirectStdSync => "C1",
            RuleId::UnboundedChannel => "C2",
            RuleId::UnwrappedSyncResult => "C3",
            RuleId::StraySleep => "C4",
            RuleId::StrayWallClock => "C5",
            RuleId::UnnamedThreadSpawn => "C6",
        }
    }

    /// The section the rule enforces: a paper section for `S*`/`T*`
    /// rules, the DESIGN.md concurrency chapter for `C*` source lints.
    pub fn paper_section(self) -> &'static str {
        match self {
            RuleId::SlotOverlap => "§3.1",
            RuleId::SlotSetupMargin => "§3.2",
            RuleId::PriorityBandPartition => "§3.3",
            RuleId::IdCollision => "§3.5",
            RuleId::SrtHorizonConsistency => "§3.4",
            RuleId::PeriodDividesRound => "§3.1",
            RuleId::DlcRange => "§2.2",
            RuleId::ReservedUtilization => "§3.1",
            RuleId::ArbWinnerOrder => "§2.1",
            RuleId::HrtSlotWindow => "§3.2",
            RuleId::DeferredDeliveryJitter => "§3.2",
            RuleId::ExpiredNeverSent => "§3.4",
            RuleId::FragContiguity => "§2.2.3",
            RuleId::DuplicateContender => "§3.5",
            RuleId::PriorityBandConsistency => "§3.3",
            RuleId::TxNodeMatchesSender => "§3.5",
            RuleId::ResumeSafety => "§3.2",
            RuleId::DirectStdSync
            | RuleId::UnboundedChannel
            | RuleId::UnwrappedSyncResult
            | RuleId::StraySleep
            | RuleId::StrayWallClock
            | RuleId::UnnamedThreadSpawn => "DESIGN.md §6",
        }
    }

    /// One-line description of what the rule checks.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::SlotOverlap => "HRT slot reservations must not overlap within the round",
            RuleId::SlotSetupMargin => {
                "every slot must leave the ΔT_wait setup margin before its LST"
            }
            RuleId::PriorityBandPartition => {
                "priority bands must partition as 0 = P_HRT < P_SRT < P_NRT"
            }
            RuleId::IdCollision => "identifier encodings must be collision-free across nodes",
            RuleId::SrtHorizonConsistency => "SRT Δt_p / ΔH parameters must be mutually consistent",
            RuleId::PeriodDividesRound => "HRT periods must divide the calendar round",
            RuleId::DlcRange => "real-time events must fit one CAN frame (DLC 0..=8)",
            RuleId::ReservedUtilization => "reserved HRT bandwidth must fit the round",
            RuleId::ArbWinnerOrder => {
                "arbitration winners must be the lowest contending identifier"
            }
            RuleId::HrtSlotWindow => "HRT frames must start inside their reserved slot window",
            RuleId::DeferredDeliveryJitter => {
                "deferred HRT delivery follows wire completion at the channel period"
            }
            RuleId::ExpiredNeverSent => "expired SRT events are dropped, never transmitted",
            RuleId::FragContiguity => {
                "NRT fragment sequences are contiguous and reassemble completely"
            }
            RuleId::DuplicateContender => "two nodes must never contend with the same identifier",
            RuleId::PriorityBandConsistency => {
                "transmitted priorities must match the channel's class band"
            }
            RuleId::TxNodeMatchesSender => {
                "the TxNode identifier field must name the actual sender"
            }
            RuleId::ResumeSafety => {
                "session resume replays HRT exactly once; gaps are explicit and non-HRT"
            }
            RuleId::DirectStdSync => "sync primitives must come from the rtec_live::sync facade",
            RuleId::UnboundedChannel => "runtime channels must be bounded",
            RuleId::UnwrappedSyncResult => "lock/recv/join results must be handled, not unwrap()ed",
            RuleId::StraySleep => "wall-clock sleeps belong to the pacing clock",
            RuleId::StrayWallClock => {
                "wall-clock reads belong to the pacing clock and socket layer"
            }
            RuleId::UnnamedThreadSpawn => {
                "runtime threads must be spawned named, via thread::Builder"
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding: a rule violation (or warning) with enough context to fix
/// it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// How bad it is.
    pub severity: Severity,
    /// What is wrong, with concrete values.
    pub message: String,
    /// How to fix it (configuration change, parameter bound).
    pub fix_hint: String,
    /// Simulated instant of the offending trace event (trace rules only).
    pub at: Option<Time>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}",
            self.severity,
            self.rule.code(),
            self.rule.paper_section(),
            self.message
        )?;
        if let Some(at) = self.at {
            write!(f, " (at {at})")?;
        }
        if !self.fix_hint.is_empty() {
            write!(f, "\n    fix: {}", self.fix_hint)?;
        }
        Ok(())
    }
}

/// The outcome of a linter or auditor pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in rule-evaluation order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Record an error-severity finding.
    pub fn error(&mut self, rule: RuleId, message: impl Into<String>, fix: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: Severity::Error,
            message: message.into(),
            fix_hint: fix.into(),
            at: None,
        });
    }

    /// Record a warning-severity finding.
    pub fn warning(&mut self, rule: RuleId, message: impl Into<String>, fix: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: Severity::Warning,
            message: message.into(),
            fix_hint: fix.into(),
            at: None,
        });
    }

    /// Record an error-severity finding anchored to a trace instant.
    pub fn error_at(
        &mut self,
        rule: RuleId,
        at: Time,
        message: impl Into<String>,
        fix: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: Severity::Error,
            message: message.into(),
            fix_hint: fix.into(),
            at: Some(at),
        });
    }

    /// Merge another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// `true` when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when no *error*-severity finding exists (warnings allowed).
    pub fn passes(&self) -> bool {
        self.errors().next().is_none()
    }

    /// All error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// All warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// All findings of one rule.
    pub fn of_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// `true` when at least one finding of `rule` exists.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "conformance: clean");
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        writeln!(f, "conformance: {errors} error(s), {warnings} warning(s)")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RuleId::ALL.len());
        assert_eq!(RuleId::SlotOverlap.code(), "S1");
        assert_eq!(RuleId::TxNodeMatchesSender.code(), "T8");
        assert_eq!(RuleId::UnnamedThreadSpawn.code(), "C6");
    }

    #[test]
    fn every_rule_cites_a_section() {
        for r in RuleId::ALL {
            // S*/T* rules cite a paper section directly; C* source
            // lints cite the DESIGN.md concurrency chapter.
            assert!(r.paper_section().contains('§'), "{r:?}");
            assert!(!r.description().is_empty(), "{r:?}");
        }
    }

    #[test]
    fn report_classification() {
        let mut rep = Report::new();
        assert!(rep.is_clean() && rep.passes());
        rep.warning(RuleId::ReservedUtilization, "high", "shed load");
        assert!(!rep.is_clean() && rep.passes());
        rep.error(RuleId::SlotOverlap, "overlap", "move slot");
        assert!(!rep.passes());
        assert!(rep.fired(RuleId::SlotOverlap));
        assert!(!rep.fired(RuleId::DlcRange));
        assert_eq!(rep.errors().count(), 1);
        assert_eq!(rep.of_rule(RuleId::ReservedUtilization).len(), 1);
    }

    #[test]
    fn display_contains_code_and_section() {
        let mut rep = Report::new();
        rep.error_at(
            RuleId::ArbWinnerOrder,
            Time::from_us(7),
            "winner 0x20 but 0x10 contended",
            "",
        );
        let s = format!("{rep}");
        assert!(s.contains("T1"));
        assert!(s.contains("§2.1"));
        assert!(s.contains("1 error(s)"));
    }
}
