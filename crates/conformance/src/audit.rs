//! Trace-invariant auditing (rules `T1`..`T9`).
//!
//! The auditor consumes the structured [`TraceEvent`] stream a
//! simulation recorded and checks, post-hoc, that the protocol behaved
//! as the paper specifies: arbitration honoured identifier order, HRT
//! frames stayed inside their reserved slots, deferred delivery removed
//! jitter, expired SRT events were dropped rather than sent, and NRT
//! fragment streams reassembled completely.

use crate::diag::{Report, RuleId};
use rtec_analysis::admission::CalendarPlan;
use rtec_can::PRIO_HRT;
use rtec_core::binding::ETAG_FIRST_DYNAMIC;
use rtec_core::channel::ChannelClass;
use rtec_core::node::{unpack_tag, TagKind};
use rtec_sim::{Duration, Time, TraceEvent};
use std::collections::{BTreeMap, HashMap};

/// Identifier bit layout (mirrors `rtec_can::id`; the auditor decodes
/// raw 29-bit values recorded in the trace).
const ETAG_BITS: u32 = 14;
const TXNODE_BITS: u32 = 7;

fn id_priority(raw: u64) -> u8 {
    (raw >> (ETAG_BITS + TXNODE_BITS)) as u8
}
fn id_txnode(raw: u64) -> u8 {
    ((raw >> ETAG_BITS) & ((1 << TXNODE_BITS) - 1)) as u8
}
fn id_etag(raw: u64) -> u16 {
    (raw & ((1 << ETAG_BITS) - 1)) as u16
}

/// Static context the auditor interprets a trace against.
#[derive(Clone, Debug, Default)]
pub struct AuditContext {
    /// The installed HRT calendar, if any (enables `T2`).
    pub calendar: Option<CalendarPlan>,
    /// True-time instant of the first round start.
    pub calendar_start: Option<Time>,
    /// Timeliness class of each bound etag (enables `T7`).
    pub channels: HashMap<u16, ChannelClass>,
    /// Declared period of each *periodic* (non-sporadic) HRT etag
    /// (enables the cadence half of `T3`).
    pub hrt_periods: HashMap<u16, Duration>,
    /// Whether deferred HRT delivery (jitter removal) was on.
    pub hrt_deferred_delivery: bool,
    /// Slack added to every time-window comparison, to absorb clock
    /// drift between node-local and bus time. Zero for perfect clocks.
    pub tolerance: Duration,
}

impl AuditContext {
    /// A context with no calendar and no channels — only the
    /// context-free rules (`T1`, `T4`..`T6`, `T8`) can fire.
    pub fn bare() -> Self {
        AuditContext::default()
    }

    /// Assemble a full context from its parts. This is how runtimes
    /// other than the simulator (e.g. the live broker) hand their
    /// static configuration to the auditor: pass the installed
    /// calendar, the bus-time instant of round 0, and the etag
    /// class/period maps. Deferred HRT delivery is assumed on (both
    /// runtimes implement it); widen `tolerance` afterwards if the
    /// trace mixes imperfect clocks.
    pub fn from_parts(
        calendar: CalendarPlan,
        calendar_start: Time,
        channels: HashMap<u16, ChannelClass>,
        hrt_periods: HashMap<u16, Duration>,
    ) -> Self {
        AuditContext {
            calendar: Some(calendar),
            calendar_start: Some(calendar_start),
            channels,
            hrt_periods,
            hrt_deferred_delivery: true,
            tolerance: Duration::ZERO,
        }
    }
}

/// Run all trace rules over `events`.
pub fn audit(ctx: &AuditContext, events: &[TraceEvent]) -> Report {
    let mut rep = Report::new();
    audit_arbitration(events, &mut rep);
    audit_hrt_slot_window(ctx, events, &mut rep);
    audit_deferred_delivery(ctx, events, &mut rep);
    audit_expired_never_sent(events, &mut rep);
    audit_frag_contiguity(events, &mut rep);
    audit_priority_bands(ctx, events, &mut rep);
    audit_txnode(events, &mut rep);
    audit_resume_safety(events, &mut rep);
    rep
}

fn is_tx_start(kind: &str) -> bool {
    matches!(kind, "tx_start" | "tx_start_corrupt" | "tx_start_omit")
}

/// T1 + T6: every `arb` record's winner must be the minimum contending
/// identifier (§2.1), and no identifier may be contended by two nodes at
/// once (§3.5).
fn audit_arbitration(events: &[TraceEvent], rep: &mut Report) {
    for ev in events.iter().filter(|e| e.kind == "arb") {
        let cands = ev.fields_named("cand");
        let Some(win) = ev.field("win") else { continue };
        let ids: Vec<u64> = cands.iter().map(|c| c & 0xFFFF_FFFF).collect();
        if let Some(&min) = ids.iter().min() {
            if win != min {
                rep.error_at(
                    RuleId::ArbWinnerOrder,
                    ev.time,
                    format!(
                        "arbitration winner has identifier {win:#x} while {min:#x} \
                         was contending (lower wins)"
                    ),
                    "the bus model violated CAN arbitration; check controller state",
                );
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                let nodes: Vec<u64> = cands
                    .iter()
                    .filter(|c| (*c & 0xFFFF_FFFF) == w[0])
                    .map(|c| c >> 32)
                    .collect();
                rep.error_at(
                    RuleId::DuplicateContender,
                    ev.time,
                    format!(
                        "identifier {:#x} contended simultaneously from nodes {nodes:?}; \
                         CAN requires system-wide unique identifiers",
                        w[0]
                    ),
                    "fix the etag/TxNode assignment so encodings cannot collide",
                );
                break;
            }
        }
    }
}

/// T2: every HRT-priority frame must start on the wire inside a reserved
/// slot window `[ready, deadline]` of its (etag, publisher) — between
/// the slot's ready instant and its delivery deadline (§3.2).
fn audit_hrt_slot_window(ctx: &AuditContext, events: &[TraceEvent], rep: &mut Report) {
    let (Some(plan), Some(start)) = (&ctx.calendar, ctx.calendar_start) else {
        return;
    };
    let round_ns = plan.round.as_ns();
    if round_ns == 0 {
        return;
    }
    let tol = ctx.tolerance.as_ns() as i128;
    for ev in events.iter().filter(|e| is_tx_start(e.kind)) {
        let Some(raw) = ev.field("id") else { continue };
        if id_priority(raw) != PRIO_HRT {
            continue;
        }
        let (etag, txnode) = (id_etag(raw), id_txnode(raw));
        let offset = ev.time.as_ns() as i128 - start.as_ns() as i128;
        if offset + tol < 0 {
            rep.error_at(
                RuleId::HrtSlotWindow,
                ev.time,
                format!("HRT frame (etag {etag}) transmitted before the first round start"),
                "do not raise a frame to P_HRT outside the calendar",
            );
            continue;
        }
        let in_round = offset.rem_euclid(round_ns as i128);
        let in_window = plan
            .slots
            .iter()
            .filter(|s| s.etag == etag && s.publisher.0 == txnode)
            .any(|s| {
                let lo = s.start.as_ns() as i128 - tol;
                let hi = s.deadline().as_ns() as i128 + tol;
                // The offset is taken modulo the round, so a window
                // starting near the round's end may wrap.
                (lo..=hi).contains(&in_round)
                    || (lo..=hi).contains(&(in_round + round_ns as i128))
                    || (lo..=hi).contains(&(in_round - round_ns as i128))
            });
        if !in_window {
            rep.error_at(
                RuleId::HrtSlotWindow,
                ev.time,
                format!(
                    "HRT frame (etag {etag}, node {txnode}) started {in_round} ns into \
                     the round, outside every slot reserved for it"
                ),
                "HRT transmissions must stay within their calendar reservation",
            );
        }
    }
}

/// T3: with deferred delivery on, no HRT event is delivered before its
/// frame completed on the wire, and per (etag, subscriber) the delivery
/// cadence is an integer multiple of the channel period — the jitter
/// removal of §3.2.
fn audit_deferred_delivery(ctx: &AuditContext, events: &[TraceEvent], rep: &mut Report) {
    if !ctx.hrt_deferred_delivery {
        return;
    }
    let mut per_sub: BTreeMap<(u16, u64), Vec<u64>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.kind == "hrt_deliver") {
        let (Some(etag), Some(node), Some(wire)) =
            (ev.field("etag"), ev.field("node"), ev.field("wire"))
        else {
            continue;
        };
        if ev.time.as_ns() < wire {
            rep.error_at(
                RuleId::DeferredDeliveryJitter,
                ev.time,
                format!(
                    "HRT event (etag {etag}, node {node}) delivered {} ns before its \
                     frame completed on the wire",
                    wire - ev.time.as_ns()
                ),
                "deferred delivery must wait for the slot deadline",
            );
        }
        per_sub
            .entry((etag as u16, node))
            .or_default()
            .push(ev.time.as_ns());
    }
    for ((etag, node), mut times) in per_sub {
        let Some(&period) = ctx.hrt_periods.get(&etag) else {
            continue;
        };
        let period_ns = period.as_ns();
        if period_ns == 0 || times.len() < 2 {
            continue;
        }
        times.sort_unstable();
        // Lost events make the spacing a *multiple* of the period;
        // anything off-grid is delivery jitter the protocol promised to
        // remove.
        let allow = (period_ns / 100).max(50_000) + ctx.tolerance.as_ns();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            let rem = gap % period_ns;
            let dev = rem.min(period_ns - rem);
            if dev > allow {
                rep.error_at(
                    RuleId::DeferredDeliveryJitter,
                    Time::from_ns(w[1]),
                    format!(
                        "HRT deliveries (etag {etag}, node {node}) are {gap} ns apart, \
                         {dev} ns off the {period_ns} ns period grid"
                    ),
                    "deferred delivery should pin deliveries to the slot-deadline grid",
                );
            }
        }
    }
}

/// T4: once an SRT event expires (its temporal validity ran out), its
/// frame must never appear on the wire afterwards (§3.4).
fn audit_expired_never_sent(events: &[TraceEvent], rep: &mut Report) {
    // Keyed by (tag, node): SRT sequence numbers are per-node, so the
    // same tag from different senders names different events.
    let mut expired_at: HashMap<(u64, u64), u64> = HashMap::new();
    for ev in events.iter().filter(|e| e.kind == "srt_expire") {
        if let (Some(tag), Some(node)) = (ev.field("tag"), ev.field("node")) {
            expired_at.entry((tag, node)).or_insert(ev.time.as_ns());
        }
    }
    if expired_at.is_empty() {
        return;
    }
    for ev in events.iter().filter(|e| is_tx_start(e.kind)) {
        let (Some(tag), Some(node)) = (ev.field("tag"), ev.field("node")) else {
            continue;
        };
        if let Some(&t_exp) = expired_at.get(&(tag, node)) {
            if ev.time.as_ns() >= t_exp {
                let (_, etag, seq) = unpack_tag(tag).unwrap_or((TagKind::Srt, 0, 0));
                rep.error_at(
                    RuleId::ExpiredNeverSent,
                    ev.time,
                    format!(
                        "SRT event (etag {etag}, seq {seq}) transmitted although it \
                         expired at {t_exp} ns"
                    ),
                    "expired events must be discarded from the send queue",
                );
            }
        }
    }
}

/// T5: per (origin, etag), fragment indices observed on the wire must
/// form contiguous runs starting at 0, and every reassembled message
/// must match the byte count of the transfer that produced it (§2.2.3).
fn audit_frag_contiguity(events: &[TraceEvent], rep: &mut Report) {
    // Enqueued fragmented transfers, FIFO per (origin, etag).
    let mut enqueued: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.kind == "nrt_enqueue") {
        if ev.field("fragmented") != Some(1) {
            continue;
        }
        let (Some(etag), Some(node), Some(frags), Some(bytes)) = (
            ev.field("etag"),
            ev.field("node"),
            ev.field("frags"),
            ev.field("bytes"),
        ) else {
            continue;
        };
        enqueued
            .entry((node, etag))
            .or_default()
            .push((frags, bytes));
    }

    // Successfully transferred fragment indices, in wire order.
    let mut wire: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for ev in events.iter().filter(|e| e.kind == "tx_end") {
        if ev.field("all") != Some(1) {
            continue;
        }
        let (Some(tag), Some(node)) = (ev.field("tag"), ev.field("node")) else {
            continue;
        };
        let Some((TagKind::Nrt, etag, seq)) = unpack_tag(tag) else {
            continue;
        };
        if !enqueued.contains_key(&(node, u64::from(etag))) {
            continue; // unfragmented NRT: seq is not a fragment index
        }
        wire.entry((node, u64::from(etag)))
            .or_default()
            .push((u64::from(seq), ev.time.as_ns()));
    }
    for ((node, etag), seqs) in &wire {
        let mut prev: Option<u64> = None;
        for &(seq, at) in seqs {
            let ok = match prev {
                None => seq == 0,
                Some(p) => seq == p + 1 || seq == 0,
            };
            if !ok {
                rep.error_at(
                    RuleId::FragContiguity,
                    Time::from_ns(at),
                    format!(
                        "NRT fragment stream (origin {node}, etag {etag}) jumped from \
                         index {:?} to {seq}; fragments must be sent in order",
                        prev
                    ),
                    "send fragments strictly in sequence, one transfer at a time",
                );
            }
            prev = Some(seq);
        }
    }

    // Reassembled messages, FIFO per (subscriber, origin, etag), checked
    // against the origin's enqueue order.
    let mut complete_idx: HashMap<(u64, u64, u64), usize> = HashMap::new();
    for ev in events.iter().filter(|e| e.kind == "nrt_complete") {
        let (Some(etag), Some(node), Some(origin), Some(bytes)) = (
            ev.field("etag"),
            ev.field("node"),
            ev.field("origin"),
            ev.field("bytes"),
        ) else {
            continue;
        };
        let sent = enqueued.get(&(origin, etag)).cloned().unwrap_or_default();
        let idx = complete_idx.entry((node, origin, etag)).or_insert(0);
        match sent.get(*idx) {
            None => {
                rep.error_at(
                    RuleId::FragContiguity,
                    ev.time,
                    format!(
                        "node {node} reassembled a message (origin {origin}, etag \
                         {etag}) that was never enqueued"
                    ),
                    "reassembly must only complete for transfers actually sent",
                );
            }
            Some(&(_, sent_bytes)) if sent_bytes != bytes => {
                rep.error_at(
                    RuleId::FragContiguity,
                    ev.time,
                    format!(
                        "node {node} reassembled {bytes} byte(s) for origin {origin} \
                         etag {etag}, but transfer #{idx} carried {sent_bytes} byte(s)"
                    ),
                    "fragment payload boundaries were lost in reassembly",
                );
            }
            Some(_) => {}
        }
        *idx += 1;
    }
}

/// T7: the priority of every transmitted identifier must sit inside the
/// band of the channel's timeliness class; infrastructure traffic must
/// never use `P_HRT` (§3.3).
fn audit_priority_bands(ctx: &AuditContext, events: &[TraceEvent], rep: &mut Report) {
    for ev in events.iter().filter(|e| is_tx_start(e.kind)) {
        let Some(raw) = ev.field("id") else { continue };
        let (prio, etag) = (id_priority(raw), id_etag(raw));
        if etag < ETAG_FIRST_DYNAMIC {
            if prio == PRIO_HRT {
                rep.error_at(
                    RuleId::PriorityBandConsistency,
                    ev.time,
                    format!(
                        "infrastructure frame (etag {etag}) used P_HRT = 0; priority \
                         0 is reserved for calendar slots"
                    ),
                    "send SYNC/BIND traffic at an SRT-band priority",
                );
            }
            continue;
        }
        let Some(class) = ctx.channels.get(&etag) else {
            continue;
        };
        let band_ok = match class {
            // LST priority-raising means an HRT frame is always on the
            // wire at priority 0 (§3.2).
            ChannelClass::Hrt => prio == PRIO_HRT,
            ChannelClass::Srt => (rtec_can::PRIO_SRT_MIN..=rtec_can::PRIO_SRT_MAX).contains(&prio),
            ChannelClass::Nrt => prio >= rtec_can::PRIO_NRT_MIN,
        };
        if !band_ok {
            rep.error_at(
                RuleId::PriorityBandConsistency,
                ev.time,
                format!(
                    "{class:?} channel etag {etag} transmitted at priority {prio}, \
                     outside its class band"
                ),
                "encode identifiers with the class's priority band (0 = P_HRT < P_SRT < P_NRT)",
            );
        }
    }
}

/// Count replayed handshakes in a live trace: `hello_replay` records
/// the broker emits when a `Hello` arrives carrying an incarnation
/// older than the node's current one (a straggling duplicate of an
/// earlier handshake, not a rejoin — those trace as `hello_rejoin`).
/// The chaos harness feeds its merged trace through this to assert
/// duplicated handshake datagrams were classified, not re-welcomed.
pub fn handshake_anomalies(events: &[TraceEvent]) -> usize {
    events.iter().filter(|e| e.kind == "hello_replay").count()
}

/// T8: the TxNode field of every transmitted identifier must equal the
/// node that actually sent the frame — the encoding that makes
/// identifiers system-wide unique (§3.5).
fn audit_txnode(events: &[TraceEvent], rep: &mut Report) {
    for ev in events.iter().filter(|e| is_tx_start(e.kind)) {
        let (Some(raw), Some(node)) = (ev.field("id"), ev.field("node")) else {
            continue;
        };
        let encoded = u64::from(id_txnode(raw));
        if encoded != node {
            rep.error_at(
                RuleId::TxNodeMatchesSender,
                ev.time,
                format!(
                    "frame with identifier {raw:#x} encodes TxNode {encoded} but was \
                     sent by node {node}"
                ),
                "nodes must stamp their own TxNode into every identifier",
            );
        }
    }
}

/// T9: gateway session resume must never duplicate or silently lose an
/// HRT delivery (§3.2). Concretely: no `gw_gap` record may name the
/// HRT class (gaps are legal only for SRT staleness sheds and NRT ring
/// overruns), every `gw_gap` must be attributable to a `gw_resume` of
/// the same client at or before it (gaps are only minted while a
/// resume replays), and a resume whose verdict was `Resumed` (code 1 —
/// the no-loss outcome) must report zero gap frames.
fn audit_resume_safety(events: &[TraceEvent], rep: &mut Report) {
    // Earliest resume instant per client; gaps can only trail one.
    let mut first_resume: HashMap<u64, Time> = HashMap::new();
    for ev in events.iter().filter(|e| e.kind == "gw_resume") {
        let (Some(client), Some(verdict)) = (ev.field("client"), ev.field("verdict")) else {
            continue;
        };
        first_resume
            .entry(client)
            .and_modify(|t| *t = (*t).min(ev.time))
            .or_insert(ev.time);
        let gaps = ev.field("gaps").unwrap_or(0);
        if verdict == 1 && gaps != 0 {
            rep.error_at(
                RuleId::ResumeSafety,
                ev.time,
                format!(
                    "client {client} resumed with verdict Resumed but the gateway \
                     recorded {gaps} gap frame(s)"
                ),
                "a lossless resume must answer with verdict Gap when anything was dropped",
            );
        }
    }
    for ev in events.iter().filter(|e| e.kind == "gw_gap") {
        let (Some(client), Some(class)) = (ev.field("client"), ev.field("class")) else {
            continue;
        };
        if class == 0 {
            rep.error_at(
                RuleId::ResumeSafety,
                ev.time,
                format!("client {client} was sent a Gap notice for the HRT class"),
                "HRT deliveries are never shed; replay them from the session buffer instead",
            );
        }
        match first_resume.get(&client) {
            Some(&at) if at <= ev.time => {}
            _ => {
                rep.error_at(
                    RuleId::ResumeSafety,
                    ev.time,
                    format!(
                        "client {client} was sent a Gap notice with no prior resume \
                         on record"
                    ),
                    "gap notices may only be minted while a session resume replays",
                );
            }
        }
    }
}
