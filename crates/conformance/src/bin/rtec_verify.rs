//! `rtec-verify` — the concurrency-hygiene lint pass, as a CI gate.
//!
//! Runs rules `C1`..`C6` (see [`rtec_conformance::srclint`]) over
//! `crates/live/src` under the given workspace root (default: the
//! current directory) and exits non-zero on any error-severity
//! finding. ci.sh runs this alongside the test suite; the rules it
//! enforces are what make the `cfg(loom)` model-check suite's coverage
//! claims meaningful.
//!
//! Usage: `rtec-verify [workspace-root]`

use rtec_conformance::srclint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!(
                "rtec-verify: cannot read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    println!("{report}");
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
