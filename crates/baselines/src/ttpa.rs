//! A TTP/A-style master-slave polled baseline (§4).
//!
//! In TTP/A "the master always initiates the communication with the
//! slaves sending their own messages in a predefined manner": a round
//! begins with the master's fireworks frame, then each slave transmits
//! in its assigned slot, in order. Two consequences the event-channel
//! model avoids:
//!
//! * the master is a single point of failure (a dead master silences
//!   the whole bus), and
//! * a sporadic event at a slave waits, on average, half a round before
//!   its polling slot comes up — event-driven arbitration sends it
//!   after at most one frame of blocking.
//!
//! The model runs the polling schedule on the same simulated bus and
//! measures exactly that: sporadic-event latency from occurrence to
//! wire completion.

use rtec_can::bits::exact_frame_bits;
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, FilterMode, Frame, MapScheduler, NodeId,
    Notification, TxRequest, PRIO_HRT,
};
use rtec_sim::{Ctx, Duration, Engine, Histogram, Model, Rng, RngStreams, Time};
use serde::{Deserialize, Serialize};

/// Configuration of a TTP/A-style polled bus.
#[derive(Clone, Debug)]
pub struct TtpaConfig {
    /// Bus parameters.
    pub bus: BusConfig,
    /// The master node.
    pub master: NodeId,
    /// Polled slaves in slot order, each with its payload size.
    pub slaves: Vec<(NodeId, u8)>,
    /// Round period (must exceed the summed frame times).
    pub round_period: Duration,
    /// Mean gap of the sporadic events whose latency is measured
    /// (events occur at random slaves).
    pub sporadic_mean_gap: Duration,
    /// Run seed.
    pub seed: u64,
    /// `true` = the master dies mid-run (single-point-of-failure demo).
    pub kill_master_at: Option<Time>,
}

/// Measured outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TtpaStats {
    /// Completed polling rounds.
    pub rounds: u64,
    /// Slave data frames transmitted.
    pub responses: u64,
    /// Sporadic events generated.
    pub sporadic_events: u64,
    /// Sporadic events whose data reached the wire.
    pub sporadic_served: u64,
    /// Occurrence → wire completion latency of sporadic events (ns).
    pub sporadic_latency_ns: Histogram,
}

/// World events.
#[derive(Clone, Copy, Debug)]
pub enum TtpaEvent {
    /// Bus activity.
    Can(CanEvent),
    /// Master starts the next round.
    RoundStart,
    /// A sporadic event occurs at a slave.
    Sporadic,
    /// The master dies.
    KillMaster,
}

const ETAG_POLL: u16 = 8;
const ETAG_DATA_BASE: u16 = 32;

/// The polled-bus world.
pub struct TtpaWorld {
    bus: CanBus,
    config: TtpaConfig,
    rng: Rng,
    /// Pending sporadic event occurrence time per slave (the value the
    /// slave will ship in its next slot).
    pending_sporadic: Vec<Option<Time>>,
    /// Index of the slave expected to answer next (None = between
    /// rounds).
    polling: Option<usize>,
    master_alive: bool,
    /// Measured outcome.
    pub stats: TtpaStats,
}

fn wrap(ev: CanEvent) -> TtpaEvent {
    TtpaEvent::Can(ev)
}

impl TtpaWorld {
    /// Build the engine with the first round and sporadic generator
    /// scheduled.
    pub fn engine(config: TtpaConfig) -> Engine<TtpaWorld> {
        let num_nodes = config
            .slaves
            .iter()
            .map(|&(n, _)| n.index() + 1)
            .chain([config.master.index() + 1])
            .max()
            .unwrap_or(1);
        let streams = RngStreams::new(config.seed);
        let mut bus = CanBus::new(config.bus, num_nodes, FaultInjector::none());
        for i in 0..num_nodes {
            bus.controller_mut(NodeId(i as u8))
                .set_filter_mode(FilterMode::AcceptAll);
        }
        let n_slaves = config.slaves.len();
        let kill = config.kill_master_at;
        let world = TtpaWorld {
            bus,
            rng: streams.stream("sporadic"),
            pending_sporadic: vec![None; n_slaves],
            polling: None,
            master_alive: true,
            stats: TtpaStats::default(),
            config,
        };
        let mut engine = Engine::new(world);
        engine.schedule_at(Time::ZERO, TtpaEvent::RoundStart);
        engine.schedule_at(Time::ZERO, TtpaEvent::Sporadic);
        if let Some(t) = kill {
            engine.schedule_at(t, TtpaEvent::KillMaster);
        }
        engine
    }

    fn on_round_start(&mut self, ctx: &mut Ctx<TtpaEvent>) {
        ctx.after(self.config.round_period, TtpaEvent::RoundStart);
        if !self.master_alive {
            return; // silent bus: nobody may speak without the master
        }
        // Fireworks frame opens the round.
        let frame = Frame::new(CanId::new(PRIO_HRT, self.config.master.0, ETAG_POLL), &[0]);
        let mut sched = MapScheduler::new(ctx, wrap);
        self.bus.submit(
            &mut sched,
            self.config.master,
            TxRequest {
                frame,
                single_shot: false,
                tag: u64::from(ETAG_POLL),
            },
        );
    }

    fn poll_next(&mut self, ctx: &mut Ctx<TtpaEvent>, idx: usize) {
        if idx >= self.config.slaves.len() {
            self.polling = None;
            self.stats.rounds += 1;
            return;
        }
        self.polling = Some(idx);
        let (node, dlc) = self.config.slaves[idx];
        let frame = Frame::new(
            CanId::new(PRIO_HRT, node.0, ETAG_DATA_BASE + idx as u16),
            &vec![idx as u8; usize::from(dlc)],
        );
        let mut sched = MapScheduler::new(ctx, wrap);
        self.bus.submit(
            &mut sched,
            node,
            TxRequest {
                frame,
                single_shot: false,
                tag: u64::from(ETAG_DATA_BASE + idx as u16),
            },
        );
    }

    fn on_note(&mut self, ctx: &mut Ctx<TtpaEvent>, note: Notification) {
        if let Notification::TxCompleted { tag, .. } = note {
            if tag == u64::from(ETAG_POLL) {
                // Round opened: first slave answers.
                self.poll_next(ctx, 0);
            } else if tag >= u64::from(ETAG_DATA_BASE) {
                let idx = (tag - u64::from(ETAG_DATA_BASE)) as usize;
                self.stats.responses += 1;
                // The slot carried whatever sporadic data was pending.
                if let Some(occurred) = self.pending_sporadic[idx].take() {
                    self.stats.sporadic_served += 1;
                    self.stats
                        .sporadic_latency_ns
                        .record(ctx.now().saturating_since(occurred).as_ns());
                }
                self.poll_next(ctx, idx + 1);
            }
        }
    }

    fn on_sporadic(&mut self, ctx: &mut Ctx<TtpaEvent>) {
        let now = ctx.now();
        let gap = Duration::from_ns(
            self.rng
                .gen_exp(self.config.sporadic_mean_gap.as_ns() as f64)
                .max(1.0) as u64,
        );
        ctx.at(now + gap, TtpaEvent::Sporadic);
        if self.config.slaves.is_empty() {
            return;
        }
        let idx = self.rng.gen_range_u64(self.config.slaves.len() as u64) as usize;
        self.stats.sporadic_events += 1;
        // Latest-value semantics: a newer occurrence replaces an unsent
        // older one (the old value's latency is never recorded — it was
        // superseded, matching a sensor's "current value" register).
        self.pending_sporadic[idx] = Some(now);
    }
}

impl Model for TtpaWorld {
    type Event = TtpaEvent;

    fn handle(&mut self, ctx: &mut Ctx<TtpaEvent>, ev: TtpaEvent) {
        match ev {
            TtpaEvent::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, wrap);
                    self.bus.handle(&mut sched, can_ev)
                };
                for note in notes {
                    self.on_note(ctx, note);
                }
            }
            TtpaEvent::RoundStart => self.on_round_start(ctx),
            TtpaEvent::Sporadic => self.on_sporadic(ctx),
            TtpaEvent::KillMaster => {
                self.master_alive = false;
                let master = self.config.master;
                self.bus.controller_mut(master).set_operational(false);
            }
        }
    }
}

/// Run a TTP/A configuration for `horizon`.
pub fn run_ttpa(config: TtpaConfig, horizon: Duration) -> (TtpaStats, rtec_can::BusStats) {
    let mut engine = TtpaWorld::engine(config);
    engine.run_until(Time::ZERO + horizon);
    let stats = engine.model.stats.clone();
    (stats, engine.model.bus.stats)
}

/// Wire time of one full polling round (fireworks + all slave frames).
pub fn round_wire_time(config: &TtpaConfig) -> Duration {
    let poll = Frame::new(CanId::new(PRIO_HRT, config.master.0, ETAG_POLL), &[0]);
    let mut total = config.bus.timing.duration_of(exact_frame_bits(&poll));
    for (i, &(node, dlc)) in config.slaves.iter().enumerate() {
        let f = Frame::new(
            CanId::new(PRIO_HRT, node.0, ETAG_DATA_BASE + i as u16),
            &vec![0u8; usize::from(dlc)],
        );
        total += config.bus.timing.duration_of(exact_frame_bits(&f));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TtpaConfig {
        TtpaConfig {
            bus: BusConfig::default(),
            master: NodeId(0),
            slaves: vec![(NodeId(1), 8), (NodeId(2), 8), (NodeId(3), 4)],
            round_period: Duration::from_ms(2),
            sporadic_mean_gap: Duration::from_ms(5),
            seed: 9,
            kill_master_at: None,
        }
    }

    #[test]
    fn rounds_poll_all_slaves_in_order() {
        let (stats, bus) = run_ttpa(config(), Duration::from_ms(100));
        assert!(stats.rounds >= 49, "rounds {}", stats.rounds);
        assert_eq!(stats.responses, stats.rounds * 3);
        assert_eq!(bus.frames_corrupted, 0);
    }

    #[test]
    fn sporadic_latency_is_about_half_a_round() {
        let (stats, _) = run_ttpa(config(), Duration::from_secs(5));
        assert!(stats.sporadic_served > 500);
        let mut h = stats.sporadic_latency_ns.clone();
        let mean = h.mean().unwrap();
        // Uniform waiting for the next polling slot: mean ≈ half the
        // round period (plus frame times).
        assert!(
            (0.3e6..1.6e6).contains(&mean),
            "mean sporadic latency {mean}ns"
        );
        assert!(h.max().unwrap() > 1_500_000, "worst case near a full round");
        let _ = h.percentile(99.0);
    }

    #[test]
    fn dead_master_silences_the_bus() {
        let mut cfg = config();
        cfg.kill_master_at = Some(Time::from_ms(50));
        let (stats, bus) = run_ttpa(cfg, Duration::from_ms(200));
        // Rounds stop growing after the kill.
        assert!(stats.rounds < 30, "rounds {}", stats.rounds);
        // No traffic at all in the second half: the single point of
        // failure takes everything down.
        let frames_after = bus.frames_ok;
        assert!(frames_after < 30 * 4 + 4);
    }

    #[test]
    fn round_wire_time_is_consistent() {
        let t = round_wire_time(&config());
        // 1 poll (~70 µs) + two 8-byte (~135 µs) + one 4-byte (~100 µs).
        assert!(
            t > Duration::from_us(300) && t < Duration::from_us(550),
            "{t}"
        );
    }
}
