//! # rtec-baselines — the comparator protocols of §4
//!
//! The paper positions its event-channel mapping against two families
//! of CAN scheduling approaches:
//!
//! * **fixed-priority schemes** (CanOpen/SDS/DeviceNet-style static
//!   identifiers; deadline-monotonic assignment per Tindell & Burns)
//!   and the more flexible **dual-priority** scheme of Davis — all
//!   implemented as [`policy`] objects for the message-scheduling
//!   [`testbed`], which runs *identical workloads* under each policy
//!   over the same simulated bus;
//! * **time-triggered schemes** (TTCAN, TTP-like): [`ttcan`] models a
//!   TTCAN-style system matrix of exclusive and arbitrating windows —
//!   exclusive windows are wasted when unused, redundant transmissions
//!   always fill their reserved windows, and background traffic is
//!   confined to arbitrating windows. These are exactly the behaviours
//!   the paper's slot-reclaiming/early-stop design improves on (§3.2,
//!   §4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod policy;
pub mod testbed;
pub mod ttcan;
pub mod ttpa;

pub use policy::{DualPriorityPolicy, EdfPolicy, FixedPriorityPolicy, NoPromotion, TxPolicy};
pub use testbed::{run_testbed, StreamStats, TestbedConfig, TestbedStats};
pub use ttcan::{run_ttcan, TtcanConfig, TtcanStats, Window, WindowKind};
pub use ttpa::{round_wire_time, run_ttpa, TtpaConfig, TtpaStats};
