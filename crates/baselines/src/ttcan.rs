//! A TTCAN-style time-triggered baseline (§4).
//!
//! Time-triggered CAN organizes the bus into a *system matrix* of
//! windows: **exclusive** windows owned by one message (transmitted
//! with automatic retransmission disabled) and **arbitrating** windows
//! where event-driven traffic contends normally. Two properties of this
//! design are what the paper's scheme improves on:
//!
//! * an exclusive window that its owner does not use is **wasted** —
//!   no other traffic may claim it;
//! * redundancy is **pre-planned**: a message with omission tolerance
//!   `k` owns `k + 1` transmissions that are always performed, filling
//!   their reserved time whether or not faults occur.
//!
//! The model enforces the matrix by gating background submissions: a
//! background frame is only handed to the controller when the current
//! arbitrating window has room for its full transmission (this is the
//! role of TTCAN's reference-message-aligned gap).

use rtec_can::bits::exact_frame_bits;
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, FaultModel, Frame, MapScheduler, NodeId,
    Notification, TxRequest, PRIO_HRT,
};
use rtec_sim::{Ctx, Duration, Engine, Histogram, Model, Rng, RngStreams, Time};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Kind of a system-matrix window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Owned by one periodic message.
    Exclusive {
        /// The owning node.
        owner: NodeId,
        /// Etag of the owned message.
        etag: u16,
    },
    /// Open to event-driven traffic.
    Arbitrating,
}

/// One window of the basic cycle.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Window {
    /// Window kind.
    pub kind: WindowKind,
    /// Window length.
    pub len: Duration,
}

/// Configuration of a TTCAN run.
#[derive(Clone, Debug)]
pub struct TtcanConfig {
    /// Bus parameters.
    pub bus: BusConfig,
    /// The basic cycle (repeats indefinitely).
    pub cycle: Vec<Window>,
    /// Extra pre-planned copies per exclusive message (always sent —
    /// no early stop).
    pub redundancy_k: u32,
    /// Probability that the owner actually has data for an exclusive
    /// window (sweeping this measures the wasted-reservation effect).
    pub exclusive_use_prob: f64,
    /// Poisson background offered to arbitrating windows (mean gap), or
    /// `None` for no background.
    pub background_mean_gap: Option<Duration>,
    /// Payload size of background frames.
    pub background_dlc: u8,
    /// Node that generates background traffic.
    pub background_node: NodeId,
    /// Run seed.
    pub seed: u64,
    /// Fault model on the bus.
    pub fault_model: FaultModel,
}

impl TtcanConfig {
    /// Total length of the basic cycle.
    pub fn cycle_len(&self) -> Duration {
        self.cycle
            .iter()
            .map(|w| w.len)
            .fold(Duration::ZERO, |a, b| a + b)
    }
}

/// Measured outcome of a TTCAN run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TtcanStats {
    /// Completed basic cycles.
    pub cycles: u64,
    /// Exclusive-window transmissions performed (including pre-planned
    /// redundant copies).
    pub exclusive_tx: u64,
    /// Exclusive windows that went unused (reserved time wasted).
    pub exclusive_unused: u64,
    /// Wall-clock reserved time wasted by unused exclusive windows.
    pub wasted_exclusive: Duration,
    /// Background messages released.
    pub background_released: u64,
    /// Background messages completed.
    pub background_completed: u64,
    /// Background release → completion latency (ns).
    pub background_latency_ns: Histogram,
}

/// TTCAN world events.
#[derive(Clone, Copy, Debug)]
pub enum TtEvent {
    /// Bus activity.
    Can(CanEvent),
    /// A window of the current cycle begins.
    WindowStart(usize),
    /// A new basic cycle begins.
    CycleStart,
    /// Background message release.
    BgRelease,
}

/// Priority used for background frames (arbitrating windows).
const BG_PRIO: u8 = 200;
/// Etag used for background frames.
const BG_ETAG: u16 = 99;

/// The TTCAN baseline world.
pub struct TtcanWorld {
    bus: CanBus,
    config: TtcanConfig,
    rng: Rng,
    bg_gen_rng: Rng,
    bg_queue: VecDeque<Time>,
    bg_inflight: bool,
    bg_frame_time: Duration,
    /// End of the current arbitrating window (background gate).
    arb_until: Option<Time>,
    /// Measured outcome.
    pub stats: TtcanStats,
}

fn wrap(ev: CanEvent) -> TtEvent {
    TtEvent::Can(ev)
}

impl TtcanWorld {
    /// Build the engine with the first cycle and background release
    /// scheduled.
    pub fn engine(config: TtcanConfig) -> Engine<TtcanWorld> {
        let num_nodes = config
            .cycle
            .iter()
            .filter_map(|w| match w.kind {
                WindowKind::Exclusive { owner, .. } => Some(owner.index() + 1),
                WindowKind::Arbitrating => None,
            })
            .chain([config.background_node.index() + 1])
            .max()
            .unwrap_or(1);
        let streams = RngStreams::new(config.seed);
        let injector = FaultInjector::new(config.fault_model.clone(), streams.stream("faults"));
        let bus = CanBus::new(config.bus, num_nodes, injector);
        let bg_frame = Frame::new(
            CanId::new(BG_PRIO, config.background_node.0, BG_ETAG),
            &vec![0u8; usize::from(config.background_dlc)],
        );
        let bg_frame_time = config.bus.timing.duration_of(exact_frame_bits(&bg_frame));
        let has_bg = config.background_mean_gap.is_some();
        let world = TtcanWorld {
            bus,
            rng: streams.stream("exclusive-use"),
            bg_gen_rng: streams.stream("background"),
            config,
            bg_queue: VecDeque::new(),
            bg_inflight: false,
            bg_frame_time,
            arb_until: None,
            stats: TtcanStats::default(),
        };
        let mut engine = Engine::new(world);
        engine.schedule_at(Time::ZERO, TtEvent::CycleStart);
        if has_bg {
            engine.schedule_at(Time::ZERO, TtEvent::BgRelease);
        }
        engine
    }

    fn on_cycle_start(&mut self, ctx: &mut Ctx<TtEvent>) {
        let now = ctx.now();
        let mut offset = Duration::ZERO;
        for (idx, w) in self.config.cycle.iter().enumerate() {
            ctx.at(now + offset, TtEvent::WindowStart(idx));
            offset += w.len;
        }
        ctx.at(now + offset, TtEvent::CycleStart);
        self.stats.cycles += 1;
    }

    fn on_window_start(&mut self, ctx: &mut Ctx<TtEvent>, idx: usize) {
        let now = ctx.now();
        let w = self.config.cycle[idx];
        match w.kind {
            WindowKind::Exclusive { owner, etag } => {
                self.arb_until = None;
                if self.rng.gen_bool(self.config.exclusive_use_prob) {
                    // Pre-planned redundancy: all k+1 copies are always
                    // transmitted, no early stop.
                    let copies = self.config.redundancy_k + 1;
                    for c in 0..copies {
                        let frame = Frame::new(CanId::new(PRIO_HRT, owner.0, etag), &[c as u8; 8]);
                        let mut sched = MapScheduler::new(ctx, wrap);
                        self.bus.submit(
                            &mut sched,
                            owner,
                            TxRequest {
                                frame,
                                single_shot: true, // TTCAN: no automatic retransmission
                                tag: u64::from(etag),
                            },
                        );
                    }
                } else {
                    // Window wasted: nobody may use the reserved time.
                    self.stats.exclusive_unused += 1;
                    self.stats.wasted_exclusive += w.len;
                }
            }
            WindowKind::Arbitrating => {
                self.arb_until = Some(now + w.len);
                self.pump_background(ctx);
            }
        }
    }

    /// Submit the next background frame if the arbitrating window can
    /// still hold a complete transmission.
    fn pump_background(&mut self, ctx: &mut Ctx<TtEvent>) {
        if self.bg_inflight || self.bg_queue.is_empty() {
            return;
        }
        let now = ctx.now();
        let Some(until) = self.arb_until else { return };
        if now + self.bg_frame_time > until {
            return; // would overrun into the next exclusive window
        }
        self.bg_queue.front().copied().expect("non-empty");
        let frame = Frame::new(
            CanId::new(BG_PRIO, self.config.background_node.0, BG_ETAG),
            &vec![0u8; usize::from(self.config.background_dlc)],
        );
        let mut sched = MapScheduler::new(ctx, wrap);
        self.bus.submit(
            &mut sched,
            self.config.background_node,
            TxRequest {
                frame,
                single_shot: false,
                tag: u64::from(BG_ETAG),
            },
        );
        self.bg_inflight = true;
    }

    fn on_bg_release(&mut self, ctx: &mut Ctx<TtEvent>) {
        let Some(mean) = self.config.background_mean_gap else {
            return;
        };
        let now = ctx.now();
        self.bg_queue.push_back(now);
        self.stats.background_released += 1;
        let gap = Duration::from_ns(self.bg_gen_rng.gen_exp(mean.as_ns() as f64).max(1.0) as u64);
        ctx.at(now + gap, TtEvent::BgRelease);
        self.pump_background(ctx);
    }

    fn on_note(&mut self, ctx: &mut Ctx<TtEvent>, note: Notification) {
        match note {
            Notification::TxCompleted { tag, .. } => {
                if tag == u64::from(BG_ETAG) {
                    self.bg_inflight = false;
                    if let Some(released) = self.bg_queue.pop_front() {
                        self.stats.background_completed += 1;
                        self.stats
                            .background_latency_ns
                            .record(ctx.now().saturating_since(released).as_ns());
                    }
                    self.pump_background(ctx);
                } else {
                    self.stats.exclusive_tx += 1;
                }
            }
            Notification::TxFailed { tag, .. } => {
                // Single-shot exclusive copy destroyed by a fault: TTCAN
                // does not retry; the pre-planned redundancy is the only
                // protection.
                let _ = tag;
            }
            _ => {}
        }
    }

    /// Bus statistics (wire utilization etc.).
    pub fn bus_stats(&self) -> &rtec_can::BusStats {
        &self.bus.stats
    }
}

impl Model for TtcanWorld {
    type Event = TtEvent;

    fn handle(&mut self, ctx: &mut Ctx<TtEvent>, ev: TtEvent) {
        match ev {
            TtEvent::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, wrap);
                    self.bus.handle(&mut sched, can_ev)
                };
                for note in notes {
                    self.on_note(ctx, note);
                }
            }
            TtEvent::CycleStart => self.on_cycle_start(ctx),
            TtEvent::WindowStart(idx) => self.on_window_start(ctx, idx),
            TtEvent::BgRelease => self.on_bg_release(ctx),
        }
    }
}

/// Run a TTCAN configuration for `horizon`, returning the measured
/// statistics and the bus-level counters.
pub fn run_ttcan(config: TtcanConfig, horizon: Duration) -> (TtcanStats, rtec_can::BusStats) {
    let mut engine = TtcanWorld::engine(config);
    engine.run_until(Time::ZERO + horizon);
    (engine.model.stats.clone(), *engine.model.bus_stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exclusive(owner: u8, etag: u16, len_us: u64) -> Window {
        Window {
            kind: WindowKind::Exclusive {
                owner: NodeId(owner),
                etag,
            },
            len: Duration::from_us(len_us),
        }
    }

    fn arbitrating(len_us: u64) -> Window {
        Window {
            kind: WindowKind::Arbitrating,
            len: Duration::from_us(len_us),
        }
    }

    fn base_config() -> TtcanConfig {
        TtcanConfig {
            bus: BusConfig::default(),
            // 1 ms cycle: two exclusive windows sized for k=1 (2 copies
            // of a 160 µs frame) and one arbitrating window.
            cycle: vec![
                exclusive(0, 10, 340),
                exclusive(1, 11, 340),
                arbitrating(320),
            ],
            redundancy_k: 1,
            exclusive_use_prob: 1.0,
            background_mean_gap: None,
            background_dlc: 8,
            background_node: NodeId(2),
            seed: 3,
            fault_model: FaultModel::None,
        }
    }

    #[test]
    fn exclusive_windows_always_send_all_copies() {
        let (stats, bus) = run_ttcan(base_config(), Duration::from_ms(100));
        // 100 cycles × 2 windows × 2 copies.
        assert!(stats.cycles >= 100);
        assert!(
            stats.exclusive_tx >= 100 * 2 * 2,
            "pre-planned redundancy always transmits, got {}",
            stats.exclusive_tx
        );
        assert_eq!(stats.exclusive_unused, 0);
        assert_eq!(bus.frames_corrupted, 0);
    }

    #[test]
    fn unused_exclusive_windows_waste_reserved_time() {
        let mut cfg = base_config();
        cfg.exclusive_use_prob = 0.0;
        cfg.background_mean_gap = Some(Duration::from_us(200));
        let (stats, bus) = run_ttcan(cfg, Duration::from_ms(100));
        assert_eq!(stats.exclusive_tx, 0);
        assert!(stats.exclusive_unused >= 200);
        assert!(stats.wasted_exclusive >= Duration::from_ms(60));
        // Background only ran inside arbitrating windows: utilization is
        // capped well below the offered load.
        let util = bus.utilization(Duration::from_ms(100));
        assert!(
            util < 0.35,
            "background confined to arbitrating windows: {util}"
        );
        assert!(stats.background_completed > 0);
        assert!(
            stats.background_completed < stats.background_released,
            "offered load exceeds the arbitrating capacity"
        );
    }

    #[test]
    fn background_never_overruns_into_exclusive_windows() {
        // With background queued at all times, every exclusive window
        // must still start with an idle bus: exclusive frames are never
        // blocked (their completion count matches full redundancy).
        let mut cfg = base_config();
        cfg.background_mean_gap = Some(Duration::from_us(100)); // heavy
        let (stats, _) = run_ttcan(cfg, Duration::from_ms(50));
        assert!(
            stats.exclusive_tx >= 50 * 2 * 2 - 4,
            "{}",
            stats.exclusive_tx
        );
    }

    #[test]
    fn corruption_in_single_shot_mode_loses_copies() {
        let mut cfg = base_config();
        cfg.fault_model = FaultModel::Iid {
            corruption_p: 0.3,
            omission_p: 0.0,
            omission_scope: rtec_can::OmissionScope::AllReceivers,
        };
        let (stats, bus) = run_ttcan(cfg, Duration::from_ms(100));
        assert!(bus.frames_corrupted > 0);
        // Lost copies are NOT retransmitted (single-shot).
        assert!(
            stats.exclusive_tx < 100 * 2 * 2,
            "corrupted copies are simply lost: {}",
            stats.exclusive_tx
        );
    }

    #[test]
    fn cycle_length_accessor() {
        assert_eq!(base_config().cycle_len(), Duration::from_ms(1));
    }
}
