//! Priority-assignment policies for soft real-time CAN traffic.
//!
//! A policy decides, for a queued message of a stream, which CAN
//! priority it contends with *now*, and when (if ever) that priority
//! changes. Three policies are provided:
//!
//! * [`EdfPolicy`] — the paper's scheme (§3.4): priority tracks the
//!   remaining time to the transmission deadline, quantized into
//!   priority slots, dynamically promoted as laxity shrinks.
//! * [`FixedPriorityPolicy`] — deadline-monotonic static priorities
//!   (Tindell & Burns [22]; the CanOpen/DeviceNet family): a stream's
//!   priority never changes.
//! * [`DualPriorityPolicy`] — Davis's dual-priority scheme [4]: each
//!   message starts in a low band and is promoted once, to its
//!   high-band priority, at `deadline − R` where `R` is its worst-case
//!   response time in the high band.

use rtec_analysis::edf::{next_promotion_time, priority_for_deadline, PrioritySlotConfig};
use rtec_analysis::rta::{rta_feasible, MessageSpec};
use rtec_can::bits::BitTiming;
use rtec_can::{PRIO_SRT_MAX, PRIO_SRT_MIN};
use rtec_sim::{Duration, Time};
use rtec_workloads::StreamSpec;
use std::collections::HashMap;

/// A priority-assignment policy.
pub trait TxPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Priority a message of `stream` with absolute deadline `deadline`
    /// contends with at time `now`.
    fn priority(&self, stream: &StreamSpec, deadline: Time, now: Time) -> u8;

    /// The next instant at which [`TxPolicy::priority`] changes for
    /// this message, or `None` if it is final.
    fn next_change(&self, stream: &StreamSpec, deadline: Time, now: Time) -> Option<Time>;
}

/// The paper's EDF-by-priority-slots policy.
#[derive(Clone, Debug)]
pub struct EdfPolicy {
    /// Priority-slot configuration (Δt_p and the SRT band).
    pub cfg: PrioritySlotConfig,
}

impl Default for EdfPolicy {
    fn default() -> Self {
        EdfPolicy {
            cfg: PrioritySlotConfig::paper_default(),
        }
    }
}

impl TxPolicy for EdfPolicy {
    fn name(&self) -> &'static str {
        "edf"
    }
    fn priority(&self, _stream: &StreamSpec, deadline: Time, now: Time) -> u8 {
        priority_for_deadline(deadline, now, &self.cfg)
    }
    fn next_change(&self, _stream: &StreamSpec, deadline: Time, now: Time) -> Option<Time> {
        next_promotion_time(deadline, now, &self.cfg)
    }
}

fn dm_ranks(set: &[StreamSpec]) -> Vec<(u16, usize)> {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (set[i].rel_deadline, set[i].id));
    order
        .iter()
        .enumerate()
        .map(|(rank, &i)| (set[i].id, rank))
        .collect()
}

/// Deadline-monotonic static priorities over the SRT band.
#[derive(Clone, Debug)]
pub struct FixedPriorityPolicy {
    by_stream: HashMap<u16, u8>,
}

impl FixedPriorityPolicy {
    /// Assign priorities by deadline-monotonic rank, spread over the
    /// SRT band (1..=250). Panics if the set exceeds the band.
    pub fn deadline_monotonic(set: &[StreamSpec]) -> Self {
        assert!(
            set.len() <= usize::from(PRIO_SRT_MAX - PRIO_SRT_MIN + 1),
            "more streams than SRT priority levels"
        );
        let by_stream = dm_ranks(set)
            .into_iter()
            .map(|(id, rank)| (id, PRIO_SRT_MIN + rank as u8))
            .collect();
        FixedPriorityPolicy { by_stream }
    }

    /// The static priority of a stream.
    pub fn priority_of(&self, stream_id: u16) -> Option<u8> {
        self.by_stream.get(&stream_id).copied()
    }
}

impl TxPolicy for FixedPriorityPolicy {
    fn name(&self) -> &'static str {
        "fixed-dm"
    }
    fn priority(&self, stream: &StreamSpec, _deadline: Time, _now: Time) -> u8 {
        *self
            .by_stream
            .get(&stream.id)
            .expect("stream was in the assignment set")
    }
    fn next_change(&self, _stream: &StreamSpec, _deadline: Time, _now: Time) -> Option<Time> {
        None
    }
}

/// Davis's dual-priority scheme: low band first, one promotion to the
/// high band at `deadline − R_high`.
#[derive(Clone, Debug)]
pub struct DualPriorityPolicy {
    high: HashMap<u16, u8>,
    low: HashMap<u16, u8>,
    /// Per-stream promotion lead time (`R` in the high band).
    lead: HashMap<u16, Duration>,
}

impl DualPriorityPolicy {
    /// Build from a stream set: DM order in each band; promotion lead =
    /// worst-case response time under the high-band assignment
    /// (clamped to the deadline).
    pub fn new(set: &[StreamSpec], timing: BitTiming) -> Self {
        let half = (PRIO_SRT_MAX - PRIO_SRT_MIN).div_ceil(2); // 125 levels/band
        assert!(
            set.len() <= usize::from(half),
            "more streams than one priority band"
        );
        let ranks = dm_ranks(set);
        let mut high = HashMap::new();
        let mut low = HashMap::new();
        for &(id, rank) in &ranks {
            high.insert(id, PRIO_SRT_MIN + rank as u8);
            low.insert(id, PRIO_SRT_MIN + half + rank as u8);
        }
        // Worst-case response in the high band via Tindell–Burns.
        let specs: Vec<MessageSpec> = set
            .iter()
            .map(|s| MessageSpec {
                priority: u32::from(high[&s.id]),
                dlc: s.dlc,
                period: s.pattern.mean_gap(),
                deadline: s.rel_deadline,
                jitter: Duration::ZERO,
            })
            .collect();
        let results = rta_feasible(&specs, timing);
        let lead = set
            .iter()
            .zip(&results)
            .map(|(s, r)| {
                let resp = r.response.unwrap_or(s.rel_deadline);
                (s.id, resp.min(s.rel_deadline))
            })
            .collect();
        DualPriorityPolicy { high, low, lead }
    }

    fn promotion_instant(&self, stream: &StreamSpec, deadline: Time) -> Time {
        deadline.saturating_sub(self.lead[&stream.id])
    }
}

impl TxPolicy for DualPriorityPolicy {
    fn name(&self) -> &'static str {
        "dual-priority"
    }
    fn priority(&self, stream: &StreamSpec, deadline: Time, now: Time) -> u8 {
        if now >= self.promotion_instant(stream, deadline) {
            self.high[&stream.id]
        } else {
            self.low[&stream.id]
        }
    }
    fn next_change(&self, stream: &StreamSpec, deadline: Time, now: Time) -> Option<Time> {
        let promo = self.promotion_instant(stream, deadline);
        (now < promo).then_some(promo)
    }
}

/// Ablation wrapper: keep a policy's *initial* priority but disable all
/// later changes. Wrapping [`EdfPolicy`] yields "EDF at enqueue time"
/// — the priority reflects the deadline's distance when the message is
/// first considered and is never promoted, which is exactly the §3.4
/// design choice the dynamic promotion exists to fix.
#[derive(Clone, Debug)]
pub struct NoPromotion<P: TxPolicy>(pub P);

impl<P: TxPolicy> TxPolicy for NoPromotion<P> {
    fn name(&self) -> &'static str {
        "no-promotion"
    }
    fn priority(&self, stream: &StreamSpec, deadline: Time, now: Time) -> u8 {
        // Freeze at the released-instant priority: evaluate the inner
        // policy as if no time had passed since an anchor derived from
        // the deadline and the stream's own deadline offset.
        let release = deadline.saturating_sub(stream.rel_deadline);
        self.0.priority(stream, deadline, release.min(now))
    }
    fn next_change(&self, _stream: &StreamSpec, _deadline: Time, _now: Time) -> Option<Time> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_can::NodeId;
    use rtec_workloads::ArrivalPattern;

    fn stream(id: u16, deadline_ms: u64) -> StreamSpec {
        StreamSpec {
            id,
            node: NodeId((id % 4) as u8),
            dlc: 8,
            pattern: ArrivalPattern::periodic(Duration::from_ms(deadline_ms)),
            rel_deadline: Duration::from_ms(deadline_ms),
            rel_expiration: None,
        }
    }

    #[test]
    fn edf_priority_tracks_laxity() {
        let p = EdfPolicy::default();
        let s = stream(0, 10);
        let d = Time::from_ms(50);
        let early = p.priority(&s, d, Time::from_ms(10));
        let late = p.priority(&s, d, Time::from_ms(49));
        assert!(late < early);
        assert_eq!(p.priority(&s, d, d), PRIO_SRT_MIN);
        assert!(p.next_change(&s, d, Time::from_ms(10)).is_some());
        assert!(p.next_change(&s, d, d).is_none());
    }

    #[test]
    fn fixed_dm_orders_by_deadline_and_never_changes() {
        let set = [stream(0, 50), stream(1, 5), stream(2, 20)];
        let p = FixedPriorityPolicy::deadline_monotonic(&set);
        let pr = |i: usize| p.priority(&set[i], Time::MAX, Time::ZERO);
        assert!(pr(1) < pr(2), "5ms beats 20ms");
        assert!(pr(2) < pr(0), "20ms beats 50ms");
        assert_eq!(pr(1), PRIO_SRT_MIN);
        assert!(p.next_change(&set[0], Time::MAX, Time::ZERO).is_none());
    }

    #[test]
    fn fixed_dm_is_deadline_blind_at_runtime() {
        // The defining weakness: two messages of the same stream have
        // the same priority regardless of their actual deadlines.
        let set = [stream(0, 10)];
        let p = FixedPriorityPolicy::deadline_monotonic(&set);
        let a = p.priority(&set[0], Time::from_ms(1), Time::ZERO);
        let b = p.priority(&set[0], Time::from_ms(1000), Time::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn dual_priority_promotes_once() {
        let set = [stream(0, 10), stream(1, 20)];
        let p = DualPriorityPolicy::new(&set, BitTiming::MBIT_1);
        let d = Time::from_ms(100);
        let early = p.priority(&set[0], d, Time::from_ms(10));
        let promo = p.next_change(&set[0], d, Time::from_ms(10)).unwrap();
        let late = p.priority(&set[0], d, promo);
        assert!(late < early, "promotion raises urgency: {early} -> {late}");
        // Low band is numerically above the high band.
        assert!(early > 125);
        assert!(late <= 125);
        // After promotion there are no further changes.
        assert!(p.next_change(&set[0], d, promo).is_none());
    }

    #[test]
    fn dual_priority_lead_respects_deadline() {
        let set = [stream(0, 10)];
        let p = DualPriorityPolicy::new(&set, BitTiming::MBIT_1);
        let d = Time::from_ms(10);
        // Promotion instant is inside [release, deadline].
        let promo = p.next_change(&set[0], d, Time::ZERO).unwrap();
        assert!(promo <= d);
    }

    #[test]
    fn no_promotion_freezes_priority() {
        let p = NoPromotion(EdfPolicy::default());
        let s = stream(0, 10);
        let d = Time::from_ms(50);
        let at_release = p.priority(&s, d, Time::from_ms(40));
        let near_deadline = p.priority(&s, d, Time::from_ms(49));
        assert_eq!(at_release, near_deadline, "priority never changes");
        assert!(p.next_change(&s, d, Time::from_ms(40)).is_none());
        // The frozen value equals the dynamic policy's value at release.
        let dynamic = EdfPolicy::default();
        assert_eq!(at_release, dynamic.priority(&s, d, Time::from_ms(40)));
    }

    #[test]
    #[should_panic(expected = "priority levels")]
    fn fixed_dm_rejects_oversized_sets() {
        let set: Vec<StreamSpec> = (0..251).map(|i| stream(i, 10)).collect();
        let _ = FixedPriorityPolicy::deadline_monotonic(&set);
    }
}
