//! The message-scheduling testbed: identical workloads, interchangeable
//! priority policies, one shared bus.
//!
//! Each stream releases messages according to its arrival pattern; each
//! node keeps a queue and always contends with its most urgent message
//! under the active [`TxPolicy`] (re-evaluated on release and at every
//! policy-announced priority change, with the controller's pending
//! frame withdrawn and resubmitted when the head changes — the same
//! mechanism the event-channel middleware uses). Deadline misses are
//! judged at wire completion: a message whose transmission completes
//! after its absolute deadline missed it.

use crate::policy::TxPolicy;
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, Frame, MapScheduler, NodeId, Notification,
    TxHandle, TxRequest,
};
use rtec_sim::{Ctx, Duration, Engine, Histogram, Model, RngStreams, Time};
use rtec_workloads::{ArrivalGen, StreamSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Offset so testbed etags avoid the reserved protocol range.
const ETAG_BASE: u16 = 16;

/// Testbed configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Bus parameters.
    pub bus: BusConfig,
    /// The workload.
    pub streams: Vec<StreamSpec>,
    /// Run seed (drives all arrival processes).
    pub seed: u64,
    /// Remove messages from the queue when their expiration passes
    /// (the event-channel behaviour; `false` keeps them best-effort
    /// forever, the classic baseline behaviour).
    pub drop_on_expiry: bool,
}

/// Per-stream outcome counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Messages released.
    pub released: u64,
    /// Messages whose transmission completed.
    pub completed: u64,
    /// Completed messages that finished after their deadline.
    pub missed: u64,
    /// Messages dropped at expiration without transmission.
    pub dropped: u64,
}

/// Aggregate testbed outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TestbedStats {
    /// Messages released.
    pub released: u64,
    /// Messages whose transmission completed.
    pub completed: u64,
    /// Completed messages that finished past their deadline.
    pub missed: u64,
    /// Messages dropped at expiration.
    pub dropped: u64,
    /// Messages still queued when the run ended.
    pub backlog: u64,
    /// Queued messages whose deadline had already passed when the run
    /// ended (counted into [`TestbedStats::miss_ratio`] — a policy must
    /// not look good by starving messages forever).
    pub stale_backlog: u64,
    /// Completions that overtook an earlier-deadline message queued
    /// somewhere on the bus — the bounded priority inversions caused by
    /// quantized priorities and non-preemption.
    pub inversions: u64,
    /// Release → completion response times (ns).
    pub response_ns: Histogram,
    /// Per-stream breakdown.
    pub per_stream: HashMap<u16, StreamStats>,
}

impl TestbedStats {
    /// The worst per-stream failure ratio: the fraction of a stream's
    /// released messages that were late, dropped, or never served. A
    /// fixed-priority scheme under overload drives this to 1.0 for its
    /// lowest-priority stream (starvation) while EDF degrades all
    /// streams evenly.
    pub fn worst_stream_failure_ratio(&self) -> f64 {
        self.per_stream
            .values()
            .filter(|s| s.released > 0)
            .map(|s| {
                let unserved = s.released - s.completed - s.dropped;
                (s.missed + s.dropped + unserved) as f64 / s.released as f64
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of messages that failed their deadline: completed late,
    /// dropped at expiration, or still starving in a queue past their
    /// deadline at the end of the run.
    pub fn miss_ratio(&self) -> f64 {
        let finished = self.completed + self.dropped + self.stale_backlog;
        if finished == 0 {
            0.0
        } else {
            (self.missed + self.dropped + self.stale_backlog) as f64 / finished as f64
        }
    }
}

/// Testbed events.
#[derive(Clone, Copy, Debug)]
pub enum TbEvent {
    /// Bus activity.
    Can(CanEvent),
    /// A stream releases its next message.
    Release(usize),
    /// Policy-announced priority change for a queued message.
    Promote {
        /// Owning node.
        node: NodeId,
        /// Message sequence number.
        seq: u64,
    },
    /// Expiration check.
    Expire {
        /// Owning node.
        node: NodeId,
        /// Message sequence number.
        seq: u64,
    },
}

#[derive(Clone, Debug)]
struct TbMsg {
    seq: u64,
    stream_idx: usize,
    released: Time,
    deadline: Time,
}

/// The testbed world, generic over the policy.
pub struct SchedWorld<P: TxPolicy> {
    bus: CanBus,
    policy: P,
    streams: Vec<StreamSpec>,
    gens: Vec<ArrivalGen>,
    queues: Vec<Vec<TbMsg>>,
    inflight: Vec<Option<(u64, TxHandle, u8)>>,
    drop_on_expiry: bool,
    next_seq: u64,
    /// Outcome counters.
    pub stats: TestbedStats,
}

fn wrap(ev: CanEvent) -> TbEvent {
    TbEvent::Can(ev)
}

impl<P: TxPolicy> SchedWorld<P> {
    /// Build the engine with initial releases scheduled.
    pub fn engine(policy: P, config: TestbedConfig) -> Engine<SchedWorld<P>> {
        let num_nodes = config
            .streams
            .iter()
            .map(|s| s.node.index() + 1)
            .max()
            .unwrap_or(1);
        let bus = CanBus::new(config.bus, num_nodes, FaultInjector::none());
        let streams_rng = RngStreams::new(config.seed);
        let gens: Vec<ArrivalGen> = config
            .streams
            .iter()
            .map(|s| {
                ArrivalGen::new(
                    s.pattern,
                    streams_rng.stream_indexed("arrivals", u64::from(s.id)),
                )
            })
            .collect();
        let n_streams = config.streams.len();
        let world = SchedWorld {
            bus,
            policy,
            streams: config.streams,
            gens,
            queues: vec![Vec::new(); num_nodes],
            inflight: vec![None; num_nodes],
            drop_on_expiry: config.drop_on_expiry,
            next_seq: 0,
            stats: TestbedStats::default(),
        };
        let mut engine = Engine::new(world);
        for i in 0..n_streams {
            // First release of each stream.
            let t = engine.model.gens[i].next_release();
            engine.schedule_at(t, TbEvent::Release(i));
        }
        engine
    }

    fn head_index(&self, node: usize, now: Time) -> Option<usize> {
        (0..self.queues[node].len()).min_by_key(|&i| {
            let m = &self.queues[node][i];
            let s = &self.streams[m.stream_idx];
            (self.policy.priority(s, m.deadline, now), m.deadline, m.seq)
        })
    }

    fn dispatch(&mut self, ctx: &mut Ctx<TbEvent>, node: NodeId) {
        let n = node.index();
        if self.inflight[n].is_some() {
            return;
        }
        let now = ctx.now();
        let Some(idx) = self.head_index(n, now) else {
            return;
        };
        let m = &self.queues[n][idx];
        let s = &self.streams[m.stream_idx];
        let prio = self.policy.priority(s, m.deadline, now);
        let etag = ETAG_BASE + s.id;
        let payload = vec![s.id as u8; usize::from(s.dlc)];
        let frame = Frame::new(CanId::new(prio, node.0, etag), &payload);
        let (seq, deadline, stream_idx) = (m.seq, m.deadline, m.stream_idx);
        let mut sched = MapScheduler::new(ctx, wrap);
        let handle = self.bus.submit(
            &mut sched,
            node,
            TxRequest {
                frame,
                single_shot: false,
                tag: seq,
            },
        );
        self.inflight[n] = Some((seq, handle, prio));
        if let Some(t) = self
            .policy
            .next_change(&self.streams[stream_idx], deadline, now)
        {
            ctx.at(t.max(now), TbEvent::Promote { node, seq });
        }
    }

    fn reconsider(&mut self, ctx: &mut Ctx<TbEvent>, node: NodeId) {
        let n = node.index();
        if let Some((seq, handle, _)) = self.inflight[n] {
            if let Some(idx) = self.head_index(n, ctx.now()) {
                if self.queues[n][idx].seq != seq && self.bus.abort(node, handle) {
                    self.inflight[n] = None;
                }
            }
        }
        self.dispatch(ctx, node);
    }

    fn on_release(&mut self, ctx: &mut Ctx<TbEvent>, stream_idx: usize) {
        let now = ctx.now();
        let s = self.streams[stream_idx];
        // Schedule the stream's next release.
        let next = self.gens[stream_idx].next_release();
        ctx.at(
            next.max(now + Duration::from_ns(1)),
            TbEvent::Release(stream_idx),
        );
        // Enqueue this message.
        let seq = self.next_seq;
        self.next_seq += 1;
        let deadline = now + s.rel_deadline;
        let expiration = s.rel_expiration.map(|e| now + e);
        self.queues[s.node.index()].push(TbMsg {
            seq,
            stream_idx,
            released: now,
            deadline,
        });
        self.stats.released += 1;
        self.stats.per_stream.entry(s.id).or_default().released += 1;
        if self.drop_on_expiry {
            if let Some(exp) = expiration {
                ctx.at(exp, TbEvent::Expire { node: s.node, seq });
            }
        }
        self.reconsider(ctx, s.node);
    }

    fn on_promote(&mut self, ctx: &mut Ctx<TbEvent>, node: NodeId, seq: u64) {
        let n = node.index();
        let Some((cur_seq, handle, cur_prio)) = self.inflight[n] else {
            return;
        };
        if cur_seq != seq {
            return;
        }
        let Some(idx) = self.queues[n].iter().position(|m| m.seq == seq) else {
            return;
        };
        let now = ctx.now();
        let m = &self.queues[n][idx];
        let s = &self.streams[m.stream_idx];
        let new_prio = self.policy.priority(s, m.deadline, now);
        let (etag, deadline, stream_idx) = (ETAG_BASE + s.id, m.deadline, m.stream_idx);
        if new_prio != cur_prio
            && self
                .bus
                .update_id(node, handle, CanId::new(new_prio, node.0, etag))
        {
            self.inflight[n] = Some((seq, handle, new_prio));
        }
        if let Some(t) = self
            .policy
            .next_change(&self.streams[stream_idx], deadline, now)
        {
            ctx.at(
                t.max(now + Duration::from_ns(1)),
                TbEvent::Promote { node, seq },
            );
        }
    }

    fn on_expire(&mut self, ctx: &mut Ctx<TbEvent>, node: NodeId, seq: u64) {
        let n = node.index();
        let Some(idx) = self.queues[n].iter().position(|m| m.seq == seq) else {
            return;
        };
        if let Some((cur_seq, handle, _)) = self.inflight[n] {
            if cur_seq == seq {
                if !self.bus.abort(node, handle) {
                    return; // on the wire: let it complete
                }
                self.inflight[n] = None;
            }
        }
        let m = self.queues[n].remove(idx);
        let sid = self.streams[m.stream_idx].id;
        self.stats.dropped += 1;
        self.stats.per_stream.entry(sid).or_default().dropped += 1;
        self.dispatch(ctx, node);
    }

    fn on_note(&mut self, ctx: &mut Ctx<TbEvent>, note: Notification) {
        if let Notification::TxCompleted { node, tag, .. } = note {
            let n = node.index();
            let now = ctx.now();
            if let Some(idx) = self.queues[n].iter().position(|m| m.seq == tag) {
                let m = self.queues[n].remove(idx);
                // Priority inversion: some other queued message already
                // had an earlier absolute deadline than the one that
                // just completed.
                let overtaken = self
                    .queues
                    .iter()
                    .flatten()
                    .any(|o| o.deadline < m.deadline && o.released < m.released);
                if overtaken {
                    self.stats.inversions += 1;
                }
                let sid = self.streams[m.stream_idx].id;
                self.stats.completed += 1;
                self.stats
                    .response_ns
                    .record(now.saturating_since(m.released).as_ns());
                let ps = self.stats.per_stream.entry(sid).or_default();
                ps.completed += 1;
                if now > m.deadline {
                    self.stats.missed += 1;
                    ps.missed += 1;
                }
            }
            if self.inflight[n].is_some_and(|(s, _, _)| s == tag) {
                self.inflight[n] = None;
            }
            self.dispatch(ctx, node);
        }
    }

    fn finalize(&mut self, horizon_end: Time) {
        self.stats.backlog = self.queues.iter().map(|q| q.len() as u64).sum();
        self.stats.stale_backlog = self
            .queues
            .iter()
            .flatten()
            .filter(|m| m.deadline < horizon_end)
            .count() as u64;
    }
}

impl<P: TxPolicy> Model for SchedWorld<P> {
    type Event = TbEvent;

    fn handle(&mut self, ctx: &mut Ctx<TbEvent>, ev: TbEvent) {
        match ev {
            TbEvent::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, wrap);
                    self.bus.handle(&mut sched, can_ev)
                };
                for note in notes {
                    self.on_note(ctx, note);
                }
            }
            TbEvent::Release(i) => self.on_release(ctx, i),
            TbEvent::Promote { node, seq } => self.on_promote(ctx, node, seq),
            TbEvent::Expire { node, seq } => self.on_expire(ctx, node, seq),
        }
    }
}

/// Run `policy` over `config`'s workload for `horizon` of simulated
/// time and return the outcome.
pub fn run_testbed<P: TxPolicy>(
    policy: P,
    config: TestbedConfig,
    horizon: Duration,
) -> TestbedStats {
    let mut engine = SchedWorld::engine(policy, config);
    engine.run_until(Time::ZERO + horizon);
    engine.model.finalize(Time::ZERO + horizon);
    engine.model.stats.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EdfPolicy, FixedPriorityPolicy};
    use rtec_can::bits::BitTiming;
    use rtec_sim::Rng;
    use rtec_workloads::{set_utilization, uniform_srt_set, ArrivalPattern};

    fn config(streams: Vec<StreamSpec>) -> TestbedConfig {
        TestbedConfig {
            bus: BusConfig::default(),
            streams,
            seed: 11,
            drop_on_expiry: false,
        }
    }

    #[test]
    fn light_load_has_no_misses_under_any_policy() {
        let mut rng = Rng::seed_from_u64(1);
        let set = uniform_srt_set(
            8,
            4,
            Duration::from_ms(10),
            Duration::from_ms(100),
            &mut rng,
        );
        assert!(set_utilization(&set, BitTiming::MBIT_1) < 0.2);
        let horizon = Duration::from_secs(2);
        let edf = run_testbed(EdfPolicy::default(), config(set.clone()), horizon);
        let dm = run_testbed(
            FixedPriorityPolicy::deadline_monotonic(&set),
            config(set.clone()),
            horizon,
        );
        assert!(edf.released > 100);
        assert_eq!(edf.missed, 0, "EDF misses at 20% load");
        assert_eq!(dm.missed, 0, "DM misses at 20% load");
        assert_eq!(edf.miss_ratio(), 0.0);
    }

    #[test]
    fn identical_workload_across_policies() {
        let mut rng = Rng::seed_from_u64(2);
        let set = uniform_srt_set(6, 3, Duration::from_ms(5), Duration::from_ms(50), &mut rng);
        let horizon = Duration::from_secs(1);
        let a = run_testbed(EdfPolicy::default(), config(set.clone()), horizon);
        let b = run_testbed(
            FixedPriorityPolicy::deadline_monotonic(&set),
            config(set.clone()),
            horizon,
        );
        assert_eq!(a.released, b.released, "same arrivals under both policies");
    }

    #[test]
    fn overload_produces_misses_and_backlog_without_dropping() {
        let set: Vec<StreamSpec> = (0..4)
            .map(|i| StreamSpec {
                id: i,
                node: NodeId(i as u8),
                dlc: 8,
                // Four streams of 160 µs frames every 400 µs: U = 1.6.
                pattern: ArrivalPattern::periodic(Duration::from_us(400)),
                rel_deadline: Duration::from_us(400),
                rel_expiration: None,
            })
            .collect();
        let stats = run_testbed(EdfPolicy::default(), config(set), Duration::from_ms(100));
        assert!(stats.missed > 0, "overload must miss deadlines");
        assert!(stats.backlog > 0, "overload builds a backlog");
        assert!(stats.miss_ratio() > 0.5);
    }

    #[test]
    fn expiry_dropping_bounds_backlog() {
        let set: Vec<StreamSpec> = (0..4)
            .map(|i| StreamSpec {
                id: i,
                node: NodeId(i as u8),
                dlc: 8,
                pattern: ArrivalPattern::periodic(Duration::from_us(400)),
                rel_deadline: Duration::from_us(400),
                rel_expiration: Some(Duration::from_us(800)),
            })
            .collect();
        let mut cfg = config(set);
        cfg.drop_on_expiry = true;
        let stats = run_testbed(EdfPolicy::default(), cfg, Duration::from_ms(100));
        assert!(stats.dropped > 0, "expired messages are dropped");
        assert!(
            stats.backlog <= 8,
            "expiry keeps the queues bounded, backlog {}",
            stats.backlog
        );
    }

    #[test]
    fn edf_beats_fixed_priority_near_saturation() {
        // A mix where DM's static order hurts: a long-deadline stream
        // releases bursts that under DM always lose to shorter-deadline
        // streams even when its absolute deadline is imminent.
        let mut rng = Rng::seed_from_u64(5);
        let base = uniform_srt_set(12, 6, Duration::from_ms(2), Duration::from_ms(40), &mut rng);
        let set =
            rtec_workloads::scale_load(&base, 0.92 / set_utilization(&base, BitTiming::MBIT_1));
        let horizon = Duration::from_secs(2);
        let edf = run_testbed(EdfPolicy::default(), config(set.clone()), horizon);
        let dm = run_testbed(
            FixedPriorityPolicy::deadline_monotonic(&set),
            config(set.clone()),
            horizon,
        );
        assert!(
            edf.miss_ratio() <= dm.miss_ratio(),
            "EDF {} vs DM {}",
            edf.miss_ratio(),
            dm.miss_ratio()
        );
    }

    #[test]
    fn response_times_recorded() {
        let set = vec![StreamSpec {
            id: 0,
            node: NodeId(0),
            dlc: 8,
            pattern: ArrivalPattern::periodic(Duration::from_ms(1)),
            rel_deadline: Duration::from_ms(1),
            rel_expiration: None,
        }];
        let stats = run_testbed(EdfPolicy::default(), config(set), Duration::from_ms(50));
        assert!(stats.response_ns.count() >= 40);
        // An uncontended 8-byte frame takes its exact wire time.
        assert!(stats.response_ns.min().unwrap() >= 130_000);
        assert!(stats.response_ns.max().unwrap() < 200_000);
    }
}
