//! Release-time generators.
//!
//! Every pattern is a deterministic function of its own RNG stream, so
//! two policies evaluated on "the same workload" really do see the same
//! release instants.

use rtec_sim::{Duration, Rng, Time};
use serde::{Deserialize, Serialize};

/// When messages of a stream become ready.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Strictly periodic with an initial phase and optional bounded
    /// release jitter (uniform in `[0, jitter]`).
    Periodic {
        /// Period between nominal releases.
        period: Duration,
        /// Offset of the first nominal release.
        phase: Duration,
        /// Maximum release jitter added to each nominal release.
        jitter: Duration,
    },
    /// Sporadic: at least `min_gap` between releases, plus an
    /// exponentially distributed extra gap with mean `mean_extra`.
    Sporadic {
        /// Minimum inter-arrival time (the sporadic MIT).
        min_gap: Duration,
        /// Mean of the exponential extra gap.
        mean_extra: Duration,
    },
    /// Poisson process: exponential inter-arrival times.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Duration,
    },
}

impl ArrivalPattern {
    /// Plain periodic pattern without jitter.
    pub fn periodic(period: Duration) -> Self {
        ArrivalPattern::Periodic {
            period,
            phase: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// Long-run mean inter-arrival gap of the pattern.
    pub fn mean_gap(&self) -> Duration {
        match *self {
            ArrivalPattern::Periodic { period, .. } => period,
            ArrivalPattern::Sporadic {
                min_gap,
                mean_extra,
            } => min_gap + mean_extra,
            ArrivalPattern::Poisson { mean_gap } => mean_gap,
        }
    }
}

/// Stateful generator of release instants for one stream.
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    pattern: ArrivalPattern,
    rng: Rng,
    /// Next nominal release (periodic) or earliest next release
    /// (sporadic/Poisson).
    cursor: Time,
    emitted: u64,
}

impl ArrivalGen {
    /// Create a generator; `rng` should be a stream derived from the
    /// run seed and the stream identity.
    pub fn new(pattern: ArrivalPattern, rng: Rng) -> Self {
        let cursor = match pattern {
            ArrivalPattern::Periodic { phase, .. } => Time::ZERO + phase,
            _ => Time::ZERO,
        };
        ArrivalGen {
            pattern,
            rng,
            cursor,
            emitted: 0,
        }
    }

    /// Number of releases generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Produce the next release instant (non-decreasing; strictly
    /// increasing for sporadic and Poisson patterns).
    pub fn next_release(&mut self) -> Time {
        self.emitted += 1;
        match self.pattern {
            ArrivalPattern::Periodic { period, jitter, .. } => {
                let nominal = self.cursor;
                self.cursor = nominal + period;
                if jitter.is_zero() {
                    nominal
                } else {
                    nominal + Duration::from_ns(self.rng.gen_range(0, jitter.as_ns() + 1))
                }
            }
            ArrivalPattern::Sporadic {
                min_gap,
                mean_extra,
            } => {
                let release = self.cursor;
                let extra = if mean_extra.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_ns(self.rng.gen_exp(mean_extra.as_ns() as f64) as u64)
                };
                self.cursor = release + min_gap + extra;
                release
            }
            ArrivalPattern::Poisson { mean_gap } => {
                let gap =
                    Duration::from_ns(self.rng.gen_exp(mean_gap.as_ns() as f64).max(1.0) as u64);
                let release = self.cursor + gap;
                self.cursor = release;
                release
            }
        }
    }

    /// All releases up to `horizon` (exclusive).
    pub fn releases_until(&mut self, horizon: Time) -> Vec<Time> {
        let mut out = Vec::new();
        loop {
            // Peek by cloning state: generate and stop once past the
            // horizon (the overshooting release is discarded, matching
            // "releases strictly before the horizon").
            let before = self.clone();
            let t = self.next_release();
            if t >= horizon {
                *self = before;
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(123)
    }

    #[test]
    fn periodic_without_jitter_is_exact() {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Periodic {
                period: Duration::from_ms(10),
                phase: Duration::from_ms(3),
                jitter: Duration::ZERO,
            },
            rng(),
        );
        assert_eq!(gen.next_release(), Time::from_ms(3));
        assert_eq!(gen.next_release(), Time::from_ms(13));
        assert_eq!(gen.next_release(), Time::from_ms(23));
    }

    #[test]
    fn periodic_jitter_is_bounded_and_nominal_grid_kept() {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Periodic {
                period: Duration::from_ms(10),
                phase: Duration::ZERO,
                jitter: Duration::from_ms(2),
            },
            rng(),
        );
        for i in 0..100u64 {
            let t = gen.next_release();
            let nominal = Time::from_ms(10 * i);
            assert!(t >= nominal, "release before nominal");
            assert!(t <= nominal + Duration::from_ms(2), "jitter beyond bound");
        }
    }

    #[test]
    fn sporadic_respects_minimum_gap() {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Sporadic {
                min_gap: Duration::from_ms(5),
                mean_extra: Duration::from_ms(3),
            },
            rng(),
        );
        let mut last = gen.next_release();
        for _ in 0..200 {
            let t = gen.next_release();
            assert!(t.saturating_since(last) >= Duration::from_ms(5));
            last = t;
        }
    }

    #[test]
    fn poisson_mean_gap_tracks_parameter() {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Poisson {
                mean_gap: Duration::from_ms(2),
            },
            rng(),
        );
        let n = 20_000;
        let mut last = Time::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let t = gen.next_release();
            total += t.saturating_since(last);
            last = t;
        }
        let mean = total.as_ns() as f64 / n as f64;
        assert!((mean - 2e6).abs() < 1e5, "mean gap {mean}ns");
    }

    #[test]
    fn releases_until_stops_before_horizon() {
        let mut gen = ArrivalGen::new(ArrivalPattern::periodic(Duration::from_ms(10)), rng());
        let releases = gen.releases_until(Time::from_ms(35));
        assert_eq!(
            releases,
            vec![
                Time::ZERO,
                Time::from_ms(10),
                Time::from_ms(20),
                Time::from_ms(30)
            ]
        );
        // The generator resumes where it left off.
        assert_eq!(gen.next_release(), Time::from_ms(40));
    }

    #[test]
    fn same_seed_same_releases() {
        let pat = ArrivalPattern::Poisson {
            mean_gap: Duration::from_ms(1),
        };
        let mut a = ArrivalGen::new(pat, Rng::seed_from_u64(9));
        let mut b = ArrivalGen::new(pat, Rng::seed_from_u64(9));
        for _ in 0..100 {
            assert_eq!(a.next_release(), b.next_release());
        }
    }

    #[test]
    fn mean_gap_accessor() {
        assert_eq!(
            ArrivalPattern::periodic(Duration::from_ms(4)).mean_gap(),
            Duration::from_ms(4)
        );
        assert_eq!(
            ArrivalPattern::Sporadic {
                min_gap: Duration::from_ms(2),
                mean_extra: Duration::from_ms(3)
            }
            .mean_gap(),
            Duration::from_ms(5)
        );
    }
}
