//! Message-stream specifications and synthetic set constructors.

use crate::arrival::ArrivalPattern;
use rtec_can::bits::{worst_case_frame_bits, BitTiming};
use rtec_can::NodeId;
use rtec_sim::{Duration, Rng};
use serde::{Deserialize, Serialize};

/// One soft-real-time message stream for the scheduling testbed.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Stream identity (stable across policies; also used to derive the
    /// stream's RNG and its etag).
    pub id: u16,
    /// Publishing node.
    pub node: NodeId,
    /// Payload bytes per message (0..=8).
    pub dlc: u8,
    /// Release process.
    pub pattern: ArrivalPattern,
    /// Relative transmission deadline of each message.
    pub rel_deadline: Duration,
    /// Relative expiration (validity), if messages may be dropped.
    pub rel_expiration: Option<Duration>,
}

impl StreamSpec {
    /// Long-run wire utilization of this stream (worst-case stuffing).
    pub fn utilization(&self, timing: BitTiming) -> f64 {
        let frame = timing.duration_of(worst_case_frame_bits(self.dlc));
        frame.as_ns() as f64 / self.pattern.mean_gap().as_ns() as f64
    }
}

/// Total wire utilization of a set.
pub fn set_utilization(set: &[StreamSpec], timing: BitTiming) -> f64 {
    set.iter().map(|s| s.utilization(timing)).sum()
}

/// Scale a set's offered load by `factor` (periods divided by the
/// factor; deadlines kept): `factor > 1` increases load.
pub fn scale_load(set: &[StreamSpec], factor: f64) -> Vec<StreamSpec> {
    assert!(factor > 0.0);
    set.iter()
        .map(|s| {
            let scale = |d: Duration| {
                Duration::from_ns(((d.as_ns() as f64 / factor).round() as u64).max(1))
            };
            let pattern = match s.pattern {
                ArrivalPattern::Periodic {
                    period,
                    phase,
                    jitter,
                } => ArrivalPattern::Periodic {
                    period: scale(period),
                    phase,
                    jitter,
                },
                ArrivalPattern::Sporadic {
                    min_gap,
                    mean_extra,
                } => ArrivalPattern::Sporadic {
                    min_gap: scale(min_gap),
                    mean_extra: scale(mean_extra),
                },
                ArrivalPattern::Poisson { mean_gap } => ArrivalPattern::Poisson {
                    mean_gap: scale(mean_gap),
                },
            };
            StreamSpec { pattern, ..*s }
        })
        .collect()
}

/// Construct a synthetic SRT set: `n` streams spread over `nodes`
/// nodes, periods drawn log-uniformly from `[min_period, max_period]`,
/// deadline equal to the period, 8-byte payloads. Deterministic for a
/// given `rng`.
pub fn uniform_srt_set(
    n: usize,
    nodes: usize,
    min_period: Duration,
    max_period: Duration,
    rng: &mut Rng,
) -> Vec<StreamSpec> {
    assert!(nodes >= 1 && n >= 1);
    assert!(min_period <= max_period && !min_period.is_zero());
    (0..n)
        .map(|i| {
            let lo = (min_period.as_ns() as f64).ln();
            let hi = (max_period.as_ns() as f64).ln();
            let period_ns = (lo + rng.gen_f64() * (hi - lo)).exp() as u64;
            let period = Duration::from_ns(period_ns.max(1));
            StreamSpec {
                id: i as u16,
                node: NodeId((i % nodes) as u8),
                dlc: 8,
                pattern: ArrivalPattern::Periodic {
                    period,
                    phase: Duration::from_ns(rng.gen_range(0, period_ns.max(2))),
                    jitter: Duration::ZERO,
                },
                rel_deadline: period,
                rel_expiration: Some(period * 2),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_known_stream() {
        let s = StreamSpec {
            id: 0,
            node: NodeId(0),
            dlc: 8,
            pattern: ArrivalPattern::periodic(Duration::from_us(1_600)),
            rel_deadline: Duration::from_us(1_600),
            rel_expiration: None,
        };
        // 160 µs frame every 1.6 ms -> 10%.
        let u = s.utilization(BitTiming::MBIT_1);
        assert!((u - 0.1).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn scale_load_doubles_utilization() {
        let mut rng = Rng::seed_from_u64(1);
        let set = uniform_srt_set(10, 4, Duration::from_ms(5), Duration::from_ms(50), &mut rng);
        let base = set_utilization(&set, BitTiming::MBIT_1);
        let scaled = scale_load(&set, 2.0);
        let after = set_utilization(&scaled, BitTiming::MBIT_1);
        assert!((after / base - 2.0).abs() < 0.01, "{base} -> {after}");
        // Deadlines unchanged.
        for (a, b) in set.iter().zip(&scaled) {
            assert_eq!(a.rel_deadline, b.rel_deadline);
        }
    }

    #[test]
    fn uniform_set_is_deterministic_and_in_range() {
        let mk = || {
            let mut rng = Rng::seed_from_u64(77);
            uniform_srt_set(
                20,
                6,
                Duration::from_ms(2),
                Duration::from_ms(100),
                &mut rng,
            )
        };
        let a = mk();
        let b = mk();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pattern, y.pattern);
            assert_eq!(x.node, y.node);
        }
        for s in &a {
            let ArrivalPattern::Periodic { period, .. } = s.pattern else {
                panic!("periodic expected")
            };
            assert!(period >= Duration::from_ms(2) && period <= Duration::from_ms(100));
            assert!(s.node.0 < 6);
        }
        // Streams land on all nodes.
        let mut nodes: Vec<u8> = a.iter().map(|s| s.node.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 6);
    }

    #[test]
    #[should_panic]
    fn scale_load_rejects_nonpositive() {
        let _ = scale_load(&[], 0.0);
    }
}
