//! An SAE-class automotive control message set.
//!
//! The classic SAE benchmark (as used by Tindell & Burns for CAN
//! response-time analysis) mixes short-period control signals between
//! the battery, vehicle controller, motor controller, brakes and
//! driver-interface stations with sporadic driver inputs and slow
//! status traffic. The exact proprietary table is not reproduced here;
//! this module encodes a set with the same *shape* — message counts,
//! period spectrum (5 ms .. 1 s), sporadic minimum inter-arrival times
//! (20/50 ms) and payload sizes (1..=8 bytes) — and tags each message
//! with the timeliness class it maps to in the event-channel model.

use crate::arrival::ArrivalPattern;
use crate::streams::StreamSpec;
use rtec_can::NodeId;
use rtec_sim::Duration;
use serde::{Deserialize, Serialize};

/// Which event-channel class a message belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimelinessClass {
    /// Safety-critical periodic control loop → HRTEC.
    Hard,
    /// Deadline-sensitive but overload-tolerant → SRTEC.
    Soft,
    /// Status / diagnostics → NRTEC.
    NonRt,
}

/// One message of the automotive set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SaeMessage {
    /// Signal name.
    pub name: &'static str,
    /// Source station (node).
    pub node: NodeId,
    /// Payload bytes.
    pub dlc: u8,
    /// Release process.
    pub pattern: ArrivalPattern,
    /// Relative deadline.
    pub deadline: Duration,
    /// The channel class the signal maps to.
    pub class: TimelinessClass,
}

impl SaeMessage {
    /// Convert to a scheduling-testbed stream spec (SRT semantics).
    pub fn to_stream(&self, id: u16) -> StreamSpec {
        StreamSpec {
            id,
            node: self.node,
            dlc: self.dlc,
            pattern: self.pattern,
            rel_deadline: self.deadline,
            rel_expiration: Some(self.deadline * 4),
        }
    }
}

const fn ms(v: u64) -> Duration {
    Duration::from_ms(v)
}

/// The SAE-class set: 7 stations, 24 signals.
///
/// Stations: 0 = battery, 1 = vehicle controller, 2 = motor
/// controller, 3 = brakes, 4 = driver interface, 5 = instrument
/// cluster, 6 = diagnostics gateway.
pub fn sae_class_set() -> Vec<SaeMessage> {
    use TimelinessClass::*;
    let periodic = |period: Duration| ArrivalPattern::Periodic {
        period,
        phase: Duration::ZERO,
        jitter: Duration::ZERO,
    };
    let sporadic = |mit: Duration| ArrivalPattern::Sporadic {
        min_gap: mit,
        mean_extra: mit * 2,
    };
    vec![
        // --- 5 ms control loop (hard) ---
        SaeMessage {
            name: "traction_torque_cmd",
            node: NodeId(1),
            dlc: 8,
            pattern: periodic(ms(5)),
            deadline: ms(5),
            class: Hard,
        },
        SaeMessage {
            name: "motor_speed_fb",
            node: NodeId(2),
            dlc: 8,
            pattern: periodic(ms(5)),
            deadline: ms(5),
            class: Hard,
        },
        SaeMessage {
            name: "brake_pressure_fb",
            node: NodeId(3),
            dlc: 4,
            pattern: periodic(ms(5)),
            deadline: ms(5),
            class: Hard,
        },
        // --- 10 ms control loop (hard) ---
        SaeMessage {
            name: "battery_current",
            node: NodeId(0),
            dlc: 4,
            pattern: periodic(ms(10)),
            deadline: ms(10),
            class: Hard,
        },
        SaeMessage {
            name: "battery_voltage",
            node: NodeId(0),
            dlc: 4,
            pattern: periodic(ms(10)),
            deadline: ms(10),
            class: Hard,
        },
        SaeMessage {
            name: "accel_position",
            node: NodeId(4),
            dlc: 2,
            pattern: periodic(ms(10)),
            deadline: ms(10),
            class: Hard,
        },
        SaeMessage {
            name: "brake_position",
            node: NodeId(4),
            dlc: 2,
            pattern: periodic(ms(10)),
            deadline: ms(10),
            class: Hard,
        },
        // --- sporadic driver inputs (soft, 20 ms MIT) ---
        SaeMessage {
            name: "gear_select",
            node: NodeId(4),
            dlc: 1,
            pattern: sporadic(ms(20)),
            deadline: ms(20),
            class: Soft,
        },
        SaeMessage {
            name: "cruise_toggle",
            node: NodeId(4),
            dlc: 1,
            pattern: sporadic(ms(20)),
            deadline: ms(20),
            class: Soft,
        },
        SaeMessage {
            name: "regen_level",
            node: NodeId(4),
            dlc: 1,
            pattern: sporadic(ms(50)),
            deadline: ms(50),
            class: Soft,
        },
        SaeMessage {
            name: "wiper_request",
            node: NodeId(4),
            dlc: 1,
            pattern: sporadic(ms(50)),
            deadline: ms(50),
            class: Soft,
        },
        // --- 50/100 ms soft periodic signals ---
        SaeMessage {
            name: "motor_temp",
            node: NodeId(2),
            dlc: 2,
            pattern: periodic(ms(50)),
            deadline: ms(50),
            class: Soft,
        },
        SaeMessage {
            name: "battery_temp",
            node: NodeId(0),
            dlc: 2,
            pattern: periodic(ms(50)),
            deadline: ms(50),
            class: Soft,
        },
        SaeMessage {
            name: "inverter_status",
            node: NodeId(2),
            dlc: 8,
            pattern: periodic(ms(100)),
            deadline: ms(100),
            class: Soft,
        },
        SaeMessage {
            name: "vc_status",
            node: NodeId(1),
            dlc: 8,
            pattern: periodic(ms(100)),
            deadline: ms(100),
            class: Soft,
        },
        SaeMessage {
            name: "brake_wear",
            node: NodeId(3),
            dlc: 2,
            pattern: periodic(ms(100)),
            deadline: ms(100),
            class: Soft,
        },
        SaeMessage {
            name: "speedometer",
            node: NodeId(5),
            dlc: 4,
            pattern: periodic(ms(100)),
            deadline: ms(100),
            class: Soft,
        },
        SaeMessage {
            name: "odometer",
            node: NodeId(5),
            dlc: 4,
            pattern: periodic(ms(500)),
            deadline: ms(500),
            class: Soft,
        },
        // --- slow status / diagnostics (non-RT) ---
        SaeMessage {
            name: "soc_estimate",
            node: NodeId(0),
            dlc: 2,
            pattern: periodic(ms(1000)),
            deadline: ms(1000),
            class: NonRt,
        },
        SaeMessage {
            name: "hv_isolation",
            node: NodeId(0),
            dlc: 2,
            pattern: periodic(ms(1000)),
            deadline: ms(1000),
            class: NonRt,
        },
        SaeMessage {
            name: "cabin_temp",
            node: NodeId(5),
            dlc: 1,
            pattern: periodic(ms(1000)),
            deadline: ms(1000),
            class: NonRt,
        },
        SaeMessage {
            name: "diag_heartbeat",
            node: NodeId(6),
            dlc: 8,
            pattern: periodic(ms(1000)),
            deadline: ms(1000),
            class: NonRt,
        },
        SaeMessage {
            name: "fault_log_page",
            node: NodeId(6),
            dlc: 8,
            pattern: periodic(ms(500)),
            deadline: ms(500),
            class: NonRt,
        },
        SaeMessage {
            name: "config_echo",
            node: NodeId(6),
            dlc: 8,
            pattern: periodic(ms(1000)),
            deadline: ms(1000),
            class: NonRt,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::set_utilization;
    use rtec_can::bits::BitTiming;

    #[test]
    fn set_shape() {
        let set = sae_class_set();
        assert_eq!(set.len(), 24);
        let hard = set
            .iter()
            .filter(|m| m.class == TimelinessClass::Hard)
            .count();
        let soft = set
            .iter()
            .filter(|m| m.class == TimelinessClass::Soft)
            .count();
        let nrt = set
            .iter()
            .filter(|m| m.class == TimelinessClass::NonRt)
            .count();
        assert_eq!(hard, 7);
        assert_eq!(soft, 11);
        assert_eq!(nrt, 6);
        // Seven distinct stations.
        let mut nodes: Vec<u8> = set.iter().map(|m| m.node.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 7);
    }

    #[test]
    fn names_unique_and_payloads_valid() {
        let set = sae_class_set();
        let mut names: Vec<&str> = set.iter().map(|m| m.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate names");
        assert!(set.iter().all(|m| m.dlc <= 8 && m.dlc >= 1));
    }

    #[test]
    fn total_load_fits_a_1mbit_bus() {
        let set = sae_class_set();
        let streams: Vec<_> = set
            .iter()
            .enumerate()
            .map(|(i, m)| m.to_stream(i as u16))
            .collect();
        let u = set_utilization(&streams, BitTiming::MBIT_1);
        // The SAE-class mix is a moderate load, leaving headroom for the
        // overload-scaling sweeps.
        assert!(u > 0.05 && u < 0.5, "u = {u}");
    }

    #[test]
    fn hard_messages_have_short_periods() {
        for m in sae_class_set() {
            if m.class == TimelinessClass::Hard {
                assert!(m.deadline <= Duration::from_ms(10), "{}", m.name);
            }
        }
    }
}
