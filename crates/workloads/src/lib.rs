//! # rtec-workloads — traffic generators and scenario sets
//!
//! Deterministic, seedable workload generation for the experiments:
//!
//! * [`arrival`] — release-time generators for periodic (with phase and
//!   bounded release jitter), sporadic (minimum inter-arrival plus a
//!   random extra gap) and Poisson arrival processes;
//! * [`streams`] — message-stream specifications
//!   ([`streams::StreamSpec`]) and synthetic set constructors with a
//!   load-scaling knob for the overload sweeps;
//! * [`sae`] — an SAE-class automotive control message set in the
//!   spirit of the classic SAE benchmark used by Tindell & Burns: a mix
//!   of short-period control signals, sporadic driver inputs and slow
//!   status traffic, with per-message timeliness classes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod sae;
pub mod streams;

pub use arrival::{ArrivalGen, ArrivalPattern};
pub use sae::{sae_class_set, SaeMessage, TimelinessClass};
pub use streams::{scale_load, set_utilization, uniform_srt_set, StreamSpec};
