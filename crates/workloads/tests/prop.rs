//! Property-based tests of the arrival generators and stream sets.

use proptest::prelude::*;
use rtec_can::bits::BitTiming;
use rtec_sim::{Duration, Rng, Time};
use rtec_workloads::{scale_load, set_utilization, uniform_srt_set, ArrivalGen, ArrivalPattern};

proptest! {
    /// Sporadic releases always honour the minimum inter-arrival time.
    #[test]
    fn sporadic_respects_mit(
        seed in any::<u64>(),
        min_gap_us in 1u64..10_000,
        mean_extra_us in 0u64..10_000,
    ) {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Sporadic {
                min_gap: Duration::from_us(min_gap_us),
                mean_extra: Duration::from_us(mean_extra_us),
            },
            Rng::seed_from_u64(seed),
        );
        let mut last: Option<Time> = None;
        for _ in 0..100 {
            let t = gen.next_release();
            if let Some(prev) = last {
                prop_assert!(
                    t.saturating_since(prev) >= Duration::from_us(min_gap_us)
                );
            }
            last = Some(t);
        }
    }

    /// Periodic releases stay within [nominal, nominal + jitter].
    #[test]
    fn periodic_jitter_bounded(
        seed in any::<u64>(),
        period_us in 1u64..10_000,
        phase_us in 0u64..5_000,
        jitter_us in 0u64..1_000,
    ) {
        let mut gen = ArrivalGen::new(
            ArrivalPattern::Periodic {
                period: Duration::from_us(period_us),
                phase: Duration::from_us(phase_us),
                jitter: Duration::from_us(jitter_us),
            },
            Rng::seed_from_u64(seed),
        );
        for i in 0..100u64 {
            let t = gen.next_release();
            let nominal = Time::from_us(phase_us + period_us * i);
            prop_assert!(t >= nominal);
            prop_assert!(t <= nominal + Duration::from_us(jitter_us));
        }
    }

    /// Releases are non-decreasing for every pattern, and identical
    /// seeds replay identically.
    #[test]
    fn releases_monotone_and_deterministic(seed in any::<u64>(), which in 0u8..3) {
        let pattern = match which {
            0 => ArrivalPattern::periodic(Duration::from_us(500)),
            1 => ArrivalPattern::Sporadic {
                min_gap: Duration::from_us(100),
                mean_extra: Duration::from_us(300),
            },
            _ => ArrivalPattern::Poisson {
                mean_gap: Duration::from_us(400),
            },
        };
        let mut a = ArrivalGen::new(pattern, Rng::seed_from_u64(seed));
        let mut b = ArrivalGen::new(pattern, Rng::seed_from_u64(seed));
        let mut last = Time::ZERO;
        for _ in 0..200 {
            let ta = a.next_release();
            prop_assert_eq!(ta, b.next_release());
            prop_assert!(ta >= last);
            last = ta;
        }
    }

    /// Load scaling hits the requested utilization (within rounding)
    /// and never changes deadlines or stream count.
    #[test]
    fn scale_load_is_proportional(
        n in 1usize..30,
        seed in any::<u64>(),
        factor in 0.1f64..5.0,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let set = uniform_srt_set(
            n,
            4,
            Duration::from_ms(2),
            Duration::from_ms(100),
            &mut rng,
        );
        let before = set_utilization(&set, BitTiming::MBIT_1);
        let scaled = scale_load(&set, factor);
        let after = set_utilization(&scaled, BitTiming::MBIT_1);
        prop_assert_eq!(scaled.len(), set.len());
        prop_assert!((after / before - factor).abs() / factor < 0.02,
            "scaling {factor}: {before} -> {after}");
        for (a, b) in set.iter().zip(&scaled) {
            prop_assert_eq!(a.rel_deadline, b.rel_deadline);
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.node, b.node);
        }
    }
}
