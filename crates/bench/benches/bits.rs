//! Microbenchmarks of the bit-level CAN codec: serialization, stuffing
//! and CRC-15 — the inner loop of every simulated transmission.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rtec_can::bits::{crc15, destuff, exact_frame_bits, stuff, unstuffed_bits};
use rtec_can::{CanId, Frame};
use std::hint::black_box;

fn bench_bits(c: &mut Criterion) {
    let frames: Vec<Frame> = (0..=8u8)
        .map(|dlc| Frame::new(CanId::new(dlc, 7, 0x1234), &(0..dlc).collect::<Vec<u8>>()))
        .collect();

    c.bench_function("exact_frame_bits/dlc8", |b| {
        b.iter(|| black_box(exact_frame_bits(black_box(&frames[8]))))
    });

    c.bench_function("unstuffed_bits/dlc8", |b| {
        b.iter(|| black_box(unstuffed_bits(black_box(&frames[8]))))
    });

    let bits = unstuffed_bits(&frames[8]);
    c.bench_function("crc15/118bits", |b| {
        b.iter(|| black_box(crc15(black_box(&bits))))
    });

    c.bench_function("stuff/118bits", |b| {
        b.iter(|| black_box(stuff(black_box(&bits))))
    });

    let stuffed = stuff(&bits);
    c.bench_function("destuff/roundtrip", |b| {
        b.iter_batched(
            || stuffed.clone(),
            |s| black_box(destuff(&s).unwrap()),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("exact_frame_bits/all_dlc", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for f in &frames {
                total += exact_frame_bits(black_box(f));
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_bits);
criterion_main!(benches);
