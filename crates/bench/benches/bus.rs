//! Bus-simulation throughput: how much simulated saturated traffic the
//! discrete-event CAN model processes per wall-clock second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rtec_can::{
    BusConfig, CanBus, CanEvent, CanId, FaultInjector, FilterMode, Frame, MapScheduler, NodeId,
    Notification, TxRequest,
};
use rtec_sim::{Ctx, Engine, Model, Time};
use std::hint::black_box;

/// Minimal world that keeps `n` nodes saturated: whenever a node's
/// frame completes, it immediately submits another.
struct Saturator {
    bus: CanBus,
    nodes: usize,
    completed: u64,
}

enum Ev {
    Can(CanEvent),
    Seed,
}

impl Model for Saturator {
    type Event = Ev;
    fn handle(&mut self, ctx: &mut Ctx<Ev>, ev: Ev) {
        match ev {
            Ev::Seed => {
                for i in 0..self.nodes {
                    submit(&mut self.bus, ctx, i as u8);
                }
            }
            Ev::Can(can_ev) => {
                let notes = {
                    let mut sched = MapScheduler::new(ctx, Ev::Can);
                    self.bus.handle(&mut sched, can_ev)
                };
                for note in notes {
                    if let Notification::TxCompleted { node, .. } = note {
                        self.completed += 1;
                        submit(&mut self.bus, ctx, node.0);
                    }
                }
            }
        }
    }
}

fn submit(bus: &mut CanBus, ctx: &mut Ctx<Ev>, node: u8) {
    let frame = Frame::new(
        CanId::new(100 + node, node, 500 + u16::from(node)),
        &[node; 8],
    );
    let mut sched = MapScheduler::new(ctx, Ev::Can);
    bus.submit(
        &mut sched,
        NodeId(node),
        TxRequest {
            frame,
            single_shot: false,
            tag: u64::from(node),
        },
    );
}

fn run_saturated(nodes: usize, sim_ms: u64) -> u64 {
    let mut bus = CanBus::new(BusConfig::default(), nodes, FaultInjector::none());
    for i in 0..nodes {
        bus.controller_mut(NodeId(i as u8))
            .set_filter_mode(FilterMode::AcceptAll);
    }
    let mut engine = Engine::new(Saturator {
        bus,
        nodes,
        completed: 0,
    });
    engine.schedule_at(Time::ZERO, Ev::Seed);
    engine.run_until(Time::from_ms(sim_ms));
    engine.model.completed
}

fn bench_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_saturated");
    // ~7 frames per simulated ms at 1 Mbit/s.
    for nodes in [2usize, 8, 32] {
        group.throughput(Throughput::Elements(7 * 10));
        group.bench_function(format!("{nodes}nodes/10ms"), |b| {
            b.iter(|| black_box(run_saturated(black_box(nodes), 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bus);
criterion_main!(benches);
