//! Benchmarks of the analytical kernels: calendar planning, the
//! response-time analysis, the NP-EDF demand test and the deadline →
//! priority mapping (the per-message hot path of the SRT scheduler).

use criterion::{criterion_group, criterion_main, Criterion};
use rtec_analysis::admission::{CalendarPlan, SlotRequest};
use rtec_analysis::edf::{next_promotion_time, priority_for_deadline, PrioritySlotConfig};
use rtec_analysis::npedf::np_edf_feasible;
use rtec_analysis::rta::{rta_feasible, MessageSpec};
use rtec_can::bits::BitTiming;
use rtec_can::NodeId;
use rtec_sim::{Duration, Time};
use std::hint::black_box;

fn requests(n: usize) -> Vec<SlotRequest> {
    (0..n)
        .map(|i| SlotRequest {
            etag: 16 + i as u16,
            publisher: NodeId((i % 32) as u8),
            dlc: 8,
            omission_degree: 1,
            period: if i % 3 == 0 {
                Duration::from_ms(5)
            } else {
                Duration::from_ms(10)
            },
        })
        .collect()
}

fn specs(n: usize) -> Vec<MessageSpec> {
    (0..n)
        .map(|i| MessageSpec {
            priority: i as u32,
            dlc: 8,
            period: Duration::from_ms(2 + (i as u64 % 20)),
            deadline: Duration::from_ms(2 + (i as u64 % 20)),
            jitter: Duration::ZERO,
        })
        .collect()
}

fn bench_analysis(c: &mut Criterion) {
    let reqs = requests(8);
    c.bench_function("admission/plan/8ch_10ms_round", |b| {
        b.iter(|| {
            black_box(
                CalendarPlan::plan(
                    Duration::from_ms(10),
                    black_box(&reqs),
                    BitTiming::MBIT_1,
                    Duration::from_us(40),
                )
                .unwrap(),
            )
        })
    });

    let set20 = specs(20);
    c.bench_function("rta/20msgs", |b| {
        b.iter(|| black_box(rta_feasible(black_box(&set20), BitTiming::MBIT_1)))
    });

    c.bench_function("npedf/20msgs", |b| {
        b.iter(|| black_box(np_edf_feasible(black_box(&set20), BitTiming::MBIT_1)))
    });

    let cfg = PrioritySlotConfig::paper_default();
    c.bench_function("edf/priority_for_deadline", |b| {
        let now = Time::from_ms(100);
        let deadline = Time::from_ms(107);
        b.iter(|| {
            black_box(priority_for_deadline(
                black_box(deadline),
                black_box(now),
                &cfg,
            ))
        })
    });

    c.bench_function("edf/next_promotion_time", |b| {
        let now = Time::from_ms(100);
        let deadline = Time::from_ms(107);
        b.iter(|| {
            black_box(next_promotion_time(
                black_box(deadline),
                black_box(now),
                &cfg,
            ))
        })
    });
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
