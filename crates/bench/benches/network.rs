//! Full middleware-stack benchmark: a complete event-channel network
//! (HRT calendar + SRT background + NRT bulk) simulated for a fixed
//! span — the end-to-end cost of one experiment iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;
use std::hint::black_box;

fn full_stack_run(ms: u64) -> u64 {
    let mut net = Network::builder()
        .nodes(6)
        .round(Duration::from_ms(10))
        .seed(9)
        .build();
    let sensor = Subject::new(0xB001);
    let noise = Subject::new(0xB002);
    let bulk = Subject::new(0xB003);
    {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            sensor,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: 1,
                sporadic: false,
            }),
        )
        .unwrap();
        api.announce(NodeId(1), noise, ChannelSpec::srt(SrtSpec::default()))
            .unwrap();
        api.announce(NodeId(4), bulk, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        api.subscribe(NodeId(2), sensor, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(3), noise, SubscribeSpec::default())
            .unwrap();
        api.subscribe(NodeId(5), bulk, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
    }
    net.every(Duration::from_ms(10), Duration::from_us(100), move |api| {
        let _ = api.publish(NodeId(0), sensor, Event::new(sensor, vec![1; 8]));
    });
    net.every(Duration::from_us(300), Duration::ZERO, move |api| {
        let _ = api.publish(NodeId(1), noise, Event::new(noise, vec![2; 8]));
    });
    net.after(Duration::from_ms(1), move |api| {
        let _ = api.publish(NodeId(4), bulk, Event::new(bulk, vec![3u8; 2048]));
    });
    net.run_for(Duration::from_ms(ms));
    net.stats().total_delivered()
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("network/full_stack/50ms", |b| {
        b.iter(|| black_box(full_stack_run(black_box(50))))
    });
    c.bench_function("network/full_stack/200ms", |b| {
        b.iter(|| black_box(full_stack_run(black_box(200))))
    });
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
