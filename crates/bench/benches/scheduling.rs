//! Policy-testbed benchmarks: simulated scheduling runs per wall-clock
//! second for each priority policy (E4/E5's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use rtec_baselines::{
    run_testbed, DualPriorityPolicy, EdfPolicy, FixedPriorityPolicy, TestbedConfig,
};
use rtec_can::bits::BitTiming;
use rtec_can::BusConfig;
use rtec_sim::{Duration, Rng};
use rtec_workloads::{scale_load, set_utilization, uniform_srt_set, StreamSpec};
use std::hint::black_box;

fn workload(load: f64) -> Vec<StreamSpec> {
    let mut rng = Rng::seed_from_u64(5);
    let base = uniform_srt_set(12, 6, Duration::from_ms(2), Duration::from_ms(50), &mut rng);
    scale_load(&base, load / set_utilization(&base, BitTiming::MBIT_1))
}

fn config(set: Vec<StreamSpec>) -> TestbedConfig {
    TestbedConfig {
        bus: BusConfig::default(),
        streams: set,
        seed: 5,
        drop_on_expiry: false,
    }
}

fn bench_scheduling(c: &mut Criterion) {
    let set = workload(0.9);
    let horizon = Duration::from_ms(200);

    c.bench_function("testbed/edf/200ms@0.9", |b| {
        b.iter(|| {
            black_box(run_testbed(
                EdfPolicy::default(),
                config(set.clone()),
                horizon,
            ))
        })
    });

    c.bench_function("testbed/fixed-dm/200ms@0.9", |b| {
        b.iter(|| {
            black_box(run_testbed(
                FixedPriorityPolicy::deadline_monotonic(&set),
                config(set.clone()),
                horizon,
            ))
        })
    });

    c.bench_function("testbed/dual/200ms@0.9", |b| {
        b.iter(|| {
            black_box(run_testbed(
                DualPriorityPolicy::new(&set, BitTiming::MBIT_1),
                config(set.clone()),
                horizon,
            ))
        })
    });

    // Overload case: denser event traffic, more queue churn.
    let heavy = workload(1.4);
    c.bench_function("testbed/edf/200ms@1.4-overload", |b| {
        b.iter(|| {
            black_box(run_testbed(
                EdfPolicy::default(),
                config(heavy.clone()),
                horizon,
            ))
        })
    });
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
