//! Scheduler micro-benchmarks and macro experiment throughput runs.
//!
//! The `bench` subcommand of the `experiments` binary measures two
//! things and writes each as a JSON report:
//!
//! * **`BENCH_engine.json`** — microbenchmarks driving the timing-wheel
//!   engine and the reference `BinaryHeap` + tombstone scheduler (the
//!   pre-wheel implementation, kept in `rtec_sim::reference`) through
//!   identical schedule/cancel/dispatch workloads at queue depths from
//!   10² to 10⁶. Both events/sec numbers are recorded, so the headline
//!   speedup is measured against real code on the same machine in the
//!   same process.
//! * **`BENCH_experiments.json`** — wall-time, dispatched events,
//!   events/sec and peak queue depth for every experiment E1–E11
//!   (conformance auditing off, so the number is simulation throughput,
//!   not trace-analysis throughput).
//!
//! With `--ci` nothing is written: a reduced run re-measures the
//! dispatch-heavy microbenchmark and fails (exit 1) if the committed
//! baseline no longer parses or if throughput fell below 10% of it —
//! a catastrophic-regression tripwire that stays robust to shared-CI
//! noise.

use crate::json::{self, Value};
use crate::{experiments, RunOpts};
use rtec_sim::{telemetry, Ctx, Duration, Engine, HeapScheduler, Model, Rng, Time};
use std::time::Instant;

/// Options for the `bench` subcommand.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Reduced depths and op counts (used by `--quick` and `--ci`).
    pub quick: bool,
    /// Check against committed baselines instead of writing new ones.
    pub ci_check: bool,
    /// Seed for workload randomness.
    pub seed: u64,
    /// Worker threads for parallel sweeps (`--jobs N`; 1 = serial).
    /// Only sweep-style subcommands consume it — the timed
    /// microbenchmark rows always run uncontended.
    pub jobs: usize,
}

/// Committed engine-microbenchmark report filename.
pub const ENGINE_REPORT: &str = "BENCH_engine.json";
/// Committed experiment-throughput report filename.
pub const EXPERIMENTS_REPORT: &str = "BENCH_experiments.json";
/// CI sanity floor: fail below this fraction of the committed
/// events/sec baseline.
pub const CI_FLOOR: f64 = 0.10;

/// A random timer delay with the mix a CAN simulation produces: mostly
/// within tens of bus bit times, a tail of cycle/watchdog horizons.
fn delay(rng: &mut Rng) -> Duration {
    match rng.gen_range_u64(20) {
        0 => Duration::from_ns(1 + rng.gen_range_u64(1_000_000_000)), // ≤ 1 s
        1..=3 => Duration::from_ns(1 + rng.gen_range_u64(4_000_000)), // ≤ 4 ms
        _ => Duration::from_ns(1 + rng.gen_range_u64(64_000)),        // ≤ 64 µs
    }
}

/// A short delay on the frame timescale (up to ~64 bus bit times worth
/// of granules at 1 Mbit/s): the active-traffic half of `dispatch_hold`.
fn short_delay(rng: &mut Rng) -> Duration {
    Duration::from_ns(1 + rng.gen_range_u64(64_000))
}

/// A far-horizon delay in [1 h, 2 h): subscription watchdogs and cycle
/// deadlines that sit in the queue without firing during the run.
fn ballast_delay(rng: &mut Rng) -> Duration {
    Duration::from_secs(3_600) + Duration::from_ns(rng.gen_range_u64(3_600_000_000_000))
}

/// Model that answers every event by scheduling a replacement until its
/// budget runs out — a steady-state dispatch loop at constant depth.
struct Hold {
    rng: Rng,
    remaining: u64,
}

impl Model for Hold {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = delay(&mut self.rng);
            ctx.after(d, ());
        }
    }
}

/// Model that replays a pre-generated delay sequence, one replacement
/// per dispatch: keeps random-number generation out of the timed loop
/// so `dispatch_hold` measures scheduler cost, not `Rng` cost.
struct Chain {
    delays: Vec<Duration>,
    next: usize,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, ctx: &mut Ctx<()>, _ev: ()) {
        if let Some(&d) = self.delays.get(self.next) {
            self.next += 1;
            ctx.after(d, ());
        }
    }
}

/// The shared replacement-delay sequence for `dispatch_hold`: both
/// schedulers dispatch in the same order (the differential property
/// test guarantees it), so indexing one sequence keeps the workloads
/// identical.
fn chain_delays(ops: u64, seed: u64) -> Vec<Duration> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
    (0..ops).map(|_| short_delay(&mut rng)).collect()
}

/// Model that ignores every event (externally driven workloads).
struct Nop;

impl Model for Nop {
    type Event = ();
    fn handle(&mut self, _ctx: &mut Ctx<()>, _ev: ()) {}
}

/// One timed engine run.
struct Timed {
    dispatched: u64,
    wall_s: f64,
    peak_pending: u64,
}

impl Timed {
    fn eps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.dispatched as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// One microbenchmark row: same workload on both schedulers.
struct MicroRow {
    name: &'static str,
    depth: u64,
    wheel: Timed,
    heap: Timed,
    /// Workload-specific observables (e.g. leaked tombstones).
    extra: Vec<(&'static str, f64)>,
}

// ---------------------------------------------------------------- micro

/// Number of concurrent frame-timescale timer chains in
/// `dispatch_hold` — the "active subscriptions" of the workload.
const CHAINS: u64 = 4_096;

/// Dispatch-heavy over a standing deep queue: prefill `depth`
/// far-horizon timers that never fire during the run (the watchdog /
/// cycle-deadline population an RTEC node carries), then drive `ops`
/// frame-timescale dispatches through [`CHAINS`] self-regenerating
/// chains. The dispatch loop's cost as a function of the standing
/// `depth` is the number under test: O(1) for the wheel, O(log
/// depth) per heap pop.
fn wheel_dispatch_hold(depth: u64, ops: u64, seed: u64) -> Timed {
    let mut prefill = Rng::seed_from_u64(seed);
    let mut e = Engine::new(Chain {
        delays: chain_delays(ops, seed),
        next: 0,
    });
    for _ in 0..depth {
        let d = ballast_delay(&mut prefill);
        e.schedule_at(Time::ZERO + d, ());
    }
    let mut starter = Rng::seed_from_u64(seed ^ 0xc4a1);
    for _ in 0..CHAINS {
        let d = short_delay(&mut starter);
        e.schedule_at(Time::ZERO + d, ());
    }
    // Time the dispatch loop only: prefill cost is a one-time setup,
    // the steady-state loop is the number under test. The horizon is
    // far enough for all chains (ops × ≤64 µs spread over the chains),
    // well short of the 1 h ballast horizon.
    let t0 = Instant::now();
    e.run_until(Time::ZERO + Duration::from_secs(600));
    Timed {
        dispatched: e.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: e.ctx().peak_pending() as u64,
    }
}

fn heap_dispatch_hold(depth: u64, ops: u64, seed: u64) -> Timed {
    let mut prefill = Rng::seed_from_u64(seed);
    let delays = chain_delays(ops, seed);
    let mut h: HeapScheduler<()> = HeapScheduler::new();
    for _ in 0..depth {
        let d = ballast_delay(&mut prefill);
        h.at(Time::ZERO + d, ());
    }
    let mut starter = Rng::seed_from_u64(seed ^ 0xc4a1);
    for _ in 0..CHAINS {
        let d = short_delay(&mut starter);
        h.at(Time::ZERO + d, ());
    }
    let peak = h.pending();
    let limit = Time::ZERO + Duration::from_secs(600);
    let mut next = 0usize;
    let t0 = Instant::now();
    while h.pop_due(limit).is_some() {
        if let Some(&d) = delays.get(next) {
            next += 1;
            h.after(d, ());
        }
    }
    h.advance_to(limit);
    Timed {
        dispatched: h.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: peak as u64,
    }
}

/// Steady-state churn at ~constant depth with the full mixed delay
/// distribution: every dispatch schedules a replacement, so schedule
/// and dispatch costs are measured together and the whole queue turns
/// over (including the far tail the wheel must cascade down).
fn wheel_churn_mixed(depth: u64, ops: u64, seed: u64) -> Timed {
    let mut prefill = Rng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut e = Engine::new(Hold {
        rng: Rng::seed_from_u64(seed ^ 0x5eed),
        remaining: ops,
    });
    for _ in 0..depth {
        let d = delay(&mut prefill);
        e.schedule_at(Time::ZERO + d, ());
    }
    e.run();
    Timed {
        dispatched: e.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: e.ctx().peak_pending() as u64,
    }
}

fn heap_churn_mixed(depth: u64, ops: u64, seed: u64) -> Timed {
    let mut prefill = Rng::seed_from_u64(seed);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
    let t0 = Instant::now();
    let mut h: HeapScheduler<()> = HeapScheduler::new();
    let mut peak = 0usize;
    for _ in 0..depth {
        let d = delay(&mut prefill);
        h.at(Time::ZERO + d, ());
    }
    peak = peak.max(h.pending());
    let mut remaining = ops;
    while h.pop_due(Time::MAX).is_some() {
        if remaining > 0 {
            remaining -= 1;
            let d = delay(&mut rng);
            h.after(d, ());
            peak = peak.max(h.pending());
        }
    }
    Timed {
        dispatched: h.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: peak as u64,
    }
}

/// Schedule/cancel mix: per round, schedule `depth` timers, cancel
/// every other one, drain the survivors.
fn wheel_schedule_cancel(depth: u64, rounds: u64, seed: u64) -> Timed {
    let mut rng = Rng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut e = Engine::new(Nop);
    let mut ids = Vec::with_capacity(depth as usize);
    for _ in 0..rounds {
        ids.clear();
        for _ in 0..depth {
            let d = delay(&mut rng);
            ids.push(e.schedule_after(d, ()));
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                e.ctx().cancel(id);
            }
        }
        e.run();
    }
    Timed {
        dispatched: e.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: e.ctx().peak_pending() as u64,
    }
}

fn heap_schedule_cancel(depth: u64, rounds: u64, seed: u64) -> Timed {
    let mut rng = Rng::seed_from_u64(seed);
    let t0 = Instant::now();
    let mut h: HeapScheduler<()> = HeapScheduler::new();
    let mut ids = Vec::with_capacity(depth as usize);
    let mut peak = 0usize;
    for _ in 0..rounds {
        ids.clear();
        for _ in 0..depth {
            let d = delay(&mut rng);
            ids.push(h.after(d, ()));
        }
        peak = peak.max(h.pending());
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                h.cancel(id);
            }
        }
        while h.pop_due(Time::MAX).is_some() {}
    }
    Timed {
        dispatched: h.dispatched(),
        wall_s: t0.elapsed().as_secs_f64(),
        peak_pending: peak as u64,
    }
}

/// Cancel-after-fire churn over a standing background queue: each
/// iteration fires one short timer and then cancels its stale handle.
/// The reference scheduler leaks one tombstone per iteration; the wheel
/// must stay at a single-digit slab size.
fn wheel_cancel_after_fire(depth: u64, iters: u64, _seed: u64) -> (Timed, f64) {
    let t0 = Instant::now();
    let mut e = Engine::new(Nop);
    for _ in 0..depth {
        e.schedule_after(Duration::from_secs(3_600), ());
    }
    for _ in 0..iters {
        let id = e.schedule_after(Duration::from_ns(100), ());
        let limit = e.now() + Duration::from_ns(100);
        e.run_until(limit);
        e.ctx().cancel(id); // stale: must be a true no-op
    }
    let retained = e.ctx().allocated_timers() as f64;
    (
        Timed {
            dispatched: e.dispatched(),
            wall_s: t0.elapsed().as_secs_f64(),
            peak_pending: e.ctx().peak_pending() as u64,
        },
        retained,
    )
}

fn heap_cancel_after_fire(depth: u64, iters: u64, _seed: u64) -> (Timed, f64) {
    let t0 = Instant::now();
    let mut h: HeapScheduler<()> = HeapScheduler::new();
    for _ in 0..depth {
        h.after(Duration::from_secs(3_600), ());
    }
    let peak = h.pending() + 1;
    for _ in 0..iters {
        let id = h.after(Duration::from_ns(100), ());
        let limit = h.now() + Duration::from_ns(100);
        while h.pop_due(limit).is_some() {}
        h.advance_to(limit);
        h.cancel(id); // lazily tombstoned, never reclaimed
    }
    let tombstones = h.tombstones() as f64;
    (
        Timed {
            dispatched: h.dispatched(),
            wall_s: t0.elapsed().as_secs_f64(),
            peak_pending: peak as u64,
        },
        tombstones,
    )
}

fn run_micro(cfg: &BenchConfig) -> Vec<MicroRow> {
    let depths: &[u64] = if cfg.quick {
        &[100, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000, 1_000_000]
    };
    let ops: u64 = if cfg.quick { 200_000 } else { 1_000_000 };
    let mut rows = Vec::new();
    for &depth in depths {
        let wheel = wheel_dispatch_hold(depth, ops, cfg.seed);
        let heap = heap_dispatch_hold(depth, ops, cfg.seed);
        assert_eq!(
            wheel.dispatched, heap.dispatched,
            "schedulers must agree on the dispatch count"
        );
        eprintln!(
            "  dispatch_hold     depth {depth:>7}: wheel {:>12.0} ev/s | heap {:>12.0} ev/s | {:>5.2}x",
            wheel.eps(),
            heap.eps(),
            wheel.eps() / heap.eps().max(1.0)
        );
        rows.push(MicroRow {
            name: "dispatch_hold",
            depth,
            wheel,
            heap,
            extra: vec![],
        });
    }
    for &depth in depths {
        let wheel = wheel_churn_mixed(depth, ops, cfg.seed);
        let heap = heap_churn_mixed(depth, ops, cfg.seed);
        assert_eq!(wheel.dispatched, heap.dispatched);
        eprintln!(
            "  churn_mixed       depth {depth:>7}: wheel {:>12.0} ev/s | heap {:>12.0} ev/s | {:>5.2}x",
            wheel.eps(),
            heap.eps(),
            wheel.eps() / heap.eps().max(1.0)
        );
        rows.push(MicroRow {
            name: "churn_mixed",
            depth,
            wheel,
            heap,
            extra: vec![],
        });
    }
    for &depth in depths {
        let rounds = (ops / depth.max(1)).clamp(1, 10_000);
        let wheel = wheel_schedule_cancel(depth, rounds, cfg.seed);
        let heap = heap_schedule_cancel(depth, rounds, cfg.seed);
        assert_eq!(wheel.dispatched, heap.dispatched);
        eprintln!(
            "  schedule_cancel   depth {depth:>7}: wheel {:>12.0} ev/s | heap {:>12.0} ev/s | {:>5.2}x",
            wheel.eps(),
            heap.eps(),
            wheel.eps() / heap.eps().max(1.0)
        );
        rows.push(MicroRow {
            name: "schedule_cancel",
            depth,
            wheel,
            heap,
            extra: vec![("rounds", rounds as f64)],
        });
    }
    {
        let depth = if cfg.quick { 1_000 } else { 10_000 };
        let iters = if cfg.quick { 100_000 } else { 500_000 };
        let (wheel, wheel_retained) = wheel_cancel_after_fire(depth, iters, cfg.seed);
        let (heap, heap_tombstones) = heap_cancel_after_fire(depth, iters, cfg.seed);
        assert_eq!(wheel.dispatched, heap.dispatched);
        eprintln!(
            "  cancel_after_fire depth {depth:>7}: wheel {:>12.0} ev/s | heap {:>12.0} ev/s | wheel slab {} cells vs heap {} tombstones",
            wheel.eps(),
            heap.eps(),
            wheel_retained,
            heap_tombstones
        );
        rows.push(MicroRow {
            name: "cancel_after_fire",
            depth,
            wheel,
            heap,
            extra: vec![
                ("wheel_slab_cells", wheel_retained),
                ("heap_leaked_tombstones", heap_tombstones),
            ],
        });
    }
    rows
}

// ---------------------------------------------------------------- macro

struct MacroRow {
    id: String,
    what: String,
    wall_s: f64,
    events: u64,
    peak_queue_depth: u64,
    tables: usize,
}

fn run_macro(cfg: &BenchConfig) -> Vec<MacroRow> {
    let opts = RunOpts {
        quick: cfg.quick,
        seed: cfg.seed,
        conformance: false,
    };
    let mut rows = Vec::new();
    for e in experiments::all() {
        telemetry::reset();
        let t0 = Instant::now();
        let tables = (e.run)(&opts);
        let wall_s = t0.elapsed().as_secs_f64();
        let snap = telemetry::snapshot();
        eprintln!(
            "  {:>4}: {:>9} events in {:>7.2}s = {:>12.0} ev/s (peak queue {})",
            e.id,
            snap.dispatched,
            wall_s,
            snap.dispatched as f64 / wall_s.max(1e-9),
            snap.peak_pending
        );
        rows.push(MacroRow {
            id: e.id.to_string(),
            what: e.what.to_string(),
            wall_s,
            events: snap.dispatched,
            peak_queue_depth: snap.peak_pending as u64,
            tables: tables.len(),
        });
    }
    rows
}

// --------------------------------------------------------------- report

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn timed_json(t: &Timed) -> Value {
    obj(vec![
        ("events", Value::num(t.dispatched as f64)),
        ("wall_ms", Value::num(round3(t.wall_s * 1e3))),
        ("events_per_sec", Value::num(t.eps().round())),
        ("peak_queue_depth", Value::num(t.peak_pending as f64)),
    ])
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// The dispatch-heavy row the headline speedup is computed from: the
/// deepest `dispatch_hold` run.
fn headline(rows: &[MicroRow]) -> &MicroRow {
    rows.iter()
        .filter(|r| r.name == "dispatch_hold")
        .max_by_key(|r| r.depth)
        .expect("dispatch_hold rows exist")
}

fn engine_report(cfg: &BenchConfig, rows: &[MicroRow]) -> Value {
    let head = headline(rows);
    let micro = rows
        .iter()
        .map(|r| {
            let mut fields = vec![
                ("name", Value::str(r.name)),
                ("depth", Value::num(r.depth as f64)),
                ("wheel", timed_json(&r.wheel)),
                ("heap_baseline", timed_json(&r.heap)),
                (
                    "speedup",
                    Value::num(round3(r.wheel.eps() / r.heap.eps().max(1.0))),
                ),
            ];
            for &(k, v) in &r.extra {
                fields.push((k, Value::num(v)));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        // v2: adds cpu_cores — the parallel section's speedups are
        // meaningless without knowing how many cores the host had.
        ("schema", Value::str("rtec-bench-engine-v2")),
        ("mode", Value::str(if cfg.quick { "quick" } else { "full" })),
        ("seed", Value::num(cfg.seed as f64)),
        (
            "cpu_cores",
            Value::num(crate::parallel_perf::cpu_cores() as f64),
        ),
        ("granule_ns", Value::num(1024.0)),
        (
            "summary",
            obj(vec![
                ("benchmark", Value::str("dispatch_hold")),
                ("depth", Value::num(head.depth as f64)),
                ("wheel_events_per_sec", Value::num(head.wheel.eps().round())),
                (
                    "heap_baseline_events_per_sec",
                    Value::num(head.heap.eps().round()),
                ),
                (
                    "speedup",
                    Value::num(round3(head.wheel.eps() / head.heap.eps().max(1.0))),
                ),
            ]),
        ),
        ("micro", Value::Arr(micro)),
    ])
}

fn experiments_report(cfg: &BenchConfig, rows: &[MacroRow]) -> Value {
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let total_wall: f64 = rows.iter().map(|r| r.wall_s).sum();
    let entries = rows
        .iter()
        .map(|r| {
            obj(vec![
                ("id", Value::str(r.id.clone())),
                ("what", Value::str(r.what.clone())),
                ("events", Value::num(r.events as f64)),
                ("wall_ms", Value::num(round3(r.wall_s * 1e3))),
                (
                    "events_per_sec",
                    Value::num((r.events as f64 / r.wall_s.max(1e-9)).round()),
                ),
                ("peak_queue_depth", Value::num(r.peak_queue_depth as f64)),
                ("tables", Value::num(r.tables as f64)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Value::str("rtec-bench-experiments-v1")),
        ("mode", Value::str(if cfg.quick { "quick" } else { "full" })),
        ("seed", Value::num(cfg.seed as f64)),
        (
            "total",
            obj(vec![
                ("events", Value::num(total_events as f64)),
                ("wall_ms", Value::num(round3(total_wall * 1e3))),
                (
                    "events_per_sec",
                    Value::num((total_events as f64 / total_wall.max(1e-9)).round()),
                ),
            ]),
        ),
        ("experiments", Value::Arr(entries)),
    ])
}

// ------------------------------------------------------------ entrypoint

/// Run the benchmark suite. Returns a process exit code.
pub fn run(cfg: &BenchConfig) -> i32 {
    if cfg.ci_check {
        return ci_check(cfg);
    }
    eprintln!(
        "== engine microbenchmarks ({}) ==",
        if cfg.quick { "quick" } else { "full" }
    );
    let micro = run_micro(cfg);
    eprintln!("== experiment throughput (E1–E11, conformance off) ==");
    let macro_rows = run_macro(cfg);
    let mut engine = engine_report(cfg, &micro);
    // Preserve sections other subcommands merged in (`bench live`,
    // `bench parallel`) — a plain `bench` rerun must not erase them.
    if let Ok(old) = std::fs::read_to_string(ENGINE_REPORT) {
        if let (Ok(old), Value::Obj(fields)) = (json::parse(&old), &mut engine) {
            for key in ["live", "parallel"] {
                if let Some(section) = old.get(key) {
                    fields.push((key.to_string(), section.clone()));
                }
            }
        }
    }
    let experiments = experiments_report(cfg, &macro_rows);
    std::fs::write(ENGINE_REPORT, engine.to_pretty()).expect("write BENCH_engine.json");
    std::fs::write(EXPERIMENTS_REPORT, experiments.to_pretty())
        .expect("write BENCH_experiments.json");
    let head = headline(&micro);
    eprintln!(
        "wrote {ENGINE_REPORT} and {EXPERIMENTS_REPORT}; headline: {:.2}x over heap baseline at depth {}",
        head.wheel.eps() / head.heap.eps().max(1.0),
        head.depth
    );
    0
}

/// CI tripwire: the committed reports must parse, and a fresh reduced
/// dispatch-heavy run must reach at least [`CI_FLOOR`] of the committed
/// events/sec.
fn ci_check(cfg: &BenchConfig) -> i32 {
    let committed = match std::fs::read_to_string(ENGINE_REPORT) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench --ci: cannot read {ENGINE_REPORT}: {e}");
            return 1;
        }
    };
    let engine = match json::parse(&committed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench --ci: {ENGINE_REPORT} does not parse: {e}");
            return 1;
        }
    };
    match std::fs::read_to_string(EXPERIMENTS_REPORT).map_err(|e| e.to_string()) {
        Ok(text) => {
            if let Err(e) = json::parse(&text) {
                eprintln!("bench --ci: {EXPERIMENTS_REPORT} does not parse: {e}");
                return 1;
            }
        }
        Err(e) => {
            eprintln!("bench --ci: cannot read {EXPERIMENTS_REPORT}: {e}");
            return 1;
        }
    }
    // The committed live section must not report trace-ring evictions:
    // latency numbers from a run with an incomplete audit trail are not
    // trustworthy (see live_perf's smoke gate for fresh runs).
    if let Some(clusters) = engine
        .get("live")
        .and_then(|l| l.get("clusters"))
        .and_then(Value::as_arr)
    {
        for row in clusters {
            let dropped = row
                .get("trace_dropped")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if dropped > 0.0 {
                eprintln!(
                    "bench --ci: committed live row (nodes {}) reports {dropped} dropped trace event(s)",
                    row.get("nodes").and_then(Value::as_f64).unwrap_or(0.0)
                );
                return 1;
            }
        }
    }
    let Some(baseline_eps) = engine
        .get("summary")
        .and_then(|s| s.get("wheel_events_per_sec"))
        .and_then(Value::as_f64)
    else {
        eprintln!("bench --ci: {ENGINE_REPORT} missing summary.wheel_events_per_sec");
        return 1;
    };
    // Fresh reduced measurement at the deepest quick depth.
    let quick = BenchConfig {
        quick: true,
        ..*cfg
    };
    eprintln!("== bench --ci: dispatch_hold sanity run ==");
    let fresh = wheel_dispatch_hold(10_000, 200_000, quick.seed);
    let floor = baseline_eps * CI_FLOOR;
    eprintln!(
        "  fresh {:.0} ev/s vs committed {:.0} ev/s (floor {:.0})",
        fresh.eps(),
        baseline_eps,
        floor
    );
    if fresh.eps() < floor {
        eprintln!(
            "bench --ci: events/sec {:.0} fell below {:.0} ({}% of committed baseline) — catastrophic scheduler regression?",
            fresh.eps(),
            floor,
            (CI_FLOOR * 100.0) as u32
        );
        return 1;
    }
    eprintln!("bench --ci: ok");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_workloads_agree_and_report_builds() {
        let cfg = BenchConfig {
            quick: true,
            ci_check: false,
            seed: 7,
            jobs: 1,
        };
        // Tiny versions of each workload: the dispatch-count equality
        // asserts inside are the real check.
        let w = wheel_dispatch_hold(50, 500, cfg.seed);
        let h = heap_dispatch_hold(50, 500, cfg.seed);
        assert_eq!(w.dispatched, h.dispatched);
        let w = wheel_schedule_cancel(40, 3, cfg.seed);
        let h = heap_schedule_cancel(40, 3, cfg.seed);
        assert_eq!(w.dispatched, h.dispatched);
        let (w, cells) = wheel_cancel_after_fire(10, 100, cfg.seed);
        let (h, tombs) = heap_cancel_after_fire(10, 100, cfg.seed);
        assert_eq!(w.dispatched, h.dispatched);
        assert_eq!(tombs, 100.0, "reference scheduler leaks per iteration");
        assert!(cells <= 11.0 + 1.0, "wheel slab bounded by live peak");
        // Report assembles and round-trips through the parser.
        let rows = vec![MicroRow {
            name: "dispatch_hold",
            depth: 50,
            wheel: w,
            heap: h,
            extra: vec![],
        }];
        let report = engine_report(&cfg, &rows);
        let text = report.to_pretty();
        let back = json::parse(&text).expect("report parses");
        assert!(back
            .get("summary")
            .and_then(|s| s.get("wheel_events_per_sec"))
            .and_then(Value::as_f64)
            .is_some());
    }
}
