//! # rtec-bench — the experiment harness
//!
//! One module per experiment of `DESIGN.md`'s index (E1–E11); each
//! regenerates its table(s) from a fresh simulation. Run them through
//! the `experiments` binary:
//!
//! ```text
//! cargo run --release -p rtec-bench --bin experiments -- all
//! cargo run --release -p rtec-bench --bin experiments -- e3 --quick
//! ```
//!
//! Every experiment is deterministic for a given seed (printed with its
//! output) and scales its simulated horizon down under `--quick`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos_exp;
pub mod experiments;
pub mod gateway_perf;
pub mod gw_chaos_exp;
pub mod json;
pub mod live_perf;
pub mod parallel_perf;
pub mod perf;
pub mod table;

pub use table::Table;

/// Harness-wide run options.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Shrink simulated horizons for smoke runs.
    pub quick: bool,
    /// Base seed for all experiments.
    pub seed: u64,
    /// Record traces and run the conformance linter + auditor over every
    /// simulation; any error-severity finding aborts the experiment.
    pub conformance: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            quick: false,
            seed: 42,
            conformance: true,
        }
    }
}

impl RunOpts {
    /// Scale a horizon down in quick mode.
    pub fn horizon(&self, full: rtec_sim::Duration) -> rtec_sim::Duration {
        if self.quick {
            full / 10
        } else {
            full
        }
    }
}
