//! Minimal JSON tree, writer, and parser.
//!
//! The workspace deliberately vendors no `serde_json`; the benchmark
//! reports need exactly one thing from JSON — a self-describing file a
//! CI gate can parse back — so this module implements the subset used
//! by `BENCH_engine.json` / `BENCH_experiments.json`: objects with
//! string keys (insertion-ordered), arrays, strings, finite numbers,
//! booleans and null. The writer emits pretty-printed, round-trippable
//! output; the parser accepts any standard JSON document built from
//! those forms.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers survive round-trips exactly up to
    /// 2^53, far beyond any counter emitted here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: a number from any unsigned counter.
    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
                // Rust's shortest-roundtrip Display prints integral
                // values without a fraction part.
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a descriptive error with a byte
/// offset on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn round_trips_a_report_like_document() {
        let doc = obj(vec![
            ("schema", Value::str("rtec-bench-engine-v1")),
            ("speedup", Value::Num(3.75)),
            ("events", Value::Num(1_000_000.0)),
            ("ok", Value::Bool(true)),
            ("note", Value::str("a \"quoted\" name\nwith newline")),
            (
                "micro",
                Value::Arr(vec![
                    obj(vec![("depth", Value::Num(100.0))]),
                    obj(vec![("depth", Value::Num(1e6))]),
                    Value::Null,
                ]),
            ),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        // Integers print without a fraction part.
        assert!(text.contains("\"events\": 1000000"));
    }

    #[test]
    fn parses_external_style_json() {
        let v = parse("  {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": null}, \"d\": \"\\u0041\"} ")
            .expect("parses");
        assert_eq!(v.get("d").and_then(Value::as_str), Some("A"));
        let arr = v.get("a").and_then(Value::as_arr).expect("array");
        assert_eq!(arr[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("42 extra").is_err());
        assert!(parse("nul").is_err());
    }
}
