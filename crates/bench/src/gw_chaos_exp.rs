//! Deterministic gateway chaos smoke (`experiments chaos gateway`).
//!
//! Extends the crash-tolerance gate to the off-bus tier: a virtually
//! paced cluster (one HRT, two SRT, one NRT publisher) feeds a
//! *supervised* gateway node that a seeded [`ChaosPlan`] kills
//! mid-run, while every external client rides a seeded
//! [`LinkChaos`] fault machine that drops, delays and severs its
//! connection ([`rtec_live::chaos`'s gateway faults]). A resume driver
//! node reconnects the severed clients at fixed bus times through the
//! session-resume path, so the run exercises, end to end:
//!
//! * gateway-node kill and supervised restart (shared sequence
//!   counters: client streams keep counting across the incarnation);
//! * link severs parking live sessions, with the lost in-flight tail
//!   repaired by watermark-filtered replay;
//! * **HRT exactly-once across reconnects** (§3.2): every client's
//!   per-subject HRT sequence stream must be contiguous and
//!   duplicate-free;
//! * bounded replay rings overrunning into explicit `Gap` notices,
//!   never silent loss (§2.2.3);
//! * the merged trace passing the `T1`..`T9` auditor (`T9` is the
//!   resume-safety rule);
//! * byte-identity of a second same-seed run, faults and resumes
//!   included;
//! * a TTL-0 sub-scenario in which an expired session is
//!   deterministically *refused*, not half-resumed.
//!
//! Exit code 0 when all hold, 1 otherwise — `ci.sh` gates on it.
//! A full run merges a machine-readable summary into
//! `BENCH_engine.json` under the `"gateway_chaos"` key (schema
//! `rtec-bench-gateway-chaos-v1`); quick/CI runs only validate that
//! the section round-trips the JSON parser.

use crate::json::{self, Value};
use crate::perf::ENGINE_REPORT;
use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::channel::{ChannelClass, ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_gateway::wire::{self, ToClient};
use rtec_gateway::{
    ClassWatermarks, ClientSink, Gateway, GatewayConfig, GatewayReport, SinkDigest, SinkStatus,
    WmSource,
};
use rtec_live::chaos::{self, LinkChaos, LinkFault, LinkPlan, LinkStats};
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::{ChaosPlan, ChaosReport, Pace};
use rtec_sim::{Duration, SharedTraceSink, TraceEvent};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Fanout shards; subjects split across them, each chaos client is
/// confined to one shard so its delivery stream is a single FIFO (the
/// determinism contract of the in-process resume path).
const WORKERS: usize = 2;
/// Per-class replay ring bound — deliberately small so the gap client's
/// lost tail overruns it and mints explicit `Gap` notices.
const RING_CAP: usize = 4;
/// Bound of each (client, shard) egress queue.
const QUEUE_CAP: usize = 32;
/// Trace ring bound (the audited merged trace must drop nothing).
const TRACE_CAPACITY: usize = 1 << 16;
/// Broker messages the gateway node's first incarnation receives
/// before the chaos plan kills it (roughly mid-run).
const GW_KILL_BUDGET: u64 = 80;

const HRT_SUBJECT: Subject = Subject(0xE001);
const SRT_BASE: u64 = 0xE100;
const SRT_COUNT: usize = 2;
const NRT_SUBJECT: Subject = Subject(0xE200);

struct HrtSource {
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(HRT_SUBJECT).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

struct SrtSource {
    subject: Subject,
    every: Duration,
    phase: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(self.subject, vec![0xB0, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

struct NrtPulse {
    every: Duration,
    phase: Duration,
    counter: u8,
}

impl Behavior for NrtPulse {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        let payload: Vec<u8> = (0..48).map(|i| i as u8 ^ self.counter).collect();
        let _ = ctx.publish(Event::new(NRT_SUBJECT, payload));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// One chaotic client's receive-side record, shared between every sink
/// incarnation the session goes through. Mirrors what a real
/// `GatewayClient` tracks: per-class watermarks (`Gap` notices bump
/// them like received frames), plus the HRT sequence streams the
/// exactly-once gate checks.
pub(crate) struct ClientState {
    pub(crate) link: LinkChaos,
    pub(crate) wm: ClassWatermarks,
    hrt_seqs: BTreeMap<u64, Vec<u32>>,
    digest: SinkDigest,
    gaps: Vec<(u64, u32)>,
    sheds: u64,
    decode_errors: u64,
}

impl ClientState {
    pub(crate) fn new(link: LinkChaos) -> Self {
        ClientState {
            link,
            wm: ClassWatermarks::default(),
            hrt_seqs: BTreeMap::new(),
            digest: SinkDigest {
                frames: 0,
                digest: FNV_OFFSET,
            },
            gaps: Vec::new(),
            sheds: 0,
            decode_errors: 0,
        }
    }

    fn record(&mut self, bytes: &[u8]) {
        self.digest.frames += 1;
        for &b in bytes {
            self.digest.digest = (self.digest.digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        match wire::decode_to_client(bytes) {
            Ok(ToClient::Event(ev)) => match ev.class {
                ChannelClass::Hrt => {
                    self.wm.hrt += 1;
                    self.hrt_seqs.entry(ev.uid).or_default().push(ev.seq);
                }
                ChannelClass::Srt => self.wm.srt += 1,
                ChannelClass::Nrt => self.wm.nrt += 1,
            },
            Ok(ToClient::Batch { .. } | ToClient::Frag(_)) => self.wm.nrt += 1,
            Ok(ToClient::Gap { class, count }) => {
                match class {
                    ChannelClass::Hrt => self.wm.hrt += u64::from(count),
                    ChannelClass::Srt => self.wm.srt += u64::from(count),
                    ChannelClass::Nrt => self.wm.nrt += u64::from(count),
                }
                self.gaps.push((class as u64, count));
            }
            Ok(ToClient::Shed { .. }) => self.sheds += 1,
            Ok(ToClient::Welcome { .. } | ToClient::Disconnect { .. }) => {}
            Err(_) => self.decode_errors += 1,
        }
    }

    fn snapshot(&self) -> ClientSnapshot {
        ClientSnapshot {
            wm: self.wm,
            digest: self.digest,
            hrt_seqs: self.hrt_seqs.clone(),
            gaps: self.gaps.clone(),
            sheds: self.sheds,
            decode_errors: self.decode_errors,
            link: self.link.stats(),
        }
    }
}

/// The determinism-comparable view of one client after a run.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ClientSnapshot {
    wm: ClassWatermarks,
    digest: SinkDigest,
    hrt_seqs: BTreeMap<u64, Vec<u32>>,
    gaps: Vec<(u64, u32)>,
    sheds: u64,
    decode_errors: u64,
    link: LinkStats,
}

/// A [`ClientSink`] shell over the shared state: consults the link
/// fault machine per offered frame. `Lose` accepts the frame (the
/// gateway's write succeeded, so it enters the replay accounting) but
/// records nothing client-side; `Severed` reports the sink gone so the
/// gateway parks the session.
pub(crate) struct ChaosClientSink {
    pub(crate) state: Arc<Mutex<ClientState>>,
}

impl ClientSink for ChaosClientSink {
    fn offer(&mut self, bytes: &[u8]) -> SinkStatus {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.link.on_frame() {
            LinkFault::Severed => SinkStatus::Gone,
            LinkFault::Lose => SinkStatus::Accepted,
            // In-process: a delay perturbs nothing deterministic, so it
            // is only counted (LinkStats) — delivery happens now.
            LinkFault::Deliver | LinkFault::DeliverDelayed(_) => {
                s.record(bytes);
                SinkStatus::Accepted
            }
        }
    }

    fn digest(&self) -> Option<SinkDigest> {
        Some(self.state.lock().unwrap_or_else(|e| e.into_inner()).digest)
    }
}

/// One client's handle kept by the resume driver.
#[derive(Clone)]
pub(crate) struct ChaosClient {
    pub(crate) token: u64,
    pub(crate) state: Arc<Mutex<ClientState>>,
}

/// A scheduled resume: at bus time `at`, reconnect client `client`.
#[derive(Clone)]
pub(crate) struct ResumeAction {
    pub(crate) at: Duration,
    pub(crate) client: usize,
}

/// The outcome log entry of one attempted resume: client index and
/// `Ok` or the refusal verdict code.
pub(crate) type ResumeOutcome = (usize, Result<(), u8>);

/// A cluster node that replays the resume schedule on bus-time timers.
/// Because node turns are serialized by the broker, each
/// `resume_session` call lands at a deterministic position in the
/// shard FIFO — the whole point of driving resumes from a node instead
/// of a free-running thread. The client watermarks resolve *on the
/// designated worker* ([`WmSource::Deferred`]), at the resume's queue
/// position, where the link is also flipped back to connected.
pub(crate) struct ResumeDriver {
    pub(crate) gw: Gateway,
    pub(crate) schedule: Vec<ResumeAction>,
    pub(crate) clients: Vec<ChaosClient>,
    pub(crate) outcomes: Arc<Mutex<Vec<ResumeOutcome>>>,
}

impl Behavior for ResumeDriver {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (i, a) in self.schedule.iter().enumerate() {
            ctx.set_timer(ctx.now() + a.at, i as u64).unwrap();
        }
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, p: u64) {
        let a = &self.schedule[p as usize];
        let c = &self.clients[a.client];
        let st = Arc::clone(&c.state);
        let wm = WmSource::Deferred(Box::new(move || {
            let mut s = st.lock().unwrap_or_else(|e| e.into_inner());
            s.link.reconnected();
            s.wm
        }));
        let sink = Box::new(ChaosClientSink {
            state: Arc::clone(&c.state),
        });
        let res = self
            .gw
            .resume_session(c.token, wm, sink)
            .map(|_| ())
            .map_err(|v| v.code());
        self.outcomes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((a.client, res));
    }
}

/// Per-client fault/resume profile inside each shard group.
struct Profile {
    severs: Vec<u64>,
    lose_tail: u64,
    resumes: Vec<Duration>,
}

/// The four client roles replicated per shard: a single-sever client,
/// a double-sever client, an undisturbed control, and a "gap" client
/// whose lost in-flight tail exceeds the replay ring.
fn profiles() -> Vec<Profile> {
    vec![
        Profile {
            severs: vec![15],
            lose_tail: 3,
            resumes: vec![Duration::from_ms(50)],
        },
        Profile {
            severs: vec![12, 40],
            lose_tail: 2,
            resumes: vec![Duration::from_ms(40), Duration::from_ms(80)],
        },
        Profile {
            severs: vec![],
            lose_tail: 0,
            resumes: vec![],
        },
        Profile {
            severs: vec![25],
            lose_tail: 12,
            resumes: vec![Duration::from_ms(60)],
        },
    ]
}

/// Every subject the workload publishes, with its channel spec.
fn subjects() -> Vec<(Subject, ChannelSpec)> {
    let mut out = vec![(HRT_SUBJECT, ChannelSpec::Hrt(HrtSpec::periodic_10ms()))];
    for i in 0..SRT_COUNT {
        out.push((
            Subject(SRT_BASE + i as u64),
            ChannelSpec::Srt(SrtSpec::default()),
        ));
    }
    out.push((NRT_SUBJECT, ChannelSpec::Nrt(NrtSpec::bulk())));
    out
}

/// Everything one run produces that the gates inspect. Wall-clock
/// fields (`latencies_ns`, `resume_wall_ns`) are deliberately excluded
/// from the determinism comparison.
struct RunArtifacts {
    live: LiveReport,
    chaos: ChaosReport,
    gw: GatewayReport,
    clients: Vec<ClientSnapshot>,
    outcomes: Vec<ResumeOutcome>,
    trace: Vec<TraceEvent>,
    trace_dropped: u64,
}

fn run_once(seed: u64, run: Duration) -> Result<RunArtifacts, String> {
    let sink = SharedTraceSink::enabled_with_capacity(TRACE_CAPACITY);
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        restart_backoff: Duration::from_ms(1),
        nrt_queue_cap: 256,
        trace: true,
        trace_capacity: Some(TRACE_CAPACITY),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    cluster.use_sink(sink.clone());
    let topo = subjects();
    let hrt_node = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    cluster.publish(hrt_node, HRT_SUBJECT, topo[0].1);
    for i in 0..SRT_COUNT {
        let (subject, spec) = topo[1 + i];
        let node = cluster.add_node(Box::new(SrtSource {
            subject,
            every: Duration::from_ms(2),
            phase: Duration::from_us(300 * (i as u64 + 1)),
            counter: 0,
        }));
        cluster.publish(node, subject, spec);
    }
    let nrt_node = cluster.add_node(Box::new(NrtPulse {
        every: Duration::from_ms(2),
        phase: Duration::from_us(900),
        counter: 0,
    }));
    cluster.publish(nrt_node, NRT_SUBJECT, topo[1 + SRT_COUNT].1);

    let gateway = Gateway::new(GatewayConfig {
        workers: WORKERS,
        client_queue_cap: QUEUE_CAP,
        resume_ring_cap: RING_CAP,
        sink: sink.clone(),
        ..GatewayConfig::default()
    });
    for (subject, spec) in &topo {
        gateway.bind(*subject, spec);
    }

    // Shard-confined chaos clients: each subscribes to every subject of
    // exactly one shard, so its delivery stream is one worker's FIFO.
    let mut groups: BTreeMap<usize, Vec<Subject>> = BTreeMap::new();
    for (subject, _) in &topo {
        groups
            .entry(subject.shard_of(WORKERS))
            .or_default()
            .push(*subject);
    }
    let mut clients: Vec<ChaosClient> = Vec::new();
    let mut schedule: Vec<ResumeAction> = Vec::new();
    for (gi, group) in groups.values().enumerate() {
        for (ci, profile) in profiles().into_iter().enumerate() {
            let idx = clients.len();
            let link = LinkChaos::new(LinkPlan {
                seed: seed ^ (((gi as u64) << 8) | ci as u64),
                severs: profile.severs,
                lose_tail: profile.lose_tail,
                delay_rate: 0.2,
                max_delay: std::time::Duration::from_micros(100),
            });
            let state = Arc::new(Mutex::new(ClientState::new(link)));
            let id = gateway.reserve_client();
            let token = gateway.open_session(id, group, None);
            gateway.attach_session(
                id,
                Box::new(ChaosClientSink {
                    state: Arc::clone(&state),
                }),
            );
            // Stagger the groups so no two resumes share a bus instant.
            for &at in &profile.resumes {
                schedule.push(ResumeAction {
                    at: at + Duration::from_us(137 * (gi as u64 + 1)),
                    client: idx,
                });
            }
            clients.push(ChaosClient { token, state });
        }
    }

    let gw_node = {
        let g = gateway.clone();
        cluster.add_node_with(Box::new(move || g.behavior()))
    };
    for (subject, spec) in &topo {
        cluster.subscribe(gw_node, *subject, *spec);
    }
    let outcomes: Arc<Mutex<Vec<ResumeOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    cluster.add_node(Box::new(ResumeDriver {
        gw: gateway.clone(),
        schedule,
        clients: clients.clone(),
        outcomes: Arc::clone(&outcomes),
    }));

    let plan = ChaosPlan {
        seed,
        kills: vec![(gw_node, GW_KILL_BUDGET)],
        dup_rate: 0.02,
        ..ChaosPlan::default()
    };
    let (live, chaos_rep) = cluster
        .run_for_chaos(run, plan)
        .map_err(|e| format!("gateway chaos run failed: {e}"))?;
    let gw = gateway.finish();
    let snapshots: Vec<ClientSnapshot> = clients
        .iter()
        .map(|c| c.state.lock().unwrap_or_else(|e| e.into_inner()).snapshot())
        .collect();
    let outcomes = outcomes.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let trace_dropped = sink.dropped();
    let mut trace = sink.events();
    trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
    Ok(RunArtifacts {
        live,
        chaos: chaos_rep,
        gw,
        clients: snapshots,
        outcomes,
        trace,
        trace_dropped,
    })
}

/// The robustness acceptance criteria of one run.
fn check(art: &RunArtifacts) -> Result<(), String> {
    if art.chaos.kills != 1 {
        return Err(format!(
            "expected the gateway node to be killed once, saw {}",
            art.chaos.kills
        ));
    }
    let verdict = chaos::verdict(&art.live);
    if verdict.restarts < 1 {
        return Err(format!(
            "the killed gateway node must rejoin: {:?}",
            art.live.supervision.events
        ));
    }
    if !verdict.ok() {
        return Err(format!(
            "liveness/at-most-once verdict failed: {verdict:?}\n{:?}",
            art.live.supervision.events
        ));
    }
    // Resume liveness: every scheduled reconnect must have succeeded.
    let scheduled = art.outcomes.len();
    if scheduled == 0 {
        return Err("no resume was ever attempted".into());
    }
    for (client, res) in &art.outcomes {
        if let Err(code) = res {
            return Err(format!(
                "client #{client} was refused resume (verdict code {code})"
            ));
        }
    }
    let s = &art.gw.sessions;
    if s.aborted != 0 {
        return Err(format!("{} resume(s) aborted mid-replay", s.aborted));
    }
    if s.resumed + s.gapped != scheduled as u64 {
        return Err(format!(
            "{} resumes scheduled but {} resumed + {} gapped completed",
            scheduled, s.resumed, s.gapped
        ));
    }
    if s.detached == 0 {
        return Err("no link sever ever parked a session".into());
    }
    if s.replayed_hrt + s.replayed_srt + s.replayed_nrt == 0 {
        return Err("no frame was ever replayed — the repair path never engaged".into());
    }
    if s.gap_frames == 0 {
        return Err(
            "the gap client's lost tail never overran the replay ring — no Gap was minted".into(),
        );
    }
    // HRT exactly-once across reconnects: every client's per-subject
    // sequence stream must be 0..n in order — no duplicate, no hole.
    let mut hrt_clients = 0usize;
    for (i, c) in art.clients.iter().enumerate() {
        if c.decode_errors != 0 {
            return Err(format!("client #{i} hit {} decode errors", c.decode_errors));
        }
        for (uid, seqs) in &c.hrt_seqs {
            hrt_clients += 1;
            let want: Vec<u32> = (0..seqs.len() as u32).collect();
            if *seqs != want {
                return Err(format!(
                    "client #{i} subject {uid:#x}: HRT stream not exactly-once: {seqs:?}"
                ));
            }
        }
        if c.gaps.iter().any(|&(class, _)| class == 0) {
            return Err(format!("client #{i} received a Gap notice for HRT"));
        }
    }
    if hrt_clients == 0 {
        return Err("no client ever received an HRT event".into());
    }
    if art.gw.stats.peak_lane_occupancy > QUEUE_CAP {
        return Err(format!(
            "lane occupancy {} exceeded the {QUEUE_CAP}-entry bound",
            art.gw.stats.peak_lane_occupancy
        ));
    }
    // The merged trace: complete, resume records present, T1..T9 clean.
    if art.trace_dropped > 0 {
        return Err(format!("trace ring dropped {} event(s)", art.trace_dropped));
    }
    if !art.trace.iter().any(|e| e.kind == "gw_resume") {
        return Err("gateway resume records missing from the merged trace".into());
    }
    let ctx = AuditContext::from_parts(
        (*art.live.calendar).clone(),
        art.live.calendar_start,
        art.live.channels.clone(),
        art.live.hrt_periods.clone(),
    );
    let audit_rep = audit(&ctx, &art.trace);
    if !audit_rep.passes() {
        return Err(format!(
            "T1..T9 audit failed on the merged trace:\n{:#?}",
            audit_rep.errors().collect::<Vec<_>>()
        ));
    }
    Ok(())
}

/// The byte-identity gate: everything deterministic must match between
/// two same-seed runs.
fn same(a: &RunArtifacts, b: &RunArtifacts) -> Result<(), String> {
    if a.live.log != b.live.log {
        return Err("cluster delivery logs diverged".into());
    }
    if a.live.supervision.events != b.live.supervision.events {
        return Err("supervision timelines diverged".into());
    }
    if a.gw.stats != b.gw.stats || a.gw.shards != b.gw.shards || a.gw.lanes != b.gw.lanes {
        return Err("gateway lane digests diverged".into());
    }
    if a.gw.sessions != b.gw.sessions {
        return Err("session counters diverged".into());
    }
    if a.clients != b.clients {
        return Err("client delivery records diverged".into());
    }
    if a.outcomes != b.outcomes {
        return Err("resume outcomes diverged".into());
    }
    Ok(())
}

/// TTL-0 sub-scenario: with `session_ttl_ns = 0`, a severed session
/// must be *refused* on reconnect (verdict `Expired`), deterministically
/// — a half-resume against an expired session would be silent loss.
fn ttl_zero_refusal(seed: u64) -> Result<(), String> {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let subject = Subject(SRT_BASE);
    let spec = ChannelSpec::Srt(SrtSpec::default());
    let src = cluster.add_node(Box::new(SrtSource {
        subject,
        every: Duration::from_ms(2),
        phase: Duration::from_us(300),
        counter: 0,
    }));
    cluster.publish(src, subject, spec);
    let gateway = Gateway::new(GatewayConfig {
        workers: 1,
        session_ttl_ns: 0,
        resume_ring_cap: RING_CAP,
        ..GatewayConfig::default()
    });
    gateway.bind(subject, &spec);
    let link = LinkChaos::new(LinkPlan {
        seed,
        severs: vec![5],
        lose_tail: 1,
        delay_rate: 0.0,
        ..LinkPlan::default()
    });
    let state = Arc::new(Mutex::new(ClientState::new(link)));
    let id = gateway.reserve_client();
    let token = gateway.open_session(id, &[subject], None);
    gateway.attach_session(
        id,
        Box::new(ChaosClientSink {
            state: Arc::clone(&state),
        }),
    );
    let gw_node = cluster.add_node(gateway.behavior());
    cluster.subscribe(gw_node, subject, spec);
    let outcomes: Arc<Mutex<Vec<ResumeOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    cluster.add_node(Box::new(ResumeDriver {
        gw: gateway.clone(),
        schedule: vec![ResumeAction {
            at: Duration::from_ms(40),
            client: 0,
        }],
        clients: vec![ChaosClient {
            token,
            state: Arc::clone(&state),
        }],
        outcomes: Arc::clone(&outcomes),
    }));
    cluster
        .run_for(Duration::from_ms(60))
        .map_err(|e| format!("ttl-0 run failed: {e}"))?;
    let gw = gateway.finish();
    let outcomes = outcomes.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let expired = rtec_gateway::ResumeVerdict::Expired.code();
    if outcomes != vec![(0usize, Err(expired))] {
        return Err(format!(
            "ttl-0 resume must be refused with Expired, saw {outcomes:?}"
        ));
    }
    if gw.sessions.refused != 1 {
        return Err(format!(
            "ttl-0 refusal must be counted once, saw {}",
            gw.sessions.refused
        ));
    }
    Ok(())
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// The machine-readable counterpart of the stdout report.
fn summary(seed: u64, run: Duration, art: &RunArtifacts) -> Value {
    let s = &art.gw.sessions;
    let mut resume_walls = art.gw.resume_wall_ns.clone();
    resume_walls.sort_unstable();
    let hrt_delivered: u64 = art
        .clients
        .iter()
        .flat_map(|c| c.hrt_seqs.values())
        .map(|v| v.len() as u64)
        .sum();
    Value::Obj(
        vec![
            ("schema", Value::str("rtec-bench-gateway-chaos-v1")),
            ("seed", Value::num(seed as f64)),
            ("bus_ms", Value::num(run.as_ns() as f64 / 1e6)),
            ("gateway_kills", Value::num(art.chaos.kills as f64)),
            ("clients", Value::num(art.clients.len() as f64)),
            ("resumes", Value::num(art.outcomes.len() as f64)),
            ("resumed", Value::num(s.resumed as f64)),
            ("gapped", Value::num(s.gapped as f64)),
            ("detached", Value::num(s.detached as f64)),
            ("replayed_hrt", Value::num(s.replayed_hrt as f64)),
            ("replayed_srt", Value::num(s.replayed_srt as f64)),
            ("replayed_nrt", Value::num(s.replayed_nrt as f64)),
            ("gap_frames", Value::num(s.gap_frames as f64)),
            ("srt_stale_skipped", Value::num(s.srt_stale_skipped as f64)),
            ("replay_bytes", Value::num(s.replay_bytes as f64)),
            ("hrt_delivered", Value::num(hrt_delivered as f64)),
            (
                "resume_p99_us",
                Value::num(percentile_us(&resume_walls, 0.99)),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

/// Merge the summary into the engine report, preserving every other
/// committed section.
fn merge_summary(section: Value) -> Result<(), String> {
    let mut root = std::fs::read_to_string(ENGINE_REPORT)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::Obj(Vec::new()));
    if let Value::Obj(fields) = &mut root {
        fields.retain(|(k, _)| k != "gateway_chaos");
        fields.push(("gateway_chaos".to_string(), section));
    }
    std::fs::write(ENGINE_REPORT, root.to_pretty())
        .map_err(|e| format!("cannot write {ENGINE_REPORT}: {e}"))
}

/// Run the gateway chaos smoke. Virtually paced, so `quick` changes
/// only whether the summary is merged into the committed report.
pub fn run(seed: u64, quick: bool) -> i32 {
    let run = Duration::from_ms(120);
    eprintln!(
        "== gateway chaos (gateway kill @ {GW_KILL_BUDGET} receives, seeded link severs, \
         seed {seed}, {} ms bus time) ==",
        run.as_ns() / 1_000_000
    );
    let a = match run_once(seed, run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos gateway: {e}");
            return 1;
        }
    };
    if let Err(e) = check(&a) {
        eprintln!("chaos gateway: {e}");
        return 1;
    }
    let s = &a.gw.sessions;
    eprintln!(
        "  run A: {} clients, {} resumes ({} resumed / {} gapped), replay {}h/{}s/{}n frames, \
         {} gap frame(s), {} stale skip(s), gateway killed+rejoined",
        a.clients.len(),
        a.outcomes.len(),
        s.resumed,
        s.gapped,
        s.replayed_hrt,
        s.replayed_srt,
        s.replayed_nrt,
        s.gap_frames,
        s.srt_stale_skipped,
    );
    let b = match run_once(seed, run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos gateway: rerun: {e}");
            return 1;
        }
    };
    if let Err(e) = same(&a, &b) {
        eprintln!("chaos gateway: same-seed runs: {e}");
        return 1;
    }
    if let Err(e) = ttl_zero_refusal(seed) {
        eprintln!("chaos gateway: {e}");
        return 1;
    }
    eprintln!("  ttl-0 sub-scenario: resume deterministically refused (Expired)");
    let section = summary(seed, run, &a);
    if quick {
        if let Err(e) = json::parse(&section.to_pretty()) {
            eprintln!("chaos gateway: summary does not round-trip the JSON parser: {e}");
            return 1;
        }
    } else if let Err(e) = merge_summary(section) {
        eprintln!("chaos gateway: {e}");
        return 1;
    } else {
        eprintln!("merged gateway_chaos section into {ENGINE_REPORT}");
    }
    eprintln!("chaos gateway: ok (second same-seed run byte-identical)");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One run satisfies every gate and the summary round-trips.
    #[test]
    fn gateway_chaos_run_passes_all_gates() {
        let run = Duration::from_ms(120);
        let art = run_once(42, run).expect("gateway chaos run");
        check(&art).expect("gateway chaos invariants");
        let section = summary(42, run, &art);
        let back = json::parse(&section.to_pretty()).expect("summary parses");
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("rtec-bench-gateway-chaos-v1")
        );
        assert!(back.get("resumes").and_then(Value::as_f64).unwrap_or(0.0) >= 1.0);
    }

    /// The TTL-0 refusal is deterministic.
    #[test]
    fn ttl_zero_resume_is_refused() {
        ttl_zero_refusal(7).expect("ttl-0 scenario");
    }
}
