//! Plain-text table rendering for experiment output.

use std::fmt;

/// A titled table of string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + what it shows).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "\n## {}\n", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                let pad = w[i] - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        render(f, &self.columns)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Format a float with sensible precision.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format nanoseconds as microseconds.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100000".into(), "x".into()]);
        t.note("a note");
        let s = format!("{t}");
        assert!(s.contains("## demo"));
        assert!(s.contains("| a      | long-header |"));
        assert!(s.contains("| 100000 | x           |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.12345), "0.1235");
        assert_eq!(f(3.456), "3.46");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(us(154_000), "154.0");
    }
}
