//! Live-runtime benchmark (`experiments bench live`).
//!
//! Measures the multi-threaded live runtime over the loopback
//! transport at cluster sizes 2, 8 and 32: one subscriber node plus
//! `n − 1` SRT publishers offering a constant aggregate load (one
//! message per 500 µs of bus time across the cluster, ≈ 26 % of a
//! 1 Mbit/s wire), so the numbers compare broker/IPC overhead across
//! thread counts rather than different bus schedules.
//!
//! Each publisher stamps the current bus time into its payload; the
//! subscriber-side delivery log then yields end-to-end latency
//! (publish → delivery, in bus time) without any side channel. Reported
//! per cluster size:
//!
//! * `deliveries_per_wall_sec` — how fast the runtime grinds through
//!   bus traffic in real time (virtual pacing, so this is pure runtime
//!   cost: thread wake-ups, lock-step drains, channel hops),
//! * `p50_us` / `p99_us` — end-to-end latency percentiles in bus-time
//!   microseconds (these are protocol numbers: queueing + arbitration
//!   + wire time, identical run to run under the virtual clock).
//!
//! Results merge into `BENCH_engine.json` under the `"live"` key; the
//! committed wheel/heap microbenchmark numbers are preserved.

use crate::json::{self, Value};
use crate::perf::{BenchConfig, ENGINE_REPORT};
use rtec_core::channel::{ChannelSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_live::chaos;
use rtec_live::cluster::{Cluster, ClusterConfig};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::{ChaosPlan, Pace};
use rtec_sim::Duration;
use std::time::Instant;

/// Cluster sizes measured (total nodes including the subscriber).
const SIZES: [usize; 3] = [2, 8, 32];

/// Aggregate publish interval: one message somewhere in the cluster
/// per this much bus time.
const AGGREGATE_EVERY: Duration = Duration::from_us(500);

struct StampedSource {
    subject: Subject,
    every: Duration,
    phase: Duration,
}

impl Behavior for StampedSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        let stamp = ctx.now().as_ns().to_le_bytes().to_vec();
        let _ = ctx.publish(Event::new(self.subject, stamp));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

struct Sink;
impl Behavior for Sink {}

/// Ring capacity for the trace sink during bench runs. Generous: the
/// heaviest full-mode cluster produces a few thousand trace events, so
/// a drop here means the ring was mis-sized or the runtime regressed
/// into an event storm — either way the smoke gate should trip.
const TRACE_CAPACITY: usize = 1 << 16;

struct LiveRow {
    nodes: usize,
    deliveries: usize,
    wall_s: f64,
    p50_us: f64,
    p99_us: f64,
    trace_dropped: u64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// Build the constant-load topology: one subscriber, `nodes − 1`
/// stamped SRT publishers. `restartable` mints behaviors from
/// factories so the fault-load row's chaos kills can be supervised.
fn build_cluster(nodes: usize, restartable: bool) -> Cluster {
    // Trace with the production sink enabled so the benchmark measures
    // the runtime as deployed — and so the ring's eviction counter can
    // prove no events were lost during the measured run.
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        trace: true,
        trace_capacity: Some(TRACE_CAPACITY),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let sink = if restartable {
        cluster.add_node_with(Box::new(|| Box::new(Sink)))
    } else {
        cluster.add_node(Box::new(Sink))
    };
    let publishers = nodes - 1;
    let every = AGGREGATE_EVERY * publishers as u64;
    for i in 0..publishers {
        let subject = Subject(0x9000 + i as u64);
        let phase = AGGREGATE_EVERY * (i as u64 + 1);
        let node = if restartable {
            cluster.add_node_with(Box::new(move || {
                Box::new(StampedSource {
                    subject,
                    every,
                    phase,
                })
            }))
        } else {
            cluster.add_node(Box::new(StampedSource {
                subject,
                every,
                phase,
            }))
        };
        let spec = ChannelSpec::Srt(SrtSpec::default());
        cluster.publish(node, subject, spec);
        cluster.subscribe(sink, subject, spec);
    }
    cluster
}

fn bench_cluster(nodes: usize, bus_time: Duration) -> LiveRow {
    let cluster = build_cluster(nodes, false);
    let wall = Instant::now();
    let report = cluster.run_for(bus_time).expect("live bench run failed");
    let wall_s = wall.elapsed().as_secs_f64();
    let mut latencies: Vec<u64> = report
        .log
        .iter()
        .filter(|r| r.bytes.len() == 8)
        .map(|r| {
            let stamp = u64::from_le_bytes(r.bytes[..8].try_into().expect("8-byte stamp"));
            r.delivered_ns.saturating_sub(stamp)
        })
        .collect();
    latencies.sort_unstable();
    LiveRow {
        nodes,
        deliveries: latencies.len(),
        wall_s,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        trace_dropped: report.trace_dropped,
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// The fault-load measurement: the 8-node cluster under a seeded chaos
/// plan (two node kills with supervised restart, 5 % datagram drop).
struct FaultRow {
    nodes: usize,
    deliveries: usize,
    wall_s: f64,
    downs: u64,
    restarts: u64,
    /// p99 of the Down → rejoined recovery latency, in bus-time µs.
    recovery_p99_us: f64,
    trace_dropped: u64,
}

/// Nodes measured under fault load (the acceptance scenario: kill and
/// restart 2 of 8 nodes while 5 % of datagrams drop).
const FAULT_NODES: usize = 8;

fn bench_fault_load(bus_time: Duration) -> Result<FaultRow, String> {
    let cluster = build_cluster(FAULT_NODES, true);
    let plan = ChaosPlan {
        seed: 0xFA_17,
        // The subscriber dies mid-stream, one publisher shortly after
        // (recv budgets ≈ 30 ms of bus time at the offered load).
        kills: vec![(0, 60), (4, 20)],
        drop_rate: 0.05,
        ..ChaosPlan::default()
    };
    let wall = Instant::now();
    let (report, chaos_rep) = cluster
        .run_for_chaos(bus_time, plan)
        .map_err(|e| format!("fault-load run failed: {e}"))?;
    let wall_s = wall.elapsed().as_secs_f64();
    if chaos_rep.kills != 2 {
        return Err(format!("expected 2 kills, saw {}", chaos_rep.kills));
    }
    let verdict = chaos::verdict(&report);
    if !verdict.ok() || verdict.restarts < 2 {
        return Err(format!("fault-load run did not recover: {verdict:?}"));
    }
    let mut recoveries = report.supervision.recovery_times_ns();
    recoveries.sort_unstable();
    Ok(FaultRow {
        nodes: FAULT_NODES,
        deliveries: report.log.len(),
        wall_s,
        downs: report.supervision.downs,
        restarts: report.supervision.restarts,
        recovery_p99_us: percentile(&recoveries, 0.99),
        trace_dropped: report.trace_dropped,
    })
}

fn fault_report(row: &FaultRow) -> Value {
    Value::Obj(
        vec![
            ("nodes", Value::num(row.nodes as f64)),
            ("kills", Value::num(2.0)),
            ("drop_rate", Value::num(0.05)),
            ("deliveries", Value::num(row.deliveries as f64)),
            ("wall_ms", Value::num(round3(row.wall_s * 1e3))),
            (
                "deliveries_per_wall_sec",
                Value::num((row.deliveries as f64 / row.wall_s.max(1e-9)).round()),
            ),
            ("downs", Value::num(row.downs as f64)),
            ("restarts", Value::num(row.restarts as f64)),
            ("recovery_p99_us", Value::num(round3(row.recovery_p99_us))),
            ("trace_dropped", Value::num(row.trace_dropped as f64)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

fn live_report(cfg: &BenchConfig, bus_time: Duration, rows: &[LiveRow], fault: &FaultRow) -> Value {
    let entries: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(
                vec![
                    ("nodes", Value::num(r.nodes as f64)),
                    ("deliveries", Value::num(r.deliveries as f64)),
                    ("wall_ms", Value::num(round3(r.wall_s * 1e3))),
                    (
                        "deliveries_per_wall_sec",
                        Value::num((r.deliveries as f64 / r.wall_s.max(1e-9)).round()),
                    ),
                    ("p50_us", Value::num(round3(r.p50_us))),
                    ("p99_us", Value::num(round3(r.p99_us))),
                    ("trace_dropped", Value::num(r.trace_dropped as f64)),
                ]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            )
        })
        .collect();
    Value::Obj(
        vec![
            ("schema", Value::str("rtec-bench-live-v1")),
            ("mode", Value::str(if cfg.quick { "quick" } else { "full" })),
            ("transport", Value::str("loopback")),
            ("bus_ms", Value::num(bus_time.as_ns() as f64 / 1e6)),
            ("clusters", Value::Arr(entries)),
            ("fault_load", fault_report(fault)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

/// Run the live benchmark and merge its section into the engine report.
/// Returns a process exit code.
pub fn run(cfg: &BenchConfig) -> i32 {
    let bus_time = if cfg.quick {
        Duration::from_ms(50)
    } else {
        Duration::from_ms(400)
    };
    eprintln!(
        "== live runtime (loopback, {} of bus time per cluster) ==",
        if cfg.quick { "50 ms" } else { "400 ms" }
    );
    let rows: Vec<LiveRow> = SIZES
        .iter()
        .map(|&n| {
            let row = bench_cluster(n, bus_time);
            eprintln!(
                "  {:2} nodes: {:5} deliveries in {:7.2} ms wall  p50 {:7.1} µs  p99 {:7.1} µs  dropped {}",
                row.nodes,
                row.deliveries,
                row.wall_s * 1e3,
                row.p50_us,
                row.p99_us,
                row.trace_dropped
            );
            row
        })
        .collect();
    // Smoke gate: a benchmark run that evicted trace events measured a
    // runtime whose audit trail is incomplete — refuse to report it.
    if let Some(bad) = rows.iter().find(|r| r.trace_dropped > 0) {
        eprintln!(
            "bench live: trace ring dropped {} event(s) at {} nodes — raise TRACE_CAPACITY or investigate the event storm",
            bad.trace_dropped, bad.nodes
        );
        return 1;
    }
    // Fault-load row: same topology at 8 nodes, but two nodes are
    // killed and restarted mid-run while 5 % of datagrams drop. The
    // healthy rows above are untouched by this — supervision costs
    // nothing until a fault actually fires.
    let fault = match bench_fault_load(bus_time) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("bench live: {e}");
            return 1;
        }
    };
    eprintln!(
        "  fault load ({} nodes, 2 kills, 5% drop): {:5} deliveries in {:7.2} ms wall  \
         {} downs / {} restarts  recovery p99 {:7.1} µs",
        fault.nodes,
        fault.deliveries,
        fault.wall_s * 1e3,
        fault.downs,
        fault.restarts,
        fault.recovery_p99_us
    );
    if fault.trace_dropped > 0 {
        eprintln!(
            "bench live: fault-load trace ring dropped {} event(s)",
            fault.trace_dropped
        );
        return 1;
    }
    let section = live_report(cfg, bus_time, &rows, &fault);

    // Merge under "live", preserving every committed wheel/heap number.
    let mut root = std::fs::read_to_string(ENGINE_REPORT)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::Obj(Vec::new()));
    if let Value::Obj(fields) = &mut root {
        fields.retain(|(k, _)| k != "live");
        fields.push(("live".to_string(), section));
    }
    match std::fs::write(ENGINE_REPORT, root.to_pretty()) {
        Ok(()) => {
            eprintln!("merged live section into {ENGINE_REPORT}");
            0
        }
        Err(e) => {
            eprintln!("bench live: cannot write {ENGINE_REPORT}: {e}");
            1
        }
    }
}
