//! Deterministic chaos smoke (`experiments chaos`).
//!
//! Drives the live runtime's fault-tolerance machinery end to end: an
//! 8-node loopback cluster (one HRT source, six SRT publishers, one
//! subscriber — all restartable) runs under a seeded [`ChaosPlan`]
//! that kills two of the nodes mid-run and drops 5 % of broker → node
//! datagrams. The smoke then checks the robustness acceptance
//! criteria, not just survival:
//!
//! * every killed node is restarted and completes its rejoin handshake
//!   (no unresolved `Down` at the end of the run);
//! * no event is delivered twice across a rejoin (at-most-once resync);
//! * the merged trace still satisfies the `T1`..`T8` auditor;
//! * no handshake replay went unclassified;
//! * a second run under the same seed produces a byte-identical
//!   delivery log and supervision timeline.
//!
//! Exit code 0 when all hold, 1 otherwise — `ci.sh` gates on it.
//!
//! Besides the stdout report, a full run merges a machine-readable
//! summary (rejoins, sheds, recovery percentiles) into
//! `BENCH_engine.json` under the `"chaos"` key, schema
//! `rtec-bench-chaos-v1`; quick/CI runs only validate that the section
//! round-trips the JSON parser, without rewriting the committed file.

use crate::json::{self, Value};
use crate::perf::ENGINE_REPORT;
use rtec_conformance::audit::{audit, handshake_anomalies, AuditContext};
use rtec_core::channel::{ChannelSpec, HrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_live::chaos;
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::{ChaosPlan, ChaosReport, Pace};
use rtec_sim::Duration;

const NODES: usize = 8;
const HRT_SUBJECT: Subject = Subject(0xC001);

struct HrtSource {
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(HRT_SUBJECT).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

struct SrtSource {
    subject: Subject,
    every: Duration,
    phase: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(self.subject, vec![0xC5, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

struct Sink;
impl Behavior for Sink {}

/// The 8-node smoke topology, every behavior minted from a factory so
/// the supervisor can restart any node.
fn cluster() -> Cluster {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        restart_backoff: Duration::from_ms(1),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let hrt_node = cluster.add_node_with(Box::new(|| {
        Box::new(HrtSource {
            counter: 0,
            period: Duration::from_ms(10),
        })
    }));
    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    cluster.publish(hrt_node, HRT_SUBJECT, hrt);
    let sink = {
        // Defined last so node ids 1..=6 are the SRT publishers.
        let srt = ChannelSpec::Srt(SrtSpec::default());
        let mut subjects = Vec::new();
        for i in 0..NODES - 2 {
            let subject = Subject(0xC100 + i as u64);
            let every = Duration::from_ms(3);
            let phase = Duration::from_us(400 * (i as u64 + 1));
            let node = cluster.add_node_with(Box::new(move || {
                Box::new(SrtSource {
                    subject,
                    every,
                    phase,
                    counter: 0,
                })
            }));
            cluster.publish(node, subject, srt);
            subjects.push(subject);
        }
        let sink = cluster.add_node_with(Box::new(|| Box::new(Sink)));
        cluster.subscribe(sink, HRT_SUBJECT, hrt);
        for s in subjects {
            cluster.subscribe(sink, s, srt);
        }
        sink
    };
    debug_assert_eq!((hrt_node, sink), (0, (NODES - 1) as u8));
    cluster
}

/// Kill the subscriber and one SRT publisher, drop 5 % of datagrams,
/// duplicate 2 % (the node-side watermark must discard them).
fn plan(seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        kills: vec![((NODES - 1) as u8, 60), (3, 20)],
        drop_rate: 0.05,
        dup_rate: 0.02,
        ..ChaosPlan::default()
    }
}

fn one_run(seed: u64, run: Duration) -> Result<(LiveReport, ChaosReport), String> {
    cluster()
        .run_for_chaos(run, plan(seed))
        .map_err(|e| format!("chaos run failed: {e}"))
}

fn check(report: &LiveReport, chaos_rep: &ChaosReport) -> Result<(), String> {
    if chaos_rep.kills != 2 {
        return Err(format!("expected 2 kills, saw {}", chaos_rep.kills));
    }
    let verdict = chaos::verdict(report);
    if verdict.restarts < 2 {
        return Err(format!(
            "both killed nodes must rejoin: {:?}",
            report.supervision.events
        ));
    }
    if !verdict.ok() {
        return Err(format!(
            "liveness/at-most-once verdict failed: {verdict:?}\n{:?}",
            report.supervision.events
        ));
    }
    let ctx = AuditContext::from_parts(
        (*report.calendar).clone(),
        report.calendar_start,
        report.channels.clone(),
        report.hrt_periods.clone(),
    );
    let audit_rep = audit(&ctx, &report.trace);
    if !audit_rep.passes() {
        return Err(format!(
            "T1..T8 audit failed on the merged trace:\n{:#?}",
            audit_rep.errors().collect::<Vec<_>>()
        ));
    }
    // Loopback relinks mint fresh endpoints, so a replayed handshake
    // here would mean the classifier itself misfired.
    let replays = handshake_anomalies(&report.trace);
    if replays != 0 {
        return Err(format!("{replays} unexplained handshake replay(s)"));
    }
    Ok(())
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// The machine-readable counterpart of the stdout report: everything a
/// dashboard needs to track crash-recovery health across commits.
fn chaos_summary(seed: u64, run: Duration, report: &LiveReport, chaos_rep: &ChaosReport) -> Value {
    let mut recoveries = report.supervision.recovery_times_ns();
    recoveries.sort_unstable();
    let sheds = report.trace.iter().filter(|e| e.kind == "shed").count();
    Value::Obj(
        vec![
            ("schema", Value::str("rtec-bench-chaos-v1")),
            ("seed", Value::num(seed as f64)),
            ("bus_ms", Value::num(run.as_ns() as f64 / 1e6)),
            ("deliveries", Value::num(report.log.len() as f64)),
            ("kills", Value::num(chaos_rep.kills as f64)),
            ("dropped_datagrams", Value::num(chaos_rep.dropped as f64)),
            (
                "duplicated_datagrams",
                Value::num(chaos_rep.duplicated as f64),
            ),
            ("downs", Value::num(report.supervision.downs as f64)),
            ("rejoins", Value::num(report.supervision.restarts as f64)),
            ("offs", Value::num(report.supervision.offs as f64)),
            ("sheds", Value::num(sheds as f64)),
            (
                "recovery_p99_us",
                Value::num(percentile_us(&recoveries, 0.99)),
            ),
            (
                "recovery_max_us",
                Value::num(recoveries.last().map_or(0.0, |&ns| ns as f64 / 1e3)),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

/// Merge the summary into the engine report, preserving every other
/// committed section (same scheme as the `bench` sections).
fn merge_summary(section: Value) -> Result<(), String> {
    let mut root = std::fs::read_to_string(ENGINE_REPORT)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::Obj(Vec::new()));
    if let Value::Obj(fields) = &mut root {
        fields.retain(|(k, _)| k != "chaos");
        fields.push(("chaos".to_string(), section));
    }
    std::fs::write(ENGINE_REPORT, root.to_pretty())
        .map_err(|e| format!("cannot write {ENGINE_REPORT}: {e}"))
}

/// Run the chaos smoke. `quick` shrinks the bus-time horizon (the run
/// is virtually paced, so both modes finish in well under a second).
pub fn run(seed: u64, quick: bool) -> i32 {
    let run = if quick {
        Duration::from_ms(80)
    } else {
        Duration::from_ms(250)
    };
    eprintln!(
        "== chaos smoke ({NODES}-node loopback, 2 kills, 5% drop, seed {seed}, {} ms bus time) ==",
        run.as_ns() / 1_000_000
    );
    let (a, ar) = match one_run(seed, run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 1;
        }
    };
    if let Err(e) = check(&a, &ar) {
        eprintln!("chaos: {e}");
        return 1;
    }
    let recoveries = a.supervision.recovery_times_ns();
    let max_recovery_us = recoveries.iter().max().copied().unwrap_or(0) / 1_000;
    eprintln!(
        "  run A: {} deliveries, {} downs / {} restarts, worst recovery {} µs, \
         {} dropped / {} duplicated datagrams",
        a.log.len(),
        a.supervision.downs,
        a.supervision.restarts,
        max_recovery_us,
        ar.dropped,
        ar.duplicated
    );
    // Same seed ⇒ byte-identical run, crashes and all.
    let (b, _) = match one_run(seed, run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: rerun: {e}");
            return 1;
        }
    };
    if a.log != b.log {
        eprintln!("chaos: delivery logs diverged between same-seed runs");
        return 1;
    }
    if a.supervision.events != b.supervision.events {
        eprintln!("chaos: supervision timelines diverged between same-seed runs");
        return 1;
    }
    let section = chaos_summary(seed, run, &a, &ar);
    if quick {
        // CI validates the section without touching the committed file.
        if let Err(e) = json::parse(&section.to_pretty()) {
            eprintln!("chaos: summary does not round-trip the JSON parser: {e}");
            return 1;
        }
    } else if let Err(e) = merge_summary(section) {
        eprintln!("chaos: {e}");
        return 1;
    } else {
        eprintln!("merged chaos section into {ENGINE_REPORT}");
    }
    eprintln!("chaos: ok (second same-seed run byte-identical)");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The summary carries the headline counters and round-trips the
    /// JSON parser.
    #[test]
    fn chaos_summary_reports_rejoins_and_parses() {
        let run = Duration::from_ms(80);
        let (report, chaos_rep) = one_run(42, run).expect("chaos run");
        check(&report, &chaos_rep).expect("chaos invariants");
        let section = chaos_summary(42, run, &report, &chaos_rep);
        let back = json::parse(&section.to_pretty()).expect("summary parses");
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("rtec-bench-chaos-v1")
        );
        assert_eq!(back.get("kills").and_then(Value::as_f64), Some(2.0));
        assert!(back.get("rejoins").and_then(Value::as_f64).unwrap_or(0.0) >= 2.0);
        assert!(back
            .get("recovery_p99_us")
            .and_then(Value::as_f64)
            .is_some());
    }
}
