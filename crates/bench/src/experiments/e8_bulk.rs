//! E8 — NRT bulk transfer (fragmentation) under real-time load.
//!
//! A 64 KiB "ROM image" is published on a fragmented NRT channel while
//! the bus carries increasing amounts of HRT and SRT traffic. The bulk
//! transfer soaks up whatever bandwidth is left (including reclaimed
//! HRT slot time) without ever disturbing the real-time classes.

use super::common::{
    conformance_arm, conformance_check, etag, hrt_sensor, srt_background, HRT_SUBJECT, NRT_SUBJECT,
};
use crate::table::{f, Table};
use crate::RunOpts;
use rtec_core::frag::fragment_count;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

// 64 KiB minus one byte: the u16 length field caps a single NRT
// message at 65535 bytes.
const IMAGE_LEN: usize = 64 * 1024 - 1;

struct Outcome {
    transfer_ms: Option<f64>,
    throughput_kbps: Option<f64>,
    hrt_jitter_ns: u64,
    hrt_missing: u64,
}

fn run_one(opts: &RunOpts, n_hrt: bool, srt: bool) -> Outcome {
    let mut net = Network::builder()
        .nodes(6)
        .round(Duration::from_ms(10))
        .seed(opts.seed)
        .build();
    let sink = conformance_arm(opts, &mut net);
    let hrt_q = if n_hrt {
        Some(hrt_sensor(
            &mut net,
            Duration::from_ms(10),
            2,
            1.0,
            opts.seed,
        ))
    } else {
        None
    };
    if srt {
        let _ = srt_background(&mut net, NodeId(1), NodeId(3), Duration::from_us(400));
    }
    let done_at: Rc<RefCell<Option<Time>>> = Rc::new(RefCell::new(None));
    let started_at: Rc<RefCell<Option<Time>>> = Rc::new(RefCell::new(None));
    {
        let mut api = net.api();
        api.announce(NodeId(4), NRT_SUBJECT, ChannelSpec::nrt(NrtSpec::bulk()))
            .unwrap();
        let done = done_at.clone();
        api.subscribe_with(
            NodeId(5),
            NRT_SUBJECT,
            SubscribeSpec::default(),
            move |d| {
                assert_eq!(d.event.content.len(), IMAGE_LEN);
                *done.borrow_mut() = Some(d.delivered_at);
            },
            |_| {},
        )
        .unwrap();
    }
    let started = started_at.clone();
    net.after(Duration::from_ms(1), move |api| {
        *started.borrow_mut() = Some(api.now());
        let image: Vec<u8> = (0..IMAGE_LEN).map(|i| (i % 251) as u8).collect();
        api.publish(NodeId(4), NRT_SUBJECT, Event::new(NRT_SUBJECT, image))
            .unwrap();
    });
    // 64 KiB in ~13k fragments of ~91 bits ≈ 1.2 s on an idle 1 Mbit/s
    // bus; give head-room for loaded runs. Not shortened in quick mode
    // (the transfer must complete), but the claim sweep stays feasible.
    net.run_for(Duration::from_secs(12));
    conformance_check(&net, &sink, "e8");
    let transfer = match (*started_at.borrow(), *done_at.borrow()) {
        (Some(s), Some(d)) => Some(d.saturating_since(s)),
        _ => None,
    };
    let hrt_jitter = hrt_q
        .map(|q| {
            let deliveries = q.drain();
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for w in deliveries.windows(2) {
                let g = w[1]
                    .delivered_at
                    .saturating_since(w[0].delivered_at)
                    .as_ns();
                lo = lo.min(g);
                hi = hi.max(g);
            }
            hi.saturating_sub(lo.min(hi))
        })
        .unwrap_or(0);
    let hrt_missing = if n_hrt {
        net.stats().channel(etag(&net, HRT_SUBJECT)).missing_events
    } else {
        0
    };
    Outcome {
        transfer_ms: transfer.map(|t| t.as_ms_f64()),
        throughput_kbps: transfer.map(|t| (IMAGE_LEN as f64 * 8.0 / 1000.0) / t.as_secs_f64()),
        hrt_jitter_ns: hrt_jitter,
        hrt_missing,
    }
}

/// Run E8.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut t = Table::new(
        "E8: 64 KiB fragmented NRT transfer vs real-time load",
        &[
            "RT load",
            "transfer time (ms)",
            "goodput (kbit/s)",
            "HRT jitter (us)",
            "HRT missing",
        ],
    );
    for (name, hrt, srt) in [
        ("none", false, false),
        ("HRT 10ms/k=2", true, false),
        ("HRT + SRT", true, true),
    ] {
        let o = run_one(opts, hrt, srt);
        t.row(vec![
            name.to_string(),
            o.transfer_ms.map_or("did not finish".into(), f),
            o.throughput_kbps.map_or("-".into(), f),
            format!("{:.1}", o.hrt_jitter_ns as f64 / 1e3),
            o.hrt_missing.to_string(),
        ]);
    }
    t.note(format!(
        "image = {} bytes in {} fragments; the transfer only slows down as RT \
         load grows — the RT classes are untouched (jitter stays 0, no missing \
         events).",
        IMAGE_LEN,
        fragment_count(IMAGE_LEN)
    ));
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
