//! E10 — the off-line admission test and the Fig. 3 slot arithmetic.
//!
//! Two tables: (a) the slot layout components for omission degrees
//! k = 0..3 — the numbers behind Fig. 3; (b) how many 10 ms / k = 2
//! channels a 10 ms round admits before the reservation demand exceeds
//! the round, and the reserved utilization at each point.

use crate::table::{f, Table};
use crate::RunOpts;
use rtec_analysis::admission::{CalendarPlan, SlotRequest};
use rtec_analysis::wctt::slot_layout;
use rtec_can::bits::BitTiming;
use rtec_can::NodeId;
use rtec_sim::Duration;

/// Run E10.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let timing = BitTiming::MBIT_1;
    let gap = Duration::from_us(40);

    let mut layout = Table::new(
        "E10a (Fig. 3): slot layout at 1 Mbit/s, 8-byte payload, ΔG_min = 40 us",
        &[
            "k",
            "ΔT_wait (us)",
            "WCTT (us)",
            "ready→LST",
            "LST→deadline",
            "total slot (us)",
            "slots per 10 ms round",
        ],
    );
    for k in 0..=3u32 {
        let l = slot_layout(8, k, timing, gap);
        layout.row(vec![
            k.to_string(),
            f(l.delta_t_wait.as_us_f64()),
            f(l.wctt.as_us_f64()),
            f(l.lst_offset().as_us_f64()),
            f((l.deadline_offset() - l.lst_offset()).as_us_f64()),
            f(l.total().as_us_f64()),
            (Duration::from_ms(10) / l.total()).to_string(),
        ]);
    }
    layout.note(
        "ΔT_wait uses the paper's 154-bit longest frame; WCTT = (k+1)·C + k·E \
         with C = 160 us (tight worst case) and E = 23 us error signalling.",
    );

    let mut adm = Table::new(
        "E10b: admission of n identical channels (10 ms period, k = 2) into a 10 ms round",
        &["n channels", "verdict", "reserved utilization"],
    );
    let mut first_reject = None;
    for n in 1..=16usize {
        let requests: Vec<SlotRequest> = (0..n)
            .map(|i| SlotRequest {
                etag: 16 + i as u16,
                publisher: NodeId((i % 64) as u8),
                dlc: 8,
                omission_degree: 2,
                period: Duration::from_ms(10),
            })
            .collect();
        match CalendarPlan::plan(Duration::from_ms(10), &requests, timing, gap) {
            Ok(plan) => {
                plan.validate().expect("planned calendar is consistent");
                if opts.conformance {
                    // Every admitted plan must also pass the static linter.
                    let mut li =
                        rtec_conformance::LintInput::new(64, timing, Duration::from_ms(10));
                    li.calendar = Some(plan.clone());
                    li.channels = requests
                        .iter()
                        .map(|r| rtec_conformance::ChannelDecl {
                            etag: r.etag,
                            publisher: r.publisher,
                            spec: rtec_core::channel::ChannelSpec::hrt(
                                rtec_core::channel::HrtSpec {
                                    period: r.period,
                                    dlc: r.dlc,
                                    omission_degree: r.omission_degree,
                                    sporadic: false,
                                },
                            ),
                        })
                        .collect();
                    let report = rtec_conformance::lint(&li);
                    assert!(report.passes(), "e10 lint (n = {n}):\n{report}");
                }
                adm.row(vec![
                    n.to_string(),
                    "admitted".to_string(),
                    f(plan.reserved_utilization()),
                ]);
            }
            Err(e) => {
                if first_reject.is_none() {
                    first_reject = Some(n);
                }
                adm.row(vec![
                    n.to_string(),
                    format!("rejected ({e})"),
                    "-".to_string(),
                ]);
            }
        }
    }
    adm.note(format!(
        "each k = 2 slot reserves {:.0} us; the admission test rejects at n = {} — \
         'the correctness of the reservations ... [is] checked by an admission \
         test ... before any new reservation is confirmed' (§3.1)",
        slot_layout(8, 2, timing, gap).total().as_us_f64(),
        first_reject.map_or("-".to_string(), |n| n.to_string()),
    ));
    adm.note(format!("seed={} (deterministic)", opts.seed));
    vec![layout, adm]
}
