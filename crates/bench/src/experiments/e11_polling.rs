//! E11 — event-driven channels vs TTP/A-style polling (§4).
//!
//! "The master always initiates the communication" — so a sporadic
//! event at a TTP/A slave waits for its next polling slot: mean latency
//! ≈ half the round period, worst case a full round, and a dead master
//! silences the bus entirely. The same sporadic traffic on an SRT event
//! channel arbitrates onto the bus immediately.

use super::common::{conformance_arm, conformance_check, SRT_SUBJECT};
use crate::table::{us, Table};
use crate::RunOpts;
use rtec_baselines::{round_wire_time, run_ttpa, TtpaConfig};
use rtec_can::{BusConfig, NodeId};
use rtec_core::prelude::*;
use rtec_sim::Rng;
use std::cell::RefCell;
use std::rc::Rc;

fn rtec_sporadic_latency(opts: &RunOpts, mean_gap: Duration) -> (u64, f64, u64, u64) {
    let mut net = Network::builder().nodes(5).seed(opts.seed).build();
    let sink = conformance_arm(opts, &mut net);
    {
        let mut api = net.api();
        for n in 1..=3u8 {
            let s = Subject::new(0xE110 + u64::from(n));
            api.announce(NodeId(n), s, ChannelSpec::srt(SrtSpec::default()))
                .unwrap();
            api.subscribe(NodeId(0), s, SubscribeSpec::default())
                .unwrap();
        }
    }
    // Poisson sporadic events at random slaves (same process as the
    // TTP/A run).
    let rng = Rc::new(RefCell::new(Rng::seed_from_u64(opts.seed ^ 0xE11)));
    let mean_ns = mean_gap.as_ns() as f64;
    let r2 = rng.clone();
    net.every(Duration::from_us(200), Duration::ZERO, move |api| {
        // Thin the 200 µs tick into a Poisson process.
        let p = 200_000.0 / mean_ns;
        let mut rng = r2.borrow_mut();
        if rng.gen_bool(p) {
            let n = 1 + rng.gen_range_u64(3) as u8;
            let s = Subject::new(0xE110 + u64::from(n));
            let _ = api.publish(NodeId(n), s, Event::new(s, vec![n; 8]));
        }
    });
    net.run_for(opts.horizon(Duration::from_secs(5)));
    conformance_check(&net, &sink, "e11");
    let mut latencies = rtec_sim::Histogram::new();
    for n in 1..=3u8 {
        let etag = net
            .world()
            .registry()
            .etag_of(Subject::new(0xE110 + u64::from(n)))
            .unwrap();
        latencies.merge(&net.stats().channel(etag).wire_latency_ns);
    }
    let _ = SRT_SUBJECT;
    (
        latencies.count() as u64,
        latencies.mean().unwrap_or(0.0),
        latencies.percentile(99.0).unwrap_or(0),
        latencies.max().unwrap_or(0),
    )
}

/// Run E11.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mean_gap = Duration::from_ms(5);
    let ttpa_cfg = TtpaConfig {
        bus: BusConfig::default(),
        master: NodeId(0),
        slaves: vec![(NodeId(1), 8), (NodeId(2), 8), (NodeId(3), 8)],
        round_period: Duration::from_ms(2),
        sporadic_mean_gap: mean_gap,
        seed: opts.seed,
        kill_master_at: None,
    };
    let (ttpa_stats, _) = run_ttpa(ttpa_cfg.clone(), opts.horizon(Duration::from_secs(5)));
    let mut tl = ttpa_stats.sporadic_latency_ns.clone();
    let (n_ec, mean_ec, p99_ec, max_ec) = rtec_sporadic_latency(opts, mean_gap);

    let mut t = Table::new(
        "E11: sporadic-event latency — event channels vs TTP/A-style polling",
        &["scheme", "events", "mean (us)", "p99 (us)", "max (us)"],
    );
    t.row(vec![
        "event channel (SRT)".to_string(),
        n_ec.to_string(),
        format!("{:.1}", mean_ec / 1e3),
        us(p99_ec),
        us(max_ec),
    ]);
    t.row(vec![
        "TTP/A polling (2 ms round)".to_string(),
        tl.count().to_string(),
        format!("{:.1}", tl.mean().unwrap_or(0.0) / 1e3),
        us(tl.percentile(99.0).unwrap_or(0)),
        us(tl.max().unwrap_or(0)),
    ]);
    t.note(format!(
        "polling round wire time {:.0} us inside a 2 ms round; mean polled \
         latency ≈ half the round. The event channel's latency is one frame \
         time plus occasional blocking — the paper's case for exploiting \
         CAN's native arbitration instead of a polling master (§4).",
        round_wire_time(&ttpa_cfg).as_us_f64()
    ));
    // Master single-point-of-failure companion row.
    let mut killed_cfg = ttpa_cfg;
    killed_cfg.kill_master_at = Some(Time::from_ms(100));
    let (killed, _) = run_ttpa(killed_cfg, opts.horizon(Duration::from_secs(5)));
    t.note(format!(
        "master killed at 100 ms: {} of {} sporadic events ever served — the \
         master is a single point of failure the P/S protocol avoids.",
        killed.sporadic_served, killed.sporadic_events
    ));
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
