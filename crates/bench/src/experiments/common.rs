//! Shared scenario builders for the experiments.

use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Subject used for the primary HRT sensor channel.
pub const HRT_SUBJECT: Subject = Subject::new(0xE001);
/// Subject used for saturating SRT background traffic.
pub const SRT_SUBJECT: Subject = Subject::new(0xE002);
/// Subject used for NRT bulk traffic.
pub const NRT_SUBJECT: Subject = Subject::new(0xE003);

/// Install one periodic HRT channel (publisher node 0, subscriber node
/// 2) and a recurring publisher that stages fresh data every round with
/// probability `publish_prob` (1.0 = every round).
pub fn hrt_sensor(
    net: &mut Network,
    period: Duration,
    k: u32,
    publish_prob: f64,
    seed: u64,
) -> EventQueue {
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            HRT_SUBJECT,
            ChannelSpec::hrt(HrtSpec {
                period,
                dlc: 8,
                omission_degree: k,
                // Probabilistic publication means empty slots are
                // legitimate.
                sporadic: publish_prob < 1.0,
            }),
        )
        .unwrap();
        let q = api
            .subscribe(NodeId(2), HRT_SUBJECT, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    let rng = Rc::new(RefCell::new(rtec_sim::Rng::seed_from_u64(seed ^ 0xABCD)));
    net.every(period, Duration::from_us(100), move |api| {
        if rng.borrow_mut().gen_bool(publish_prob) {
            let stamp = api.now().as_ns().to_le_bytes();
            let _ = api.publish(
                NodeId(0),
                HRT_SUBJECT,
                Event::new(HRT_SUBJECT, stamp.to_vec()),
            );
        }
    });
    q
}

/// Install a saturating SRT channel: publisher `from`, subscriber `to`,
/// one 8-byte event every `gap` with a relaxed deadline, expiring so
/// queues stay bounded.
pub fn srt_background(net: &mut Network, from: NodeId, to: NodeId, gap: Duration) -> EventQueue {
    let q = {
        let mut api = net.api();
        api.announce(
            from,
            SRT_SUBJECT,
            ChannelSpec::srt(SrtSpec {
                default_deadline: Duration::from_ms(20),
                default_expiration: Some(Duration::from_ms(60)),
            }),
        )
        .unwrap();
        api.subscribe(to, SRT_SUBJECT, SubscribeSpec::default())
            .unwrap()
    };
    net.every(gap, Duration::from_us(7), move |api| {
        let _ = api.publish(from, SRT_SUBJECT, Event::new(SRT_SUBJECT, vec![0x5A; 8]));
    });
    q
}

/// Etag of a subject after binding.
pub fn etag(net: &Network, s: Subject) -> u16 {
    net.world().registry().etag_of(s).expect("subject bound")
}

/// Arm conformance checking on a freshly built network: when the run
/// options ask for it, enable tracing so [`conformance_check`] has a
/// trace to audit after the run.
pub fn conformance_arm(opts: &crate::RunOpts, net: &mut Network) -> Option<rtec_sim::TraceSink> {
    opts.conformance.then(|| net.enable_trace())
}

/// Lint the network's configuration and audit the recorded trace;
/// abort the experiment on any error-severity finding. Warnings are
/// tolerated (sweeps deliberately visit stressed configurations).
pub fn conformance_check(net: &Network, sink: &Option<rtec_sim::TraceSink>, what: &str) {
    let Some(sink) = sink else { return };
    let report = rtec_conformance::check_network(net, sink);
    assert!(report.passes(), "conformance failure in {what}:\n{report}");
}
