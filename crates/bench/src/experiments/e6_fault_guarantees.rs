//! E6 — HRT guarantees hold exactly up to the assumed omission degree.
//!
//! A channel reserved with omission degree k = 2 is hit with a
//! deterministic run of j omissions per activation. For j ≤ k every
//! event is still delivered at its deadline (masked by redundancy
//! inside the slot); for j > k the violation is *detected* on both
//! sides (RedundancyExhausted at the publisher, MissingEvent at the
//! subscriber) rather than silently degrading.

use super::common::{conformance_arm, conformance_check, etag, HRT_SUBJECT};
use crate::table::Table;
use crate::RunOpts;
use rtec_analysis::wctt::wctt;
use rtec_can::bits::BitTiming;
use rtec_can::FaultModel;
use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;

const K: u32 = 2;

struct Outcome {
    published: u64,
    delivered: u64,
    missing: u64,
    exhausted: u64,
    redundant: u64,
    max_wire_offset_ns: u64,
}

fn run_one(opts: &RunOpts, inject: u32) -> Outcome {
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .seed(opts.seed)
        .build();
    let sink = conformance_arm(opts, &mut net);
    let q = {
        let mut api = net.api();
        api.announce(
            NodeId(0),
            HRT_SUBJECT,
            ChannelSpec::hrt(HrtSpec {
                period: Duration::from_ms(10),
                dlc: 8,
                omission_degree: K,
                sporadic: false,
            }),
        )
        .unwrap();
        let q = api
            .subscribe(NodeId(2), HRT_SUBJECT, SubscribeSpec::default())
            .unwrap();
        api.install_calendar().unwrap();
        q
    };
    let tag = etag(&net, HRT_SUBJECT);
    net.world_mut()
        .bus
        .injector_mut()
        .set_model(FaultModel::OmitRun {
            etag: Some(tag),
            run_len: inject,
        });
    net.every(Duration::from_ms(10), Duration::from_us(100), move |api| {
        api.world_mut().bus.injector_mut().reset_runs();
        let _ = api.publish(NodeId(0), HRT_SUBJECT, Event::new(HRT_SUBJECT, vec![7; 8]));
    });
    net.run_for(opts.horizon(Duration::from_secs(2)));
    conformance_check(&net, &sink, "e6");
    let delivered = q.drain().len() as u64;
    let st = net.stats();
    let ch = st.channel(tag);
    Outcome {
        published: ch.published,
        delivered,
        missing: ch.missing_events,
        exhausted: ch.redundancy_exhausted,
        redundant: ch.redundant_transmissions,
        max_wire_offset_ns: st.hrt_wire_offset_ns.max().unwrap_or(0),
    }
}

/// Run E6.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let analytic = wctt(8, K, BitTiming::MBIT_1);
    let mut t = Table::new(
        "E6: injected omission degree vs guarantee (channel reserved with k = 2)",
        &[
            "injected j",
            "published",
            "delivered",
            "missing",
            "exhausted",
            "redundant tx",
            "max wire offset (us)",
            "guarantee",
        ],
    );
    for j in 0..=4u32 {
        let o = run_one(opts, j);
        let held = o.missing == 0 && o.exhausted == 0;
        t.row(vec![
            j.to_string(),
            o.published.to_string(),
            o.delivered.to_string(),
            o.missing.to_string(),
            o.exhausted.to_string(),
            o.redundant.to_string(),
            format!("{:.1}", o.max_wire_offset_ns as f64 / 1e3),
            if held {
                "held".to_string()
            } else if j <= K {
                "VIOLATED".to_string()
            } else {
                "detected violation (expected)".to_string()
            },
        ]);
    }
    t.note(format!(
        "analytic WCTT(k=2) = {:.0} us after the LST — all successful wire \
         completions must fall at or before it",
        analytic.as_us_f64()
    ));
    t.note(
        "paper claim (§2.2.1/§3.2): properties hold under the stated fault \
         assumption; beyond it the subscriber detects the missing message \
         because the expected reception time is known.",
    );
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
