//! E3 — time redundancy costs bandwidth only when faults occur.
//!
//! The HRT publisher stops retransmitting as soon as CAN's consistency
//! mechanism shows every operational node received the frame. Sweeping
//! the omission-fault probability, the *average* number of extra
//! transmissions per event tracks the fault rate (≈ p + p² for k = 2),
//! while a TTCAN-style pre-planned scheme always pays the full k extra
//! copies. This is why "very conservative fault assumptions are
//! possible because the penalty is low in the average" (§3.2).

use super::common::{conformance_arm, conformance_check, etag, hrt_sensor, HRT_SUBJECT};
use crate::table::{f, Table};
use crate::RunOpts;
use rtec_can::{FaultModel, OmissionScope};
use rtec_core::prelude::*;

fn rtec_extra_tx(opts: &RunOpts, omission_p: f64, k: u32) -> (f64, u64, u64) {
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .seed(opts.seed)
        .faults(FaultModel::Iid {
            corruption_p: 0.0,
            omission_p,
            omission_scope: OmissionScope::AllReceivers,
        })
        .build();
    let sink = conformance_arm(opts, &mut net);
    let _q = hrt_sensor(&mut net, Duration::from_ms(10), k, 1.0, opts.seed);
    net.run_for(opts.horizon(Duration::from_secs(5)));
    conformance_check(&net, &sink, "e3");
    let ch = net.stats().channel(etag(&net, HRT_SUBJECT));
    let extra = if ch.published == 0 {
        0.0
    } else {
        ch.redundant_transmissions as f64 / ch.published as f64
    };
    (extra, ch.missing_events, ch.redundancy_exhausted)
}

/// Run E3.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    const K: u32 = 2;
    let mut t = Table::new(
        "E3: redundancy cost vs omission-fault rate (k = 2)",
        &[
            "omission p",
            "rtec extra tx/event",
            "expected (p+p^2)",
            "always-k extra tx/event",
            "rtec overhead saved",
            "exhausted",
        ],
    );
    for p in [0.0, 0.01, 0.05, 0.10, 0.20] {
        let (extra, _missing, exhausted) = rtec_extra_tx(opts, p, K);
        let expected = p + p * p;
        let always = K as f64;
        t.row(vec![
            f(p),
            f(extra),
            f(expected),
            f(always),
            format!("{:.0}%", (1.0 - extra / always) * 100.0),
            exhausted.to_string(),
        ]);
    }
    t.note(
        "paper claim (§3.2): time redundancy only costs bandwidth when faults \
         actually occur; pre-planned k-fold retransmission (TTCAN/TTP style) \
         always pays k extra frames.",
    );
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
