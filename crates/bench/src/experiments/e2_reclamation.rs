//! E2 — reclaiming reserved-but-unused HRT bandwidth.
//!
//! In the event-channel scheme an HRT slot whose publisher has nothing
//! to say is simply never contended for: the priority mechanism hands
//! the bus to pending SRT/NRT traffic at once (§3.2). In TTCAN the same
//! exclusive window is *wasted* — no other station may transmit in it.
//! Sweeping the fraction of slots actually used, we measure the
//! background throughput each scheme sustains.

use super::common::{conformance_arm, conformance_check, srt_background, SRT_SUBJECT};
use crate::table::{f, Table};
use crate::RunOpts;
use rtec_baselines::{run_ttcan, TtcanConfig, Window, WindowKind};
use rtec_can::{BusConfig, FaultModel, NodeId};
use rtec_core::channel::HrtSpec;
use rtec_core::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Five HRT channels, one per publisher node, 5 ms period, k = 1.
const N_HRT: usize = 5;

fn rtec_run(opts: &RunOpts, use_prob: f64) -> (f64, f64) {
    let mut net = Network::builder()
        .nodes(8)
        .round(Duration::from_ms(5))
        .seed(opts.seed)
        .build();
    let sink = conformance_arm(opts, &mut net);
    {
        let mut api = net.api();
        for i in 0..N_HRT {
            let s = Subject::new(0xE100 + i as u64);
            api.announce(
                NodeId(i as u8),
                s,
                ChannelSpec::hrt(HrtSpec {
                    period: Duration::from_ms(5),
                    dlc: 8,
                    omission_degree: 1,
                    sporadic: true,
                }),
            )
            .unwrap();
            api.subscribe(NodeId(6), s, SubscribeSpec::default())
                .unwrap();
        }
    }
    let bg_q = srt_background(&mut net, NodeId(5), NodeId(7), Duration::from_us(120));
    {
        let mut api = net.api();
        api.install_calendar().unwrap();
    }
    // Probabilistic HRT publication.
    let rng = Rc::new(RefCell::new(rtec_sim::Rng::seed_from_u64(opts.seed ^ 0xE2)));
    net.every(Duration::from_ms(5), Duration::from_us(50), move |api| {
        for i in 0..N_HRT {
            if rng.borrow_mut().gen_bool(use_prob) {
                let s = Subject::new(0xE100 + i as u64);
                let _ = api.publish(NodeId(i as u8), s, Event::new(s, vec![i as u8; 8]));
            }
        }
    });
    let horizon = opts.horizon(Duration::from_secs(2));
    net.run_for(horizon);
    conformance_check(&net, &sink, "e2");
    let srt_tput = bg_q.len() as f64 / horizon.as_secs_f64();
    let util = net.world().bus.stats.utilization(horizon);
    let _ = SRT_SUBJECT;
    (srt_tput, util)
}

fn ttcan_run(opts: &RunOpts, use_prob: f64) -> (f64, f64) {
    // Matching matrix: five exclusive windows sized for 2 copies of a
    // worst-case frame (340 µs each) per 5 ms cycle, remainder
    // arbitrating.
    let mut cycle: Vec<Window> = (0..N_HRT)
        .map(|i| Window {
            kind: WindowKind::Exclusive {
                owner: NodeId(i as u8),
                etag: 32 + i as u16,
            },
            len: Duration::from_us(340),
        })
        .collect();
    cycle.push(Window {
        kind: WindowKind::Arbitrating,
        len: Duration::from_ms(5) - Duration::from_us(340 * N_HRT as u64),
    });
    let config = TtcanConfig {
        bus: BusConfig::default(),
        cycle,
        redundancy_k: 1,
        exclusive_use_prob: use_prob,
        background_mean_gap: Some(Duration::from_us(120)),
        background_dlc: 8,
        background_node: NodeId(5),
        seed: opts.seed,
        fault_model: FaultModel::None,
    };
    let horizon = opts.horizon(Duration::from_secs(2));
    let (stats, bus) = run_ttcan(config, horizon);
    let tput = stats.background_completed as f64 / horizon.as_secs_f64();
    (tput, bus.utilization(horizon))
}

/// Run E2.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut t = Table::new(
        "E2: unused-reservation reclamation — background throughput (frames/s) and wire utilization",
        &[
            "HRT slots used",
            "rtec SRT tput",
            "TTCAN bg tput",
            "rtec util",
            "TTCAN util",
            "rtec advantage",
        ],
    );
    for use_prob in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let (rt_tput, rt_util) = rtec_run(opts, use_prob);
        let (tt_tput, tt_util) = ttcan_run(opts, use_prob);
        t.row(vec![
            format!("{:.0}%", use_prob * 100.0),
            f(rt_tput),
            f(tt_tput),
            f(rt_util),
            f(tt_util),
            format!("{:.2}x", rt_tput / tt_tput.max(1.0)),
        ]);
    }
    t.note(
        "paper claim (§3.2/§5): bandwidth reserved but unused by HRT channels is \
         automatically reused by lower-priority traffic; TTCAN wastes it. The rtec \
         background throughput should stay roughly flat across the sweep while \
         TTCAN's is capped by its arbitrating windows.",
    );
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
