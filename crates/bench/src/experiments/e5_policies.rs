//! E5 — EDF event channels vs the fixed-priority and dual-priority
//! baselines of §4, across a load sweep into transient overload.
//!
//! All policies see the *identical* release sequence (same seed). The
//! expected shape: below saturation EDF ≈ DM ≈ dual with few misses;
//! approaching and past saturation EDF degrades latest and most
//! gracefully, and the expiration mechanism (EDF+expiry) keeps queues
//! bounded by shedding stale messages instead of accumulating backlog.

use crate::table::{f, Table};
use crate::RunOpts;
use rtec_baselines::{
    run_testbed, DualPriorityPolicy, EdfPolicy, FixedPriorityPolicy, NoPromotion, TestbedConfig,
};
use rtec_can::bits::BitTiming;
use rtec_can::BusConfig;
use rtec_sim::{Duration, Rng};
use rtec_workloads::{scale_load, set_utilization, uniform_srt_set};

/// Run E5.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut rng = Rng::seed_from_u64(opts.seed);
    let base = uniform_srt_set(12, 6, Duration::from_ms(2), Duration::from_ms(50), &mut rng);
    let base_util = set_utilization(&base, BitTiming::MBIT_1);
    let horizon = opts.horizon(Duration::from_secs(4));

    if opts.conformance {
        // Lint the workload as SRT channel declarations: deadlines vs
        // the ΔH horizon, expirations vs deadlines, band partition.
        let mut li = rtec_conformance::LintInput::new(64, BitTiming::MBIT_1, Duration::from_ms(10));
        li.channels = base
            .iter()
            .map(|s| rtec_conformance::ChannelDecl {
                etag: 16 + s.id,
                publisher: s.node,
                spec: rtec_core::channel::ChannelSpec::srt(rtec_core::channel::SrtSpec {
                    default_deadline: s.rel_deadline,
                    default_expiration: s.rel_expiration,
                }),
            })
            .collect();
        let report = rtec_conformance::lint(&li);
        assert!(report.passes(), "e5 lint:\n{report}");
    }

    let mut t = Table::new(
        "E5: deadline-miss ratio vs offered load (identical workloads)",
        &[
            "load (U)",
            "EDF",
            "fixed-DM",
            "dual-prio",
            "EDF no-promo (abl.)",
            "EDF+expiry (miss)",
            "EDF worst-stream fail",
            "DM worst-stream fail",
            "EDF+expiry backlog",
            "EDF backlog",
        ],
    );
    for load in [0.3, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2, 1.5] {
        let set = scale_load(&base, load / base_util);
        let cfg = |drop| TestbedConfig {
            bus: BusConfig::default(),
            streams: set.clone(),
            seed: opts.seed,
            drop_on_expiry: drop,
        };
        let edf = run_testbed(EdfPolicy::default(), cfg(false), horizon);
        let dm = run_testbed(
            FixedPriorityPolicy::deadline_monotonic(&set),
            cfg(false),
            horizon,
        );
        let dual = run_testbed(
            DualPriorityPolicy::new(&set, BitTiming::MBIT_1),
            cfg(false),
            horizon,
        );
        let edf_exp = run_testbed(EdfPolicy::default(), cfg(true), horizon);
        let edf_static = run_testbed(NoPromotion(EdfPolicy::default()), cfg(false), horizon);
        t.row(vec![
            f(load),
            f(edf.miss_ratio()),
            f(dm.miss_ratio()),
            f(dual.miss_ratio()),
            f(edf_static.miss_ratio()),
            f(edf_exp.miss_ratio()),
            f(edf.worst_stream_failure_ratio()),
            f(dm.worst_stream_failure_ratio()),
            edf_exp.backlog.to_string(),
            edf.backlog.to_string(),
        ]);
    }
    t.note(
        "under *sustained* overload EDF spreads lateness over all streams while \
         fixed priorities starve the lowest streams entirely (worst-stream \
         columns); the channel model's answer to overload is the expiration \
         attribute, which sheds stale events and keeps queues bounded.",
    );
    t.note(
        "paper claims: SRT channels are scheduled EDF (optimal on a single \
         resource up to the non-preemption/quantization effects), misses appear \
         only under transient overload, and the expiration attribute sheds stale \
         events instead of letting queues grow without bound (§2.2.2).",
    );
    t.note(format!(
        "seed={}, base utilization {:.3}",
        opts.seed, base_util
    ));
    vec![t]
}
