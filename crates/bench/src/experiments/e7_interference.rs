//! E7 — priority-band non-interference: `0 = P_HRT < P_SRT < P_NRT`.
//!
//! Whatever the lower classes do, a pending HRT message wins every
//! arbitration after its LST; the only interference is the single
//! non-preemptible frame that may already occupy the bus (≤ ΔT_wait).
//! Four background scenarios of increasing hostility are thrown at the
//! same HRT channel.

use super::common::{
    conformance_arm, conformance_check, etag, hrt_sensor, srt_background, HRT_SUBJECT, NRT_SUBJECT,
};
use crate::table::{us, Table};
use crate::RunOpts;
use rtec_can::bits::BitTiming;
use rtec_core::prelude::*;

struct Outcome {
    delivered: u64,
    missing: u64,
    max_blocking_ns: u64,
    jitter_ns: u64,
    bus_util: f64,
}

fn run_one(opts: &RunOpts, srt_storm: bool, nrt_bulk: bool) -> Outcome {
    let mut net = Network::builder()
        .nodes(5)
        .round(Duration::from_ms(10))
        .seed(opts.seed)
        .build();
    let sink = conformance_arm(opts, &mut net);
    let q = hrt_sensor(&mut net, Duration::from_ms(10), 1, 1.0, opts.seed);
    if srt_storm {
        let _ = srt_background(&mut net, NodeId(1), NodeId(3), Duration::from_us(125));
    }
    if nrt_bulk {
        {
            let mut api = net.api();
            api.announce(NodeId(4), NRT_SUBJECT, ChannelSpec::nrt(NrtSpec::bulk()))
                .unwrap();
            api.subscribe(NodeId(3), NRT_SUBJECT, SubscribeSpec::default())
                .unwrap();
        }
        // A stream of 4 KiB images back to back.
        net.every(Duration::from_ms(25), Duration::from_us(11), |api| {
            let _ = api.publish(
                NodeId(4),
                NRT_SUBJECT,
                Event::new(NRT_SUBJECT, vec![0xD1u8; 4096]),
            );
        });
    }
    let horizon = opts.horizon(Duration::from_secs(2));
    net.run_for(horizon);
    conformance_check(&net, &sink, "e7");
    let deliveries = q.drain();
    let mut gmin = u64::MAX;
    let mut gmax = 0u64;
    for w in deliveries.windows(2) {
        let g = w[1]
            .delivered_at
            .saturating_since(w[0].delivered_at)
            .as_ns();
        gmin = gmin.min(g);
        gmax = gmax.max(g);
    }
    let st = net.stats();
    Outcome {
        delivered: deliveries.len() as u64,
        missing: st.channel(etag(&net, HRT_SUBJECT)).missing_events,
        max_blocking_ns: st.hrt_lst_blocking_ns.max().unwrap_or(0),
        jitter_ns: gmax.saturating_sub(gmin.min(gmax)),
        bus_util: net.world().bus.stats.utilization(horizon),
    }
}

/// Run E7.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let bound = BitTiming::MBIT_1.delta_t_wait_tight().as_ns();
    let mut t = Table::new(
        "E7: HRT non-interference under adversarial lower-class background",
        &[
            "background",
            "HRT delivered",
            "missing",
            "max LST blocking (us)",
            "bound ok",
            "delivery jitter (us)",
            "bus util",
        ],
    );
    for (name, srt, nrt) in [
        ("idle bus", false, false),
        ("SRT storm", true, false),
        ("NRT bulk", false, true),
        ("SRT storm + NRT bulk", true, true),
    ] {
        let o = run_one(opts, srt, nrt);
        t.row(vec![
            name.to_string(),
            o.delivered.to_string(),
            o.missing.to_string(),
            us(o.max_blocking_ns),
            if o.max_blocking_ns <= bound {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            us(o.jitter_ns),
            format!("{:.2}", o.bus_util),
        ]);
    }
    t.note(format!(
        "bound: one non-preemptible frame = {} us (paper quotes 154 us at 1 Mbit/s)",
        us(bound)
    ));
    t.note(
        "paper claim (§3.3): the band assignment prevents NRT and SRT messages \
         from ever gaining the bus against a pending HRT message.",
    );
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
