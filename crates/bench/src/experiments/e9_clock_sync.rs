//! E9 — clock-synchronization precision and the `ΔG_min` gap (§3.2).
//!
//! The inter-slot gap must absorb the worst disagreement between any
//! two node clocks. Sweeping oscillator drift and resync period, the
//! measured precision `Π ≈ 2ρP` plus one bit of latch granularity
//! yields the required gap; the paper conservatively assumes 40 µs.

use crate::table::Table;
use crate::RunOpts;
use rtec_clock::sync::{measure, required_gap, SyncConfig};
use rtec_sim::Duration;

/// Run E9.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    let mut t = Table::new(
        "E9: measured clock precision Π and required ΔG_min (8 nodes)",
        &[
            "drift (±ppm)",
            "resync period",
            "precision Π (us)",
            "required gap (us)",
            "fits paper's 40 us",
        ],
    );
    let horizon = opts.horizon(Duration::from_secs(5));
    if opts.conformance {
        // The sync sweep uses the paper-default network parameters; they
        // must at least be statically conformant.
        let report = rtec_conformance::lint(&rtec_conformance::LintInput::new(
            8,
            rtec_can::bits::BitTiming::MBIT_1,
            Duration::from_ms(10),
        ));
        assert!(report.passes(), "e9 lint:\n{report}");
    }
    for drift in [10.0, 50.0, 100.0, 200.0] {
        for period_ms in [10u64, 50, 200] {
            let cfg = SyncConfig::typical(8, drift, Duration::from_ms(period_ms));
            let stats = measure(cfg, horizon);
            let precision = stats.precision();
            let gap = required_gap(precision, Duration::from_us(1));
            t.row(vec![
                format!("{drift:.0}"),
                format!("{period_ms} ms"),
                format!("{:.1}", precision.as_us_f64()),
                format!("{:.1}", gap.as_us_f64()),
                if gap <= Duration::from_us(40) {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
    }
    t.note(
        "paper assumption (§3.2): ΔG_min conservatively 40 us, 'depends on the \
         quality and frequency of clock synchronization'. The sweep shows which \
         (drift, resync) combinations honour it — e.g. ±100 ppm needs a resync \
         period of ~50 ms or better.",
    );
    t.note(format!(
        "seed={} (sync protocol itself is deterministic)",
        opts.seed
    ));
    vec![t]
}
