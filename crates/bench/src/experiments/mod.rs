//! The experiment registry: one module per entry of the DESIGN.md
//! experiment index.

pub mod common;
pub mod e10_admission;
pub mod e11_polling;
pub mod e1_slot_structure;
pub mod e2_reclamation;
pub mod e3_redundancy;
pub mod e4_priority_slots;
pub mod e5_policies;
pub mod e6_fault_guarantees;
pub mod e7_interference;
pub mod e8_bulk;
pub mod e9_clock_sync;

use crate::{RunOpts, Table};

/// A runnable experiment.
pub struct Experiment {
    /// Short id (`e1`...`e10`).
    pub id: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// Run it, producing tables.
    pub run: fn(&RunOpts) -> Vec<Table>,
}

/// All experiments, in index order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            what: "Fig. 3 slot structure: delivery jitter removal & LST blocking bound",
            run: e1_slot_structure::run,
        },
        Experiment {
            id: "e2",
            what: "bandwidth reclamation of unused HRT slots vs TTCAN",
            run: e2_reclamation::run,
        },
        Experiment {
            id: "e3",
            what: "time-redundancy cost vs fault rate (early stop vs always-k)",
            run: e3_redundancy::run,
        },
        Experiment {
            id: "e4",
            what: "priority-slot length trade-off: horizon vs ties vs misses",
            run: e4_priority_slots::run,
        },
        Experiment {
            id: "e5",
            what: "EDF vs fixed-priority vs dual-priority under load sweep",
            run: e5_policies::run,
        },
        Experiment {
            id: "e6",
            what: "HRT guarantees under injected omission degrees",
            run: e6_fault_guarantees::run,
        },
        Experiment {
            id: "e7",
            what: "priority-band non-interference under adversarial background",
            run: e7_interference::run,
        },
        Experiment {
            id: "e8",
            what: "NRT bulk transfer under real-time load",
            run: e8_bulk::run,
        },
        Experiment {
            id: "e9",
            what: "clock-sync precision vs drift & resync period (ΔG_min)",
            run: e9_clock_sync::run,
        },
        Experiment {
            id: "e10",
            what: "calendar admission test & slot layout (Fig. 3 numbers)",
            run: e10_admission::run,
        },
        Experiment {
            id: "e11",
            what: "sporadic latency: event channels vs TTP/A-style polling",
            run: e11_polling::run,
        },
    ]
}
