//! E1 / Fig. 3 — the time-slot structure in action.
//!
//! One periodic HRT channel under saturating SRT background. The wire
//! completion of the HRT frame moves around inside its slot (pre-LST
//! blocking by a non-preemptible frame varies), yet deliveries are
//! perfectly periodic because the middleware delivers at the slot's
//! delivery deadline. The ablation row disables deferred delivery to
//! show the jitter the application would otherwise see.

use super::common::{
    conformance_arm, conformance_check, etag, hrt_sensor, srt_background, HRT_SUBJECT,
};
use crate::table::{us, Table};
use crate::{RunOpts, Table as T};
use rtec_can::bits::BitTiming;
use rtec_core::prelude::*;

struct Outcome {
    deliveries: usize,
    period_jitter_p2p_ns: u64,
    wire_offset_min_ns: u64,
    wire_offset_max_ns: u64,
    lst_blocking_max_ns: u64,
    missing: u64,
}

fn run_one(opts: &RunOpts, deferred: bool) -> Outcome {
    let mut net = Network::builder()
        .nodes(4)
        .round(Duration::from_ms(10))
        .seed(opts.seed)
        .hrt_deferred_delivery(deferred)
        .build();
    let sink = conformance_arm(opts, &mut net);
    let q = hrt_sensor(&mut net, Duration::from_ms(10), 2, 1.0, opts.seed);
    let _bg = srt_background(&mut net, NodeId(1), NodeId(3), Duration::from_us(137));
    net.run_for(opts.horizon(Duration::from_secs(2)));
    conformance_check(&net, &sink, "e1");
    let deliveries = q.drain();
    let mut p2p_min = u64::MAX;
    let mut p2p_max = 0u64;
    for w in deliveries.windows(2) {
        let gap = w[1]
            .delivered_at
            .saturating_since(w[0].delivered_at)
            .as_ns();
        p2p_min = p2p_min.min(gap);
        p2p_max = p2p_max.max(gap);
    }
    let st = net.stats();
    let ch = st.channel(etag(&net, HRT_SUBJECT));
    Outcome {
        deliveries: deliveries.len(),
        period_jitter_p2p_ns: p2p_max.saturating_sub(p2p_min),
        wire_offset_min_ns: st.hrt_wire_offset_ns.min().unwrap_or(0),
        wire_offset_max_ns: st.hrt_wire_offset_ns.max().unwrap_or(0),
        lst_blocking_max_ns: st.hrt_lst_blocking_ns.max().unwrap_or(0),
        missing: ch.missing_events,
    }
}

/// Run E1.
pub fn run(opts: &RunOpts) -> Vec<T> {
    let paper = run_one(opts, true);
    let ablation = run_one(opts, false);
    let mut t = Table::new(
        "E1 (Fig. 3): slot structure — jitter removal and ΔT_wait bound",
        &[
            "delivery mode",
            "deliveries",
            "period jitter p2p (us)",
            "wire offset in slot (us, min..max)",
            "max LST blocking (us)",
            "missing",
        ],
    );
    for (name, o) in [
        ("deliver-at-deadline (paper)", &paper),
        ("immediate (ablation)", &ablation),
    ] {
        t.row(vec![
            name.to_string(),
            o.deliveries.to_string(),
            us(o.period_jitter_p2p_ns),
            format!("{}..{}", us(o.wire_offset_min_ns), us(o.wire_offset_max_ns)),
            us(o.lst_blocking_max_ns),
            o.missing.to_string(),
        ]);
    }
    let bound = BitTiming::MBIT_1.delta_t_wait_tight().as_ns();
    t.note(format!(
        "ΔT_wait bound = {} us (160-bit worst frame; paper quotes 154 us) — max observed blocking {} us {}",
        us(bound),
        us(paper.lst_blocking_max_ns.max(ablation.lst_blocking_max_ns)),
        if paper.lst_blocking_max_ns <= bound && ablation.lst_blocking_max_ns <= bound {
            "=> bound holds"
        } else {
            "=> BOUND VIOLATED"
        }
    ));
    t.note(format!(
        "paper claim: application-visible jitter 0 with deferred delivery (measured {} us) while wire completion varies by {} us inside the slot",
        us(paper.period_jitter_p2p_ns),
        us(paper.wire_offset_max_ns.saturating_sub(paper.wire_offset_min_ns)),
    ));
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
