//! E4 — the priority-slot length trade-off (§3.4).
//!
//! A small `Δt_p` separates close deadlines (fewer same-slot ties ⇒
//! fewer bounded priority inversions) but shrinks the horizon
//! `ΔH = 250·Δt_p` beyond which deadlines are indistinguishable. The
//! sweep runs the same near-saturation workload under EDF with
//! different slot lengths and reports the analytic horizon/tie numbers
//! next to the measured miss ratio.

use crate::table::{f, Table};
use crate::RunOpts;
use rtec_analysis::edf::{expected_tie_fraction, time_horizon, PrioritySlotConfig};
use rtec_baselines::{run_testbed, EdfPolicy, TestbedConfig};
use rtec_can::bits::BitTiming;
use rtec_can::BusConfig;
use rtec_sim::{Duration, Rng};
use rtec_workloads::{scale_load, set_utilization, uniform_srt_set};

/// Run E4.
pub fn run(opts: &RunOpts) -> Vec<Table> {
    // Near-saturation workload with a wide deadline spectrum.
    let mut rng = Rng::seed_from_u64(opts.seed);
    let base = uniform_srt_set(
        16,
        8,
        Duration::from_ms(2),
        Duration::from_ms(200),
        &mut rng,
    );
    let set = scale_load(&base, 1.05 / set_utilization(&base, BitTiming::MBIT_1));
    let horizon = opts.horizon(Duration::from_secs(4));
    let deadline_window = Duration::from_ms(200);

    let mut t = Table::new(
        "E4: Δt_p trade-off — horizon ΔH vs ties vs measured inversions/misses (load ≈ 1.05)",
        &[
            "Δt_p (us)",
            "ΔH = 250·Δt_p (ms)",
            "tie prob (analytic)",
            "deadlines beyond ΔH",
            "inversions",
            "miss ratio",
            "completed",
        ],
    );
    for slot_us in [10u64, 40, 160, 640, 2_560, 10_240] {
        let cfg = PrioritySlotConfig {
            slot: Duration::from_us(slot_us),
            p_min: 1,
            p_max: 250,
        };
        if opts.conformance {
            // The swept Δt_p values must at least be statically sane
            // (S3/S5); extreme points may warn but never error.
            let mut li =
                rtec_conformance::LintInput::new(64, BitTiming::MBIT_1, Duration::from_ms(10));
            li.priority_slots = cfg;
            let report = rtec_conformance::lint(&li);
            assert!(report.passes(), "e4 lint (Δt_p = {slot_us} us):\n{report}");
        }
        let dh = time_horizon(&cfg);
        let ties = expected_tie_fraction(set.len() as u64, deadline_window, &cfg);
        let beyond = set.iter().filter(|s| s.rel_deadline > dh).count();
        let stats = run_testbed(
            EdfPolicy { cfg },
            TestbedConfig {
                bus: BusConfig::default(),
                streams: set.clone(),
                seed: opts.seed,
                drop_on_expiry: false,
            },
            horizon,
        );
        t.row(vec![
            slot_us.to_string(),
            format!("{:.2}", dh.as_ms_f64()),
            f(ties),
            format!("{beyond}/{}", set.len()),
            stats.inversions.to_string(),
            f(stats.miss_ratio()),
            stats.completed.to_string(),
        ]);
    }
    t.note(
        "paper claim (§3.4): with 250 levels and Δt_p of about one frame time \
         (~160 us) the horizon holds 250 transfers — ties are rare and the \
         horizon comfortably covers a 32–64 node bus. Very large Δt_p degrades \
         the schedule (more ties); very small Δt_p clips long deadlines.",
    );
    t.note(format!("seed={}", opts.seed));
    vec![t]
}
