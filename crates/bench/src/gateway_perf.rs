//! Gateway fanout benchmark (`experiments bench gateway`).
//!
//! Measures the off-bus gateway (`rtec-gateway`) against a fixed
//! mixed-class bus workload: one HRT channel, four SRT channels and two
//! bulk NRT channels published by seven nodes, all delivered to a
//! gateway node that re-publishes them to a population of simulated
//! clients. Each client subscribes to a seeded pair of subjects; every
//! fifth client is *slow* (accepts 25 % of offers), so the bounded
//! lane queues and the shed-NRT-first policy are exercised at every
//! scale. The grid sweeps fanout workers × client count:
//!
//! * `fanout_per_wall_sec` — (event, lane) deliveries the shard workers
//!   push per wall second (the gateway's throughput number),
//! * `p50_us` / `p99_us` — client-observed wall latency from gateway
//!   ingress to sink accept (machine-dependent, excluded from all
//!   determinism comparisons),
//! * shed / disconnect counters and the peak lane occupancy (which must
//!   never exceed the configured bound — the bounded-memory witness).
//!
//! The full run also appends a **reconnect storm** row: every client is
//! a session client whose link is severed mid-run, and all of them
//! resume in one 60 ms burst — the row reports the wall p99 of the
//! replay-and-reattach path and the bytes replayed from session
//! buffers.
//!
//! Results merge into `BENCH_engine.json` under the `"gateway"` key.
//! `--ci` instead runs the acceptance gates: committed section parses,
//! two same-seed runs produce byte-identical lane digests, the merged
//! trace passes the `T1`..`T8` auditor, and a 10 000-client population
//! is sustained with nonzero sheds and bounded queues.

use crate::gw_chaos_exp::{ChaosClient, ChaosClientSink, ClientState, ResumeAction, ResumeDriver};
use crate::json::{self, Value};
use crate::perf::{BenchConfig, ENGINE_REPORT};
use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::channel::{ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_gateway::{ClientSinkSpec, Gateway, GatewayConfig, GatewayReport, SlowConsumerPolicy};
use rtec_live::chaos::{LinkChaos, LinkPlan};
use rtec_live::cluster::{Cluster, ClusterConfig, LiveReport};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::Pace;
use rtec_sim::{Duration, Rng, SharedTraceSink};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fanout worker counts swept by the full benchmark.
const WORKER_GRID: [usize; 3] = [1, 4, 16];
/// Client populations swept by the full benchmark.
const CLIENT_GRID: [usize; 3] = [100, 1_000, 10_000];
/// Bound of each (client, shard) egress queue.
const QUEUE_CAP: usize = 32;
/// Every `SLOW_EVERY`-th client accepts only 25 % of offers.
const SLOW_EVERY: usize = 5;
/// Trace ring bound for the audited CI cell.
const TRACE_CAPACITY: usize = 1 << 16;

const HRT_SUBJECT: Subject = Subject(0xA001);
const SRT_BASE: u64 = 0xA100;
const SRT_COUNT: usize = 4;
const NRT_BASE: u64 = 0xA200;
const NRT_COUNT: usize = 2;

struct HrtSource {
    counter: u8,
    period: Duration,
}

impl Behavior for HrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(HRT_SUBJECT).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        ctx.publish(Event::new(HRT_SUBJECT, vec![self.counter]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

struct SrtSource {
    subject: Subject,
    every: Duration,
    phase: Duration,
    counter: u8,
}

impl Behavior for SrtSource {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.counter = self.counter.wrapping_add(1);
        let _ = ctx.publish(Event::new(self.subject, vec![0xB0, self.counter]));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

struct NrtPulse {
    subject: Subject,
    every: Duration,
    phase: Duration,
    bytes: usize,
}

impl Behavior for NrtPulse {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + self.phase, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        let payload: Vec<u8> = (0..self.bytes).map(|i| i as u8).collect();
        let _ = ctx.publish(Event::new(self.subject, payload));
        ctx.set_timer(ctx.now() + self.every, 0).unwrap();
    }
}

/// Every subject the workload publishes, with its channel spec.
fn subjects() -> Vec<(Subject, ChannelSpec)> {
    let mut out = vec![(HRT_SUBJECT, ChannelSpec::Hrt(HrtSpec::periodic_10ms()))];
    for i in 0..SRT_COUNT {
        out.push((
            Subject(SRT_BASE + i as u64),
            ChannelSpec::Srt(SrtSpec::default()),
        ));
    }
    for j in 0..NRT_COUNT {
        out.push((
            Subject(NRT_BASE + j as u64),
            ChannelSpec::Nrt(NrtSpec::bulk()),
        ));
    }
    out
}

/// Spawn the fixed seven-node publisher workload onto `cluster`.
fn spawn_sources(cluster: &mut Cluster, topo: &[(Subject, ChannelSpec)]) {
    let n0 = cluster.add_node(Box::new(HrtSource {
        counter: 0,
        period: Duration::from_ms(10),
    }));
    cluster.publish(n0, HRT_SUBJECT, topo[0].1);
    for i in 0..SRT_COUNT {
        let (subject, spec) = topo[1 + i];
        let node = cluster.add_node(Box::new(SrtSource {
            subject,
            every: Duration::from_ms(2),
            phase: Duration::from_us(300 * (i as u64 + 1)),
            counter: 0,
        }));
        cluster.publish(node, subject, spec);
    }
    for j in 0..NRT_COUNT {
        let (subject, spec) = topo[1 + SRT_COUNT + j];
        let node = cluster.add_node(Box::new(NrtPulse {
            subject,
            every: Duration::from_ms(6),
            phase: Duration::from_ms(1 + j as u64),
            bytes: 240,
        }));
        cluster.publish(node, subject, spec);
    }
}

/// One grid cell: run the fixed workload against `workers` × `clients`
/// and collect cluster + gateway reports plus the wall time of the
/// run-and-drain phase.
fn run_cell(
    workers: usize,
    clients: usize,
    bus_time: Duration,
    seed: u64,
    sink: Option<SharedTraceSink>,
) -> (LiveReport, GatewayReport, f64) {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        trace: sink.is_some(),
        trace_capacity: Some(TRACE_CAPACITY),
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    if let Some(s) = &sink {
        cluster.use_sink(s.clone());
    }
    let topo = subjects();
    spawn_sources(&mut cluster, &topo);

    let gateway = Gateway::new(GatewayConfig {
        workers,
        client_queue_cap: QUEUE_CAP,
        sink: sink.clone().unwrap_or_else(SharedTraceSink::disabled),
        ..GatewayConfig::default()
    });
    for (subject, spec) in &topo {
        gateway.bind(*subject, spec);
    }
    // Each client subscribes to a seeded pair of distinct subjects;
    // every SLOW_EVERY-th client is slow. Same seed ⇒ same population.
    let mut rng = Rng::seed_from_u64(seed ^ cell_salt(workers, clients));
    for c in 0..clients {
        let a = rng.gen_range_u64(topo.len() as u64) as usize;
        let mut b = rng.gen_range_u64(topo.len() as u64) as usize;
        while b == a {
            b = rng.gen_range_u64(topo.len() as u64) as usize;
        }
        let permille = if c % SLOW_EVERY == 0 { 250 } else { 1_000 };
        gateway.add_client(
            &[topo[a].0, topo[b].0],
            &ClientSinkSpec::sim(seed.wrapping_add(c as u64), permille),
            Some(SlowConsumerPolicy::ShedNrtFirst),
        );
    }
    let gw_node = cluster.add_node(gateway.behavior());
    for (subject, spec) in &topo {
        cluster.subscribe(gw_node, *subject, *spec);
    }

    let wall = Instant::now();
    let report = cluster.run_for(bus_time).expect("gateway bench run failed");
    let gw = gateway.finish();
    let wall_s = wall.elapsed().as_secs_f64();
    (report, gw, wall_s)
}

/// Seed salt so each grid cell draws an independent client population.
fn cell_salt(workers: usize, clients: usize) -> u64 {
    ((workers as u64) << 32) | clients as u64
}

/// Bus-time horizon of the reconnect storm (fixed: the storm's resume
/// schedule sits at 60 ms, which must be inside the horizon).
const STORM_BUS_MS: u64 = 100;

/// Reconnect storm: every client is a *session* client whose link is
/// severed after a seeded frame budget (losing a 2-frame in-flight
/// tail), and all of them resume in one burst at 60 ms bus time. The
/// row reports the wall-clock p99 of the replay-and-reattach path and
/// how many bytes the session buffers replayed — the cost of crash
/// tolerance at the off-bus tier.
fn reconnect_storm(seed: u64, storm_clients: usize) -> (GatewayReport, usize, f64) {
    let cfg = ClusterConfig {
        pace: Pace::Virtual,
        nrt_queue_cap: 256,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let topo = subjects();
    spawn_sources(&mut cluster, &topo);
    let gateway = Gateway::new(GatewayConfig {
        workers: 4,
        client_queue_cap: QUEUE_CAP,
        ..GatewayConfig::default()
    });
    for (subject, spec) in &topo {
        gateway.bind(*subject, spec);
    }
    let mut rng = Rng::seed_from_u64(seed ^ 0x5702_5702);
    let mut clients = Vec::new();
    let mut schedule = Vec::new();
    for c in 0..storm_clients {
        let a = rng.gen_range_u64(topo.len() as u64) as usize;
        let mut b = rng.gen_range_u64(topo.len() as u64) as usize;
        while b == a {
            b = rng.gen_range_u64(topo.len() as u64) as usize;
        }
        let link = LinkChaos::new(LinkPlan {
            seed: seed ^ c as u64,
            severs: vec![10 + rng.gen_range_u64(30)],
            lose_tail: 2,
            delay_rate: 0.0,
            ..LinkPlan::default()
        });
        let state = Arc::new(Mutex::new(ClientState::new(link)));
        let id = gateway.reserve_client();
        let token = gateway.open_session(id, &[topo[a].0, topo[b].0], None);
        gateway.attach_session(
            id,
            Box::new(ChaosClientSink {
                state: Arc::clone(&state),
            }),
        );
        // One burst, microsecond-staggered so every resume has its own
        // bus instant (and its own timer).
        schedule.push(ResumeAction {
            at: Duration::from_ms(60) + Duration::from_us(53 * c as u64),
            client: c,
        });
        clients.push(ChaosClient { token, state });
    }
    let gw_node = cluster.add_node(gateway.behavior());
    for (subject, spec) in &topo {
        cluster.subscribe(gw_node, *subject, *spec);
    }
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    cluster.add_node(Box::new(ResumeDriver {
        gw: gateway.clone(),
        schedule,
        clients,
        outcomes: Arc::clone(&outcomes),
    }));
    let wall = Instant::now();
    cluster
        .run_for(Duration::from_ms(STORM_BUS_MS))
        .expect("reconnect storm run failed");
    let gw = gateway.finish();
    let wall_s = wall.elapsed().as_secs_f64();
    let ok = outcomes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .filter(|(_, r)| r.is_ok())
        .count();
    (gw, ok, wall_s)
}

/// The storm's JSON row inside the `"gateway"` section.
fn storm_report(storm_clients: usize, gw: &GatewayReport, ok: usize, wall_s: f64) -> Value {
    let mut walls = gw.resume_wall_ns.clone();
    walls.sort_unstable();
    let s = &gw.sessions;
    Value::Obj(
        vec![
            ("clients", Value::num(storm_clients as f64)),
            ("bus_ms", Value::num(STORM_BUS_MS as f64)),
            ("resumes_ok", Value::num(ok as f64)),
            ("resumed", Value::num(s.resumed as f64)),
            ("gapped", Value::num(s.gapped as f64)),
            (
                "replayed_frames",
                Value::num((s.replayed_hrt + s.replayed_srt + s.replayed_nrt) as f64),
            ),
            ("replay_bytes", Value::num(s.replay_bytes as f64)),
            ("gap_frames", Value::num(s.gap_frames as f64)),
            (
                "resume_p99_us",
                Value::num(round3(percentile_us(&walls, 0.99))),
            ),
            ("wall_ms", Value::num(round3(wall_s * 1e3))),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

struct CellRow {
    workers: usize,
    clients: usize,
    ingress: u64,
    fanout: u64,
    delivered: u64,
    shed_nrt: u64,
    shed_srt_stale: u64,
    shed_srt_cap: u64,
    disconnects: u64,
    peak: usize,
    wall_s: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn cell_row(workers: usize, clients: usize, gw: &GatewayReport, wall_s: f64) -> CellRow {
    CellRow {
        workers,
        clients,
        ingress: gw.stats.ingress,
        fanout: gw.stats.fanout,
        delivered: gw.stats.delivered_msgs,
        shed_nrt: gw.stats.shed_nrt,
        shed_srt_stale: gw.stats.shed_srt_stale,
        shed_srt_cap: gw.stats.shed_srt_cap,
        disconnects: gw.stats.disconnects,
        peak: gw.stats.peak_lane_occupancy,
        wall_s,
        p50_us: percentile_us(&gw.latencies_ns, 0.50),
        p99_us: percentile_us(&gw.latencies_ns, 0.99),
    }
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn cell_report(row: &CellRow) -> Value {
    Value::Obj(
        vec![
            ("workers", Value::num(row.workers as f64)),
            ("clients", Value::num(row.clients as f64)),
            ("ingress_events", Value::num(row.ingress as f64)),
            ("fanout", Value::num(row.fanout as f64)),
            (
                "fanout_per_wall_sec",
                Value::num((row.fanout as f64 / row.wall_s.max(1e-9)).round()),
            ),
            ("delivered_msgs", Value::num(row.delivered as f64)),
            ("p50_us", Value::num(round3(row.p50_us))),
            ("p99_us", Value::num(round3(row.p99_us))),
            ("shed_nrt", Value::num(row.shed_nrt as f64)),
            ("shed_srt_stale", Value::num(row.shed_srt_stale as f64)),
            ("shed_srt_cap", Value::num(row.shed_srt_cap as f64)),
            ("disconnects", Value::num(row.disconnects as f64)),
            ("peak_lane_occupancy", Value::num(row.peak as f64)),
            ("wall_ms", Value::num(round3(row.wall_s * 1e3))),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

fn gateway_report(cfg: &BenchConfig, bus_time: Duration, rows: &[CellRow]) -> Value {
    Value::Obj(
        vec![
            ("schema", Value::str("rtec-bench-gateway-v1")),
            ("mode", Value::str(if cfg.quick { "quick" } else { "full" })),
            ("bus_ms", Value::num(bus_time.as_ns() as f64 / 1e6)),
            ("queue_cap", Value::num(QUEUE_CAP as f64)),
            ("slow_every", Value::num(SLOW_EVERY as f64)),
            ("policy", Value::str("shed-nrt-first")),
            ("cells", Value::Arr(rows.iter().map(cell_report).collect())),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    )
}

fn print_row(row: &CellRow) {
    eprintln!(
        "  {:2} worker(s) × {:5} clients: {:7} fanout in {:8.2} ms wall ({:>9}/s)  \
         p50 {:7.1} µs  p99 {:7.1} µs  shed {:5} (nrt {} / stale {} / cap {})  peak {:2}  disc {}",
        row.workers,
        row.clients,
        row.fanout,
        row.wall_s * 1e3,
        (row.fanout as f64 / row.wall_s.max(1e-9)).round(),
        row.p50_us,
        row.p99_us,
        row.shed_nrt + row.shed_srt_stale + row.shed_srt_cap,
        row.shed_nrt,
        row.shed_srt_stale,
        row.shed_srt_cap,
        row.peak,
        row.disconnects,
    );
}

/// Run the gateway benchmark and merge its section into the engine
/// report. Returns a process exit code.
pub fn run(cfg: &BenchConfig) -> i32 {
    if cfg.ci_check {
        return ci_check(cfg);
    }
    let bus_time = if cfg.quick {
        Duration::from_ms(40)
    } else {
        Duration::from_ms(120)
    };
    eprintln!(
        "== gateway fanout ({} of bus time per cell, cap {QUEUE_CAP}, slow every {SLOW_EVERY}th) ==",
        if cfg.quick { "40 ms" } else { "120 ms" }
    );
    let mut rows = Vec::new();
    for &workers in &WORKER_GRID {
        for &clients in &CLIENT_GRID {
            let (_, gw, wall_s) = run_cell(workers, clients, bus_time, cfg.seed, None);
            let row = cell_row(workers, clients, &gw, wall_s);
            print_row(&row);
            if row.peak > QUEUE_CAP {
                eprintln!(
                    "bench gateway: lane occupancy {} exceeded the {QUEUE_CAP}-entry bound",
                    row.peak
                );
                return 1;
            }
            rows.push(row);
        }
    }

    let storm_clients = if cfg.quick { 24 } else { 64 };
    eprintln!(
        "== gateway reconnect storm ({storm_clients} session clients, burst resume at 60 ms) =="
    );
    let (sgw, ok, swall) = reconnect_storm(cfg.seed, storm_clients);
    let sess = sgw.sessions;
    let mut walls = sgw.resume_wall_ns.clone();
    walls.sort_unstable();
    eprintln!(
        "  {ok}/{storm_clients} resumes ok ({} resumed / {} gapped), replay {} frame(s) / {} byte(s), \
         {} stale skip(s), {} gap frame(s)  p99 {:7.1} µs  {:8.2} ms wall",
        sess.resumed,
        sess.gapped,
        sess.replayed_hrt + sess.replayed_srt + sess.replayed_nrt,
        sess.replay_bytes,
        sess.srt_stale_skipped,
        sess.gap_frames,
        percentile_us(&walls, 0.99),
        swall * 1e3,
    );
    if ok != storm_clients {
        eprintln!(
            "bench gateway: {} of {storm_clients} resumes were refused",
            storm_clients - ok
        );
        return 1;
    }
    if sess.replayed_hrt + sess.replayed_srt + sess.replayed_nrt == 0 {
        eprintln!(
            "bench gateway: the storm replayed nothing — severed tails never reached the ring?"
        );
        return 1;
    }

    let mut section = gateway_report(cfg, bus_time, &rows);
    if let Value::Obj(fields) = &mut section {
        fields.push((
            "reconnect_storm".to_string(),
            storm_report(storm_clients, &sgw, ok, swall),
        ));
    }

    // Merge under "gateway", preserving every other committed section.
    let mut root = std::fs::read_to_string(ENGINE_REPORT)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::Obj(Vec::new()));
    if let Value::Obj(fields) = &mut root {
        fields.retain(|(k, _)| k != "gateway");
        fields.push(("gateway".to_string(), section));
    }
    match std::fs::write(ENGINE_REPORT, root.to_pretty()) {
        Ok(()) => {
            eprintln!("merged gateway section into {ENGINE_REPORT}");
            0
        }
        Err(e) => {
            eprintln!("bench gateway: cannot write {ENGINE_REPORT}: {e}");
            1
        }
    }
}

/// CI acceptance gates: committed section parses; same-seed runs are
/// byte-identical down to the lane digests; the merged trace passes
/// the auditor; and a 10 000-client population is sustained with
/// nonzero sheds and bounded lane queues.
fn ci_check(cfg: &BenchConfig) -> i32 {
    let committed = match std::fs::read_to_string(ENGINE_REPORT) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench gateway --ci: cannot read {ENGINE_REPORT}: {e}");
            return 1;
        }
    };
    let root = match json::parse(&committed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench gateway --ci: {ENGINE_REPORT} does not parse: {e}");
            return 1;
        }
    };
    let has_cells = root
        .get("gateway")
        .and_then(|s| s.get("cells"))
        .and_then(Value::as_arr)
        .is_some_and(|cells| !cells.is_empty());
    if !has_cells {
        eprintln!("bench gateway --ci: {ENGINE_REPORT} has no gateway cells");
        return 1;
    }
    let bus_time = Duration::from_ms(40);

    eprintln!("== bench gateway --ci: same-seed determinism (4 workers × 200 clients) ==");
    let (ra, ga, _) = run_cell(4, 200, bus_time, cfg.seed, None);
    let (rb, gb, _) = run_cell(4, 200, bus_time, cfg.seed, None);
    if ra.log != rb.log {
        eprintln!("bench gateway --ci: cluster delivery logs diverged between same-seed runs");
        return 1;
    }
    if ga.stats != gb.stats || ga.shards != gb.shards || ga.lanes != gb.lanes {
        eprintln!("bench gateway --ci: gateway lane digests diverged between same-seed runs");
        return 1;
    }
    eprintln!(
        "  {} lanes byte-identical ({} msgs delivered, {} shed)",
        ga.lanes.len(),
        ga.stats.delivered_msgs,
        ga.stats.shed_total()
    );

    eprintln!("== bench gateway --ci: merged-trace audit (4 workers × 100 clients) ==");
    let sink = SharedTraceSink::enabled_with_capacity(TRACE_CAPACITY);
    let (report, gw, _) = run_cell(4, 100, bus_time, cfg.seed, Some(sink.clone()));
    if sink.dropped() > 0 {
        eprintln!(
            "bench gateway --ci: trace ring dropped {} event(s)",
            sink.dropped()
        );
        return 1;
    }
    let mut trace = sink.events();
    trace.sort_by(|x, y| (x.time, &x.source).cmp(&(y.time, &y.source)));
    if !trace.iter().any(|e| e.kind == "gw_fanout") {
        eprintln!("bench gateway --ci: gateway records missing from the merged trace");
        return 1;
    }
    let ctx = AuditContext::from_parts(
        (*report.calendar).clone(),
        report.calendar_start,
        report.channels.clone(),
        report.hrt_periods.clone(),
    );
    let audit_rep = audit(&ctx, &trace);
    if !audit_rep.passes() {
        eprintln!(
            "bench gateway --ci: T1..T8 audit failed on the merged trace:\n{:#?}",
            audit_rep.errors().collect::<Vec<_>>()
        );
        return 1;
    }
    eprintln!(
        "  audit clean over {} trace events ({} from the gateway)",
        trace.len(),
        trace.iter().filter(|e| e.kind.starts_with("gw_")).count()
    );
    if gw.stats.delivered_msgs == 0 {
        eprintln!("bench gateway --ci: audited cell delivered nothing");
        return 1;
    }

    eprintln!("== bench gateway --ci: 10k-client sustained-load gate (4 workers) ==");
    let (_, big, wall_s) = run_cell(4, 10_000, bus_time, cfg.seed, None);
    eprintln!(
        "  {} fanout in {:.2} ms wall, {} delivered, {} shed, peak lane occupancy {}",
        big.stats.fanout,
        wall_s * 1e3,
        big.stats.delivered_msgs,
        big.stats.shed_total(),
        big.stats.peak_lane_occupancy
    );
    if big.stats.delivered_msgs == 0 {
        eprintln!("bench gateway --ci: 10k-client cell delivered nothing");
        return 1;
    }
    if big.stats.shed_total() == 0 {
        eprintln!("bench gateway --ci: slow-consumer scenario shed nothing — policy regressed?");
        return 1;
    }
    if big.stats.peak_lane_occupancy > QUEUE_CAP {
        eprintln!(
            "bench gateway --ci: lane occupancy {} exceeded the {QUEUE_CAP}-entry bound",
            big.stats.peak_lane_occupancy
        );
        return 1;
    }
    eprintln!("bench gateway --ci: ok");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small cell is deterministic and its report section round-trips
    /// through the JSON parser.
    #[test]
    fn small_cell_is_deterministic_and_report_parses() {
        let bus = Duration::from_ms(20);
        let (ra, ga, wall) = run_cell(2, 50, bus, 7, None);
        let (rb, gb, _) = run_cell(2, 50, bus, 7, None);
        assert_eq!(ra.log, rb.log);
        assert_eq!(ga.stats, gb.stats);
        assert_eq!(ga.lanes, gb.lanes);
        assert!(ga.stats.fanout > 0, "no fanout happened");

        let cfg = BenchConfig {
            quick: true,
            ci_check: false,
            seed: 7,
            jobs: 1,
        };
        let row = cell_row(2, 50, &ga, wall);
        let report = gateway_report(&cfg, bus, &[row]);
        let back = json::parse(&report.to_pretty()).expect("section parses");
        assert_eq!(
            back.get("cells")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("rtec-bench-gateway-v1")
        );
    }

    /// A small reconnect storm resumes every severed session, replays
    /// the lost tails, and its JSON row round-trips.
    #[test]
    fn small_storm_resumes_everyone() {
        let (gw, ok, wall) = reconnect_storm(7, 8);
        assert_eq!(ok, 8, "a resume was refused: {:?}", gw.sessions);
        assert_eq!(gw.sessions.resumed + gw.sessions.gapped, 8);
        assert!(
            gw.sessions.replayed_hrt + gw.sessions.replayed_srt + gw.sessions.replayed_nrt > 0,
            "severed tails were never replayed"
        );
        assert_eq!(gw.resume_wall_ns.len(), 8);

        let row = storm_report(8, &gw, ok, wall);
        let back = json::parse(&row.to_pretty()).expect("storm row parses");
        assert_eq!(back.get("resumes_ok").and_then(Value::as_f64), Some(8.0));
    }
}
