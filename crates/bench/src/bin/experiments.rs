//! The experiment runner: regenerates every table of the evaluation.
//!
//! ```text
//! experiments all              # run the full suite
//! experiments e3 e5           # run selected experiments
//! experiments all --quick     # shrunken horizons (smoke run)
//! experiments all --seed 7    # different seed
//! experiments all --no-conformance  # skip the conformance linter/auditor
//! experiments --list          # show the index
//! experiments bench           # scheduler + experiment benchmarks → BENCH_*.json
//! experiments bench --ci      # sanity-check against committed BENCH_*.json
//! experiments bench live      # live-runtime throughput/latency → BENCH_engine.json
//! ```

use rtec_bench::experiments::all;
use rtec_bench::{live_perf, perf, RunOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::default();
    let mut selected: Vec<String> = Vec::new();
    let mut list_only = false;
    let mut bench = false;
    let mut live = false;
    let mut ci_check = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--no-conformance" => opts.conformance = false,
            "--ci" => ci_check = true,
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("--seed needs an integer");
            }
            "--list" => list_only = true,
            "all" => selected.push("all".into()),
            "bench" => bench = true,
            "live" => live = true,
            other => selected.push(other.to_lowercase()),
        }
    }
    if bench {
        let cfg = perf::BenchConfig {
            quick: opts.quick || ci_check,
            ci_check,
            seed: opts.seed,
        };
        if live {
            std::process::exit(live_perf::run(&cfg));
        }
        std::process::exit(perf::run(&cfg));
    }
    let registry = all();
    if list_only || selected.is_empty() {
        eprintln!("experiments (pass ids or 'all'; --quick for a smoke run):");
        for e in &registry {
            eprintln!("  {:>4}  {}", e.id, e.what);
        }
        if selected.is_empty() && !list_only {
            std::process::exit(2);
        }
        return;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let mut ran = 0;
    for e in &registry {
        if run_all || selected.iter().any(|s| s == e.id) {
            eprintln!(
                "=== {} — {} ({}) ===",
                e.id,
                e.what,
                if opts.quick { "quick" } else { "full" }
            );
            for table in (e.run)(&opts) {
                println!("{table}");
            }
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no matching experiment; use --list");
        std::process::exit(2);
    }
}
