//! The experiment runner: regenerates every table of the evaluation.
//!
//! ```text
//! experiments all              # run the full suite
//! experiments e3 e5           # run selected experiments
//! experiments all --quick     # shrunken horizons (smoke run)
//! experiments all --seed 7    # different seed
//! experiments all --jobs 4    # shard the sweep over a worker pool
//! experiments all --no-conformance  # skip the conformance linter/auditor
//! experiments --list          # show the index
//! experiments bench           # scheduler + experiment benchmarks → BENCH_*.json
//! experiments bench --ci      # sanity-check against committed BENCH_*.json
//! experiments bench live      # live-runtime throughput/latency → BENCH_engine.json
//! experiments bench parallel  # multi-segment scaling + sweep → BENCH_engine.json
//! experiments bench parallel --ci --jobs 2  # CI determinism/speedup smoke
//! experiments bench gateway   # off-bus fanout grid (workers × clients) → BENCH_engine.json
//! experiments bench gateway --ci  # determinism + audit + 10k-client shed gate
//! experiments frag-smoke      # zero-allocation check of the frag hot path
//! experiments chaos           # crash/recovery smoke of the live runtime
//! experiments chaos --seed 7 --ci   # bounded CI gate, different fault stream
//! ```

use rtec_bench::experiments::all;
use rtec_bench::{chaos_exp, gateway_perf, gw_chaos_exp, live_perf, parallel_perf, perf, RunOpts};
use rtec_sim::parallel::pool_map;

/// One sharded experiment: `(id, description, run fn)`.
type ExperimentSpec = (
    &'static str,
    &'static str,
    fn(&RunOpts) -> Vec<rtec_bench::Table>,
);

/// Allocation-counting wrapper around the system allocator. The only
/// `unsafe` in the workspace: it adds nothing but a relaxed counter
/// bump in front of `System`, and exists so `frag-smoke` can assert —
/// not estimate — that the reassembly hot path stops allocating once
/// its scratch buffers are warm.
#[allow(unsafe_code)]
mod counted_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Total allocation calls (alloc, alloc_zeroed, grow-reallocs)
    /// since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    struct Counting;

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;
}

/// Zero-allocation smoke of the fragmentation hot path: after one
/// warm-up transfer populates the reassembler's scratch free-list,
/// 1000 further transfers through the same stream must perform **no**
/// heap allocations. Runs single-threaded, before any worker pool
/// exists, so the process-wide counter measures exactly this loop.
fn frag_smoke() -> i32 {
    use rtec_core::frag::{fragment, Reassembler};

    let payload = vec![0xA5u8; 1536]; // a many-fragment bulk transfer
    let frags = fragment(&payload);
    let mut r: Reassembler<u8> = Reassembler::new();

    // Warm-up: allocates the transfer buffer and map slot once.
    let mut done = None;
    for f in &frags {
        done = r.push(7, f).expect("warm-up fragment stream");
    }
    r.recycle(done.expect("warm-up transfer completes"));

    let rounds = 1000u32;
    let before = counted_alloc::allocations();
    for _ in 0..rounds {
        let mut done = None;
        for f in &frags {
            done = r.push(7, f).expect("steady-state fragment stream");
        }
        r.recycle(done.expect("steady-state transfer completes"));
    }
    let delta = counted_alloc::allocations() - before;

    eprintln!(
        "frag-smoke: {rounds} transfers × {} fragments ({} bytes each): {delta} allocation(s)",
        frags.len(),
        payload.len()
    );
    if delta > 0 {
        eprintln!(
            "frag-smoke: steady-state reassembly must not allocate — scratch reuse regressed"
        );
        return 1;
    }
    eprintln!("frag-smoke: ok");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::default();
    let mut selected: Vec<String> = Vec::new();
    let mut list_only = false;
    let mut bench = false;
    let mut live = false;
    let mut parallel = false;
    let mut gateway = false;
    let mut chaos = false;
    let mut ci_check = false;
    let mut jobs: usize = 1;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--no-conformance" => opts.conformance = false,
            "--ci" => ci_check = true,
            "--seed" => {
                let v = iter.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("--seed needs an integer");
            }
            "--jobs" => {
                let v = iter.next().expect("--jobs needs a value");
                jobs = v.parse().expect("--jobs needs an integer");
                assert!(jobs >= 1, "--jobs needs at least 1");
            }
            "--list" => list_only = true,
            "all" => selected.push("all".into()),
            "bench" => bench = true,
            "live" => live = true,
            "parallel" => parallel = true,
            "gateway" => gateway = true,
            "chaos" => chaos = true,
            "frag-smoke" => std::process::exit(frag_smoke()),
            other => selected.push(other.to_lowercase()),
        }
    }
    if chaos {
        // `--ci` runs the same checks on the short horizon; the smoke
        // is deterministic either way. `chaos gateway` runs the off-bus
        // session-resume chaos gate instead of the bus-only smoke.
        let code = if gateway {
            gw_chaos_exp::run(opts.seed, opts.quick || ci_check)
        } else {
            chaos_exp::run(opts.seed, opts.quick || ci_check)
        };
        std::process::exit(code);
    }
    if bench {
        let cfg = perf::BenchConfig {
            quick: opts.quick || ci_check,
            ci_check,
            seed: opts.seed,
            jobs,
        };
        if live {
            std::process::exit(live_perf::run(&cfg));
        }
        if parallel {
            std::process::exit(parallel_perf::run(&cfg));
        }
        if gateway {
            std::process::exit(gateway_perf::run(&cfg));
        }
        std::process::exit(perf::run(&cfg));
    }
    let registry = all();
    if list_only || selected.is_empty() {
        eprintln!("experiments (pass ids or 'all'; --quick for a smoke run):");
        for e in &registry {
            eprintln!("  {:>4}  {}", e.id, e.what);
        }
        if selected.is_empty() && !list_only {
            std::process::exit(2);
        }
        return;
    }
    let run_all = selected.iter().any(|s| s == "all");
    let chosen: Vec<usize> = registry
        .iter()
        .enumerate()
        .filter(|(_, e)| run_all || selected.iter().any(|s| s == e.id))
        .map(|(i, _)| i)
        .collect();
    if chosen.is_empty() {
        eprintln!("no matching experiment; use --list");
        std::process::exit(2);
    }
    if jobs > 1 {
        // Shard the sweep over a worker pool; results print in index
        // order once all workers finish, so the output is identical to
        // a serial run of the same selection.
        let specs: Vec<ExperimentSpec> = chosen
            .iter()
            .map(|&i| (registry[i].id, registry[i].what, registry[i].run))
            .collect();
        let shared = specs.clone();
        let opts_copy = opts;
        let outputs = pool_map(specs.len(), jobs, move |i| {
            let (_, _, run) = shared[i];
            run(&opts_copy)
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        });
        for ((id, what, _), tables) in specs.iter().zip(outputs) {
            eprintln!(
                "=== {} — {} ({}, {} jobs) ===",
                id,
                what,
                if opts.quick { "quick" } else { "full" },
                jobs
            );
            println!("{tables}");
        }
        return;
    }
    for &i in &chosen {
        let e = &registry[i];
        eprintln!(
            "=== {} — {} ({}) ===",
            e.id,
            e.what,
            if opts.quick { "quick" } else { "full" }
        );
        for table in (e.run)(&opts) {
            println!("{table}");
        }
    }
}
