//! Parallel-execution benchmark (`experiments bench parallel`).
//!
//! Two measurements, both against the serial lockstep oracle the
//! differential proptest certifies byte-identical:
//!
//! * **Segment scaling** — a line topology of 1/2/4/8 bus segments,
//!   each carrying the same local publisher load plus a chained relay
//!   route (1 ms store-and-forward latency = the conservative
//!   lookahead). Every row runs the identical workload serially and
//!   with one thread per segment, asserts the segment reports are
//!   byte-identical (traces, forward counters, dispatch counts), and
//!   records both wall times, the speedup, and the barrier-stall
//!   fraction.
//! * **Experiment sweep** — the full E1–E11 table regeneration run
//!   once serially and once through the [`pool_map`] worker pool,
//!   asserting the rendered tables are identical and recording both
//!   wall times.
//!
//! Results merge into `BENCH_engine.json` under the `"parallel"` key.
//! Every row is an honest measurement on the machine that ran it:
//! `cpu_cores` is recorded because on a single-core host the speedup
//! ceiling is 1× and the numbers document barrier overhead instead of
//! scaling (see DESIGN.md's parallel-execution section).
//!
//! With `--ci` nothing is written: the committed `parallel` section
//! must parse, and a fresh reduced 4-segment run must stay
//! byte-identical to its serial oracle. The speedup floor (≥ 1.0 on 4
//! segments) is only enforced when the host has ≥ 2 usable cores —
//! on fewer, parallel execution cannot beat serial by construction.

use crate::json::{self, Value};
use crate::perf::{BenchConfig, ENGINE_REPORT};
use crate::{experiments, RunOpts};
use rtec_core::prelude::*;
use rtec_core::topology::Topology;
use rtec_sim::parallel::pool_map;
use std::time::Instant;

/// Segment counts of the scaling rows.
const SIZES: [usize; 4] = [1, 2, 4, 8];
/// Local publishers per segment.
const PUBLISHERS: u8 = 6;
/// Store-and-forward latency of every relay route — the conservative
/// lookahead, i.e. 10 lockstep quanta per window.
const RELAY_LATENCY: Duration = Duration::from_ms(1);

/// Usable cores on this host.
pub fn cpu_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Build the `n`-segment line: per segment, [`PUBLISHERS`] local SRT
/// publishers into one sink, plus segment 0's first subject relayed
/// hop by hop down the line. Node layout per segment: publishers
/// `0..PUBLISHERS`, sink `PUBLISHERS`, relay egress `PUBLISHERS + 1`
/// (also the default gateway), relay ingress `PUBLISHERS + 2` —
/// distinct identities, because a CAN controller never receives its
/// own frames and an intermediate hop must re-relay what arrived.
fn build(n: usize, seed: u64) -> Topology {
    let mut topo = Topology::new();
    for seg in 0..n {
        let config = NetworkConfig {
            nodes: PUBLISHERS as usize + 3,
            seed: seed ^ (seg as u64).wrapping_mul(0x9E37_79B9),
            ..NetworkConfig::default()
        };
        topo.add_segment(config, NodeId(PUBLISHERS + 1));
        topo.setup(seg, move |net| {
            let sink = NodeId(PUBLISHERS);
            for p in 0..PUBLISHERS {
                let subject = Subject::new(0x600 + seg as u64 * 0x10 + u64::from(p));
                {
                    let mut api = net.api();
                    api.announce(NodeId(p), subject, ChannelSpec::srt(SrtSpec::default()))
                        .expect("announce bench subject");
                    let _ = api
                        .subscribe(sink, subject, SubscribeSpec::default())
                        .expect("subscribe bench sink");
                }
                let period = Duration::from_us(200 + 37 * u64::from(p));
                let phase = Duration::from_us(17 * (u64::from(p) + 1));
                let mut k = 0u8;
                net.every(period, phase, move |api| {
                    k = k.wrapping_add(1);
                    let _ = api.publish(NodeId(p), subject, Event::new(subject, vec![p, k]));
                });
            }
        });
        topo.probe(seg, |net| net.dispatched().to_le_bytes().to_vec());
    }
    // Chain relay: segment 0's first subject crosses every hop.
    let relayed = Subject::new(0x600);
    for i in 0..n.saturating_sub(1) {
        topo.forward_via(
            relayed,
            i,
            i + 1,
            NodeId(PUBLISHERS + 2),
            NodeId(PUBLISHERS + 1),
            RELAY_LATENCY,
            SrtSpec::default(),
        );
    }
    topo
}

struct ScalingRow {
    segments: usize,
    events: u64,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    windows: u64,
    stall_frac: f64,
}

impl ScalingRow {
    fn speedup(&self) -> f64 {
        self.serial_wall_s / self.parallel_wall_s.max(1e-9)
    }
}

/// One scaling row: identical workload, serial then parallel, with the
/// byte-identity assert in between.
fn scaling_row(n: usize, horizon: Duration, seed: u64) -> ScalingRow {
    let until = Time::ZERO + horizon;
    let t0 = Instant::now();
    let serial = build(n, seed).run_serial(until);
    let serial_wall_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = build(n, seed).run_parallel(until);
    let parallel_wall_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial.segments, parallel.segments,
        "parallel topology run diverged from the serial oracle at {n} segments"
    );
    let stats = parallel.parallel.expect("parallel run reports stats");
    ScalingRow {
        segments: n,
        events: serial.total_dispatched(),
        serial_wall_s,
        parallel_wall_s,
        windows: stats.windows,
        stall_frac: stats.stall_fraction(),
    }
}

/// Run the E1–E11 sweep with `jobs` workers, returning the wall time
/// and every rendered table (in experiment order, regardless of which
/// worker produced it).
fn sweep(opts: RunOpts, jobs: usize) -> (f64, Vec<String>) {
    let specs: Vec<fn(&RunOpts) -> Vec<crate::Table>> =
        experiments::all().iter().map(|e| e.run).collect();
    let n = specs.len();
    let t0 = Instant::now();
    let outs = pool_map(n, jobs, move |i| {
        (specs[i])(&opts)
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    });
    (t0.elapsed().as_secs_f64(), outs)
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn parallel_report(
    cfg: &BenchConfig,
    horizon: Duration,
    rows: &[ScalingRow],
    sweep_jobs: usize,
    sweep_serial_s: f64,
    sweep_parallel_s: f64,
) -> Value {
    let scaling = rows
        .iter()
        .map(|r| {
            obj(vec![
                ("segments", Value::num(r.segments as f64)),
                ("events", Value::num(r.events as f64)),
                ("serial_wall_ms", Value::num(round3(r.serial_wall_s * 1e3))),
                (
                    "parallel_wall_ms",
                    Value::num(round3(r.parallel_wall_s * 1e3)),
                ),
                ("speedup", Value::num(round3(r.speedup()))),
                ("windows", Value::num(r.windows as f64)),
                ("barrier_stall_frac", Value::num(round3(r.stall_frac))),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Value::str("rtec-bench-parallel-v1")),
        ("mode", Value::str(if cfg.quick { "quick" } else { "full" })),
        ("seed", Value::num(cfg.seed as f64)),
        ("cpu_cores", Value::num(cpu_cores() as f64)),
        ("quantum_us", Value::num(100.0)),
        (
            "relay_latency_us",
            Value::num(RELAY_LATENCY.as_ns() as f64 / 1e3),
        ),
        ("horizon_ms", Value::num(horizon.as_ns() as f64 / 1e6)),
        ("scaling", Value::Arr(scaling)),
        (
            "sweep",
            obj(vec![
                ("experiments", Value::num(experiments::all().len() as f64)),
                ("jobs", Value::num(sweep_jobs as f64)),
                ("serial_wall_ms", Value::num(round3(sweep_serial_s * 1e3))),
                (
                    "parallel_wall_ms",
                    Value::num(round3(sweep_parallel_s * 1e3)),
                ),
                (
                    "speedup",
                    Value::num(round3(sweep_serial_s / sweep_parallel_s.max(1e-9))),
                ),
            ]),
        ),
    ])
}

/// Run the parallel benchmark and merge its section into the engine
/// report. Returns a process exit code.
pub fn run(cfg: &BenchConfig) -> i32 {
    if cfg.ci_check {
        return ci_check(cfg);
    }
    let horizon = if cfg.quick {
        Duration::from_ms(150)
    } else {
        Duration::from_ms(1_000)
    };
    let cores = cpu_cores();
    eprintln!(
        "== parallel topology scaling ({} of bus time, {cores} core(s)) ==",
        if cfg.quick { "150 ms" } else { "1 s" }
    );
    let rows: Vec<ScalingRow> = SIZES
        .iter()
        .map(|&n| {
            let row = scaling_row(n, horizon, cfg.seed);
            eprintln!(
                "  {n} segment(s): {:>9} events  serial {:>8.2} ms | parallel {:>8.2} ms = {:>5.2}x  (stall {:>4.1}%, {} windows)",
                row.events,
                row.serial_wall_s * 1e3,
                row.parallel_wall_s * 1e3,
                row.speedup(),
                row.stall_frac * 100.0,
                row.windows,
            );
            row
        })
        .collect();

    let sweep_jobs = if cfg.jobs > 1 { cfg.jobs } else { cores };
    let opts = RunOpts {
        quick: true,
        seed: cfg.seed,
        conformance: false,
    };
    eprintln!("== experiment sweep (quick, {sweep_jobs} job(s) vs serial) ==");
    let (serial_s, serial_tables) = sweep(opts, 1);
    let (parallel_s, parallel_tables) = sweep(opts, sweep_jobs);
    assert_eq!(
        serial_tables, parallel_tables,
        "sharded sweep produced different tables than the serial sweep"
    );
    eprintln!(
        "  E1–E11: serial {:.2} ms | {} jobs {:.2} ms = {:.2}x (tables identical)",
        serial_s * 1e3,
        sweep_jobs,
        parallel_s * 1e3,
        serial_s / parallel_s.max(1e-9)
    );

    let section = parallel_report(cfg, horizon, &rows, sweep_jobs, serial_s, parallel_s);
    // Merge under "parallel", preserving every other committed section.
    let mut root = std::fs::read_to_string(ENGINE_REPORT)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .unwrap_or_else(|| Value::Obj(Vec::new()));
    if let Value::Obj(fields) = &mut root {
        fields.retain(|(k, _)| k != "parallel");
        fields.push(("parallel".to_string(), section));
    }
    match std::fs::write(ENGINE_REPORT, root.to_pretty()) {
        Ok(()) => {
            eprintln!("merged parallel section into {ENGINE_REPORT}");
            0
        }
        Err(e) => {
            eprintln!("bench parallel: cannot write {ENGINE_REPORT}: {e}");
            1
        }
    }
}

/// CI smoke: committed section parses; a fresh reduced 4-segment run
/// is byte-identical to its serial oracle (asserted inside
/// [`scaling_row`]); and on a multi-core host the parallel run is not
/// slower than serial.
fn ci_check(cfg: &BenchConfig) -> i32 {
    let committed = match std::fs::read_to_string(ENGINE_REPORT) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench parallel --ci: cannot read {ENGINE_REPORT}: {e}");
            return 1;
        }
    };
    let root = match json::parse(&committed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench parallel --ci: {ENGINE_REPORT} does not parse: {e}");
            return 1;
        }
    };
    let Some(section) = root.get("parallel") else {
        eprintln!("bench parallel --ci: {ENGINE_REPORT} has no parallel section");
        return 1;
    };
    if section
        .get("scaling")
        .and_then(Value::as_arr)
        .is_none_or(|rows| rows.is_empty())
    {
        eprintln!("bench parallel --ci: committed parallel section has no scaling rows");
        return 1;
    }
    eprintln!("== bench parallel --ci: 4-segment determinism + speedup smoke ==");
    let row = scaling_row(4, Duration::from_ms(150), cfg.seed);
    eprintln!(
        "  4 segments: serial {:.2} ms | parallel {:.2} ms = {:.2}x (stall {:.1}%)",
        row.serial_wall_s * 1e3,
        row.parallel_wall_s * 1e3,
        row.speedup(),
        row.stall_frac * 100.0
    );
    let cores = cpu_cores();
    if cores >= 2 && row.speedup() < 1.0 {
        eprintln!(
            "bench parallel --ci: speedup {:.2}x < 1.0 on a {cores}-core host — barrier overhead regression?",
            row.speedup()
        );
        return 1;
    }
    if cores < 2 {
        eprintln!(
            "bench parallel --ci: single core — speedup floor not applicable, determinism checked"
        );
    }
    eprintln!("bench parallel --ci: ok");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bench workload itself is deterministic and byte-identical
    /// across drivers at a tiny horizon (the assert lives inside
    /// `scaling_row`), and the report section round-trips through the
    /// JSON parser.
    #[test]
    fn scaling_row_is_deterministic_and_report_parses() {
        let row = scaling_row(2, Duration::from_ms(20), 7);
        assert!(row.events > 0, "workload dispatched nothing");
        assert!(row.windows > 0, "no conservative windows ran");
        let cfg = BenchConfig {
            quick: true,
            ci_check: false,
            seed: 7,
            jobs: 1,
        };
        let report = parallel_report(&cfg, Duration::from_ms(20), &[row], 2, 0.5, 0.3);
        let text = report.to_pretty();
        let back = json::parse(&text).expect("section parses");
        assert!(back.get("cpu_cores").and_then(Value::as_f64).is_some());
        assert_eq!(
            back.get("scaling").and_then(Value::as_arr).map(|a| a.len()),
            Some(1)
        );
    }

    /// The sharded sweep renders the same tables as the serial sweep.
    #[test]
    fn sharded_sweep_matches_serial() {
        let opts = RunOpts {
            quick: true,
            seed: 11,
            conformance: false,
        };
        // Two experiments are enough to cross a worker boundary.
        let specs: Vec<fn(&RunOpts) -> Vec<crate::Table>> =
            experiments::all().iter().take(2).map(|e| e.run).collect();
        let serial: Vec<String> = specs
            .iter()
            .map(|run| {
                run(&opts)
                    .iter()
                    .map(|t| t.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .collect();
        let sharded = pool_map(specs.len(), 2, move |i| {
            (specs[i])(&opts)
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        });
        assert_eq!(serial, sharded);
    }
}
