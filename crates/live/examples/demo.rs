//! Live-runtime demo: a four-node cluster mixing all three channel
//! classes over real threads and IPC.
//!
//! ```text
//! cargo run -p rtec-live --example demo            # loopback transport
//! cargo run -p rtec-live --example demo -- --udp   # UDP sockets
//! cargo run -p rtec-live --example demo -- --audit # + run T1..T8 auditor
//! cargo run -p rtec-live --example demo -- --wall  # paced at 100x wall time
//! ```
//!
//! Node 0 publishes a hard real-time sensor sample every 10 ms round;
//! node 1 publishes soft real-time commands every 3 ms; node 2 pushes a
//! fragmented bulk transfer in the background; node 3 subscribes to all
//! three and is the cluster's observer.

use rtec_conformance::audit::{audit, AuditContext};
use rtec_core::channel::{ChannelSpec, HrtSpec, NrtSpec, SrtSpec};
use rtec_core::event::{Event, Subject};
use rtec_live::cluster::{Cluster, ClusterConfig};
use rtec_live::node::{Behavior, NodeCtx};
use rtec_live::Pace;
use rtec_sim::Duration;

const SENSOR: Subject = Subject(0xCAFE);
const COMMAND: Subject = Subject(0xBEEF);
const FIRMWARE: Subject = Subject(0xF00D);

/// Stages a fresh sample for every HRT calendar round.
struct Sensor {
    reading: u8,
    period: Duration,
}

impl Behavior for Sensor {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.publish(Event::new(SENSOR, vec![self.reading, 0xA0]))
            .unwrap();
        let (at, period) = ctx.hrt_stage_schedule(SENSOR).unwrap();
        self.period = period;
        ctx.set_timer(at, 0).unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.reading = self.reading.wrapping_add(1);
        ctx.publish(Event::new(SENSOR, vec![self.reading, 0xA0]))
            .unwrap();
        ctx.set_timer(ctx.now() + self.period, 0).unwrap();
    }
}

/// Publishes an SRT command every 3 ms.
struct Commander {
    seq: u8,
}

impl Behavior for Commander {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(ctx.now() + Duration::from_us(700), 0)
            .unwrap();
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _p: u64) {
        self.seq = self.seq.wrapping_add(1);
        let _ = ctx.publish(Event::new(COMMAND, vec![0xC0, self.seq]));
        ctx.set_timer(ctx.now() + Duration::from_ms(3), 0).unwrap();
    }
}

/// Pushes one fragmented firmware blob in the background.
struct Updater;

impl Behavior for Updater {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let blob: Vec<u8> = (0..400u16).map(|i| (i % 251) as u8).collect();
        ctx.publish(Event::new(FIRMWARE, blob)).unwrap();
    }
}

struct Observer;
impl Behavior for Observer {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let pace = if has("--wall") {
        Pace::Wall { speedup: 100 }
    } else {
        Pace::Virtual
    };

    let cfg = ClusterConfig {
        pace,
        nrt_queue_cap: 128,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg);
    let sensor = cluster.add_node(Box::new(Sensor {
        reading: 0,
        period: Duration::from_ms(10),
    }));
    let commander = cluster.add_node(Box::new(Commander { seq: 0 }));
    let updater = cluster.add_node(Box::new(Updater));
    let observer = cluster.add_node(Box::new(Observer));

    let hrt = ChannelSpec::Hrt(HrtSpec::periodic_10ms());
    let srt = ChannelSpec::Srt(SrtSpec::default());
    let nrt = ChannelSpec::Nrt(NrtSpec::bulk());
    cluster.publish(sensor, SENSOR, hrt);
    cluster.publish(commander, COMMAND, srt);
    cluster.publish(updater, FIRMWARE, nrt);
    cluster.subscribe(observer, SENSOR, hrt);
    cluster.subscribe(observer, COMMAND, srt);
    cluster.subscribe(observer, FIRMWARE, nrt);

    let run = Duration::from_ms(100);
    let transport = if has("--udp") { "udp" } else { "loopback" };
    println!("running 4-node cluster for 100 ms of bus time ({transport} transport)...");
    let report = if has("--udp") {
        cluster.run_for_udp(run)
    } else {
        cluster.run_for(run)
    }
    .expect("cluster run failed");

    println!("\nbus: {:?}", report.broker);
    for s in &report.stats {
        println!(
            "node {}: published {:3}  delivered {:3}  exceptions {}  backpressure {}",
            s.node, s.published, s.delivered, s.exceptions, s.backpressure
        );
    }
    for class in ["Hrt", "Srt", "Nrt"] {
        let n = report
            .log
            .iter()
            .filter(|r| format!("{:?}", r.class) == class)
            .count();
        println!("{class} deliveries: {n}");
    }
    if let Some(last) = report.log.last() {
        println!(
            "last delivery: node {} got {} bytes of etag {} at t={} ns",
            last.node,
            last.bytes.len(),
            last.etag,
            last.delivered_ns
        );
    }

    if has("--audit") {
        let ctx = AuditContext::from_parts(
            (*report.calendar).clone(),
            report.calendar_start,
            report.channels.clone(),
            report.hrt_periods.clone(),
        );
        let rep = audit(&ctx, &report.trace);
        println!(
            "\nconformance audit over {} trace events: {}",
            report.trace.len(),
            if rep.passes() { "PASS" } else { "FAIL" }
        );
        for d in rep.errors() {
            println!("  {d:?}");
        }
        if !rep.passes() {
            std::process::exit(1);
        }
    }
}
